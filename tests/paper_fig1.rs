//! Integration test: the paper's running example end-to-end (E1, E3, E4).

use arrayeq::core::{verify_source, CheckOptions, DiagnosticKind};
use arrayeq::lang::corpus::*;

#[test]
fn fig1_verdict_matrix_matches_the_paper() {
    let versions = [("a", FIG1_A), ("b", FIG1_B), ("c", FIG1_C), ("d", FIG1_D)];
    for (n1, s1) in versions {
        for (n2, s2) in versions {
            let expect = n1 != "d" && n2 != "d" || n1 == n2;
            let r = verify_source(s1, s2, &CheckOptions::default()).unwrap();
            assert_eq!(
                r.is_equivalent(),
                expect,
                "({n1}) vs ({n2}) expected equivalent={expect}\n{}",
                r.summary()
            );
        }
    }
}

#[test]
fn erroneous_version_d_is_diagnosed_on_the_even_elements() {
    let r = verify_source(FIG1_A, FIG1_D, &CheckOptions::default()).unwrap();
    assert!(!r.is_equivalent());
    let mapping_mismatches: Vec<_> = r
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagnosticKind::MappingMismatch)
        .collect();
    assert!(!mapping_mismatches.is_empty());
    // The paper localises the error to statements v3 / v1 of (d).
    let blamed: Vec<String> = r.blame().into_iter().map(|(s, _)| s).collect();
    assert!(
        blamed.iter().any(|s| s == "v3" || s == "v1"),
        "blame list {blamed:?} should contain v3 or v1"
    );
}

#[test]
fn checker_verdicts_agree_with_simulation_on_fig1() {
    use arrayeq::lang::interp::{Inputs, Interpreter};
    use arrayeq::lang::parser::parse_program;
    let n = 1024usize;
    let a: Vec<i64> = (0..2 * n as i64).map(|i| 5 * i - 3).collect();
    let b: Vec<i64> = (0..2 * n as i64).map(|i| 2 * i + 11).collect();
    let run = |src: &str| {
        let p = parse_program(src).unwrap();
        Interpreter::new(&p)
            .run_for_output(
                &Inputs::new()
                    .array("A", a.clone())
                    .array("B", b.clone())
                    .output("C", n),
                "C",
            )
            .unwrap()
    };
    let outs = [run(FIG1_A), run(FIG1_B), run(FIG1_C), run(FIG1_D)];
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0], outs[2]);
    assert_ne!(outs[0], outs[3]);
}
