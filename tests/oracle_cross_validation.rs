//! Integration test: the checker's verdicts are cross-validated against the
//! simulation oracle on generated kernels and random transformation
//! pipelines (the consistency the paper's designers rely on).

use arrayeq::core::{verify_programs, CheckOptions};
use arrayeq::lang::interp::Interpreter;
use arrayeq::transform::errors::{inject, Bug};
use arrayeq::transform::generator::{generate_kernel, inputs_for, GeneratorConfig};
use arrayeq::transform::random_pipeline;

#[test]
fn equivalence_verdicts_imply_identical_simulation_outputs() {
    for seed in 0..3u64 {
        let cfg = GeneratorConfig {
            n: 48,
            layers: 3,
            seed,
            ..Default::default()
        };
        let original = generate_kernel(&cfg);
        let (transformed, steps) = random_pipeline(&original, 6, seed + 100);
        let report = verify_programs(&original, &transformed, &CheckOptions::default()).unwrap();
        assert!(
            report.is_equivalent(),
            "seed {seed} steps {steps:?}: {}",
            report.summary()
        );

        let inputs = inputs_for(&cfg);
        let o1 = Interpreter::new(&original)
            .run_for_output(&inputs, "OUT")
            .unwrap();
        let o2 = Interpreter::new(&transformed)
            .run_for_output(&inputs, "OUT")
            .unwrap();
        assert_eq!(
            o1, o2,
            "simulation must agree when the checker says equivalent"
        );
    }
}

#[test]
fn injected_bugs_are_never_reported_equivalent() {
    let cfg = GeneratorConfig {
        n: 48,
        layers: 3,
        seed: 9,
        ..Default::default()
    };
    let original = generate_kernel(&cfg);
    let (transformed, _) = random_pipeline(&original, 4, 77);
    for bug in [Bug::IndexScale(2), Bug::WrongOperator] {
        // Inject into the first statement of the transformed program.
        let label = transformed.statements().next().unwrap().label.clone();
        let Ok(broken) = inject(&transformed, &label, bug) else {
            continue;
        };
        match verify_programs(&original, &broken, &CheckOptions::default()) {
            Ok(report) => assert!(
                !report.is_equivalent(),
                "bug {bug:?} must not check as equivalent"
            ),
            // A def-use rejection is also a (correct) detection.
            Err(arrayeq::core::CoreError::Lang(arrayeq::lang::LangError::DefUse { .. })) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
