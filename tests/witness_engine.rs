//! Integration and property tests of the witness engine through the façade
//! crate: every mutated program — from the curated corpus *and* from
//! randomly generated kernels — is rejected by the checker with a
//! replay-confirmed concrete counterexample.

use arrayeq::core::{CheckOptions, Verdict};
use arrayeq::transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq::transform::mutate::{curated_mutants, fault_corpus, FaultCase};
use arrayeq::witness::{verify_with_witnesses, witness_dot, WitnessOptions};
use proptest::prelude::*;

fn assert_confirmed_witness(case: &FaultCase) {
    let report = verify_with_witnesses(
        &case.original,
        &case.mutant,
        &CheckOptions::default(),
        &WitnessOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", case.name));
    assert_eq!(
        report.verdict,
        Verdict::NotEquivalent,
        "{}: {}",
        case.name,
        report.summary()
    );
    let w = report
        .witnesses
        .iter()
        .find(|w| w.confirmed)
        .unwrap_or_else(|| panic!("{}: no confirmed witness\n{}", case.name, report.summary()));
    assert_ne!(w.original_value, w.transformed_value, "{}", case.name);
}

#[test]
fn corpus_mutants_yield_confirmed_witnesses_through_the_facade() {
    // A spot-check through the façade re-exports (the exhaustive run lives
    // in the witness crate's own mutation_selftest).
    let corpus = fault_corpus();
    for case in corpus.iter().step_by(5) {
        assert_confirmed_witness(case);
    }
}

#[test]
fn witness_dot_renders_for_a_corpus_case() {
    let corpus = fault_corpus();
    let case = &corpus[0];
    let report = verify_with_witnesses(
        &case.original,
        &case.mutant,
        &CheckOptions::default(),
        &WitnessOptions::default(),
    )
    .unwrap();
    let w = &report.witnesses[0];
    let g = arrayeq::addg::extract(&case.mutant).unwrap();
    let dot = witness_dot(&g, w).unwrap();
    assert!(dot.starts_with("digraph"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mutating a *generated* kernel (any seed) always yields fault cases
    /// whose bugs the checker finds and whose witnesses replay to a concrete
    /// divergence — the end-to-end property of the whole pipeline.
    #[test]
    fn generated_kernel_mutants_always_yield_confirmed_witnesses(seed in 0u64..40) {
        let cfg = GeneratorConfig { n: 24, layers: 2, seed, ..Default::default() };
        let original = generate_kernel(&cfg);
        let cases = curated_mutants("gen", &original);
        // The generator always emits mutable shapes (loops with bounds,
        // strided input reads), so the curation never comes back empty.
        prop_assert!(!cases.is_empty(), "no curated mutants for seed {seed}");
        for case in &cases {
            let report = verify_with_witnesses(
                &case.original,
                &case.mutant,
                &CheckOptions::default(),
                &WitnessOptions::default(),
            ).unwrap();
            prop_assert!(report.verdict == Verdict::NotEquivalent, "{}", case.name);
            let confirmed = report.witnesses.iter().find(|w| w.confirmed);
            prop_assert!(
                confirmed.is_some(),
                "{}: no replay-confirmed witness\n{}", case.name, report.summary()
            );
            let w = confirmed.unwrap();
            prop_assert!(w.original_value != w.transformed_value, "{}", case.name);
        }
    }
}
