//! Property tests for the normalization rules: for randomly generated
//! algebra-rich kernels, every rewrite the subsystem claims to normalise —
//! one-level distribution, subtraction shuffling, identity/constant noise —
//! produces a program that (1) the interpreter agrees with on deterministic
//! input fills (ground truth, independent of the checker) and (2) the
//! extended method proves `Equivalent`, sequentially and in parallel with a
//! byte-identical stable report.

use arrayeq::core::{verify_programs, CheckOptions, Verdict};
use arrayeq::lang::ast::Program;
use arrayeq::lang::interp::{standard_inputs, Interpreter};
use arrayeq::transform::algebraic::{
    distribute_program, insert_identity_noise, shuffle_subtractions,
};
use arrayeq::transform::generator::{generate_kernel, GeneratorConfig};
use proptest::prelude::*;

fn algebra_kernel(seed: u64) -> Program {
    generate_kernel(&GeneratorConfig {
        n: 24,
        layers: 3,
        inputs: 3,
        fanin: 3,
        algebra: true,
        seed,
        ..Default::default()
    })
}

/// Ground truth: both programs produce identical outputs on two
/// deterministic input fills.
fn simulation_agrees(a: &Program, b: &Program) -> bool {
    for seed in [1u64, 2] {
        let inputs = standard_inputs(a, seed);
        let (ma, _) = Interpreter::new(a).run(&inputs).expect("original runs");
        let (mb, _) = Interpreter::new(b).run(&inputs).expect("transformed runs");
        for out in a.output_arrays() {
            if ma.array(&out) != mb.array(&out) {
                return false;
            }
        }
    }
    true
}

/// The full acceptance for one rewrite: simulation agreement, an
/// `Equivalent` verdict under the extended method, and jobs-independent
/// stable reports.
fn assert_rule_holds(name: &str, original: &Program, rewritten: &Program) {
    assert!(
        simulation_agrees(original, rewritten),
        "{name}: rewrite changed observable behaviour"
    );
    let seq = verify_programs(original, rewritten, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("{name}: pipeline error {e}"));
    assert_eq!(
        seq.verdict,
        Verdict::Equivalent,
        "{name}: {}",
        seq.summary()
    );
    let par = verify_programs(original, rewritten, &CheckOptions::default().with_jobs(4))
        .unwrap_or_else(|e| panic!("{name}: parallel pipeline error {e}"));
    assert_eq!(seq.render_stable(), par.render_stable(), "{name} at jobs=4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One-level distribution: expanding every factored product of a
    /// generated kernel is interp-identical and verified `Equivalent`.
    #[test]
    fn distribution_rule_replays_and_verifies(seed in 0u64..4096) {
        let p = algebra_kernel(seed);
        let (q, expanded) = distribute_program(&p);
        prop_assume!(expanded > 0); // this kernel drew no factored product
        assert_rule_holds("distribute", &p, &q);
    }

    /// Subtraction shuffling: rotating every additive chain (signs
    /// preserved) is interp-identical and verified `Equivalent`.
    #[test]
    fn subtraction_shuffle_rule_replays_and_verifies(seed in 0u64..4096) {
        let p = algebra_kernel(seed);
        let mut q = p.clone();
        let mut rotated = 0;
        let labels: Vec<String> = p.statements().map(|a| a.label.clone()).collect();
        for label in labels {
            let (next, n) = shuffle_subtractions(&q, &label);
            q = next;
            rotated += n;
        }
        prop_assume!(rotated > 0 && q != p);
        assert_rule_holds("sub-shuffle", &p, &q);
    }

    /// Identity/constant noise: sprinkling `+ 0` / `* 1` / split constants
    /// over a generated kernel is interp-identical and verified
    /// `Equivalent` (the checker folds the noise away).
    #[test]
    fn identity_noise_rule_replays_and_verifies(seed in 0u64..4096, noise in 0u64..64) {
        let p = algebra_kernel(seed);
        let (q, inserted) = insert_identity_noise(&p, noise);
        prop_assume!(inserted > 0);
        assert_rule_holds("identity-noise", &p, &q);
    }

    /// Composition of the rules: distribute, then shuffle, then noise —
    /// still interp-identical and still `Equivalent`.
    #[test]
    fn composed_rules_replay_and_verify(seed in 0u64..4096) {
        let p = algebra_kernel(seed);
        let (q1, _) = distribute_program(&p);
        let mut q2 = q1.clone();
        let labels: Vec<String> = q2.statements().map(|a| a.label.clone()).collect();
        for label in labels {
            let (next, _) = shuffle_subtractions(&q2, &label);
            q2 = next;
        }
        let (q3, _) = insert_identity_noise(&q2, seed ^ 0x5eed);
        prop_assume!(q3 != p);
        assert_rule_holds("composed", &p, &q3);
    }

    /// The basic method rejects what only the algebra proves: whenever the
    /// composed rewrite changed the program, `Method::Basic` must *not*
    /// report equivalence (the pairs genuinely require normalization).
    #[test]
    fn rules_are_invisible_to_the_basic_method_only_via_algebra(seed in 0u64..4096) {
        let p = algebra_kernel(seed);
        let (q, inserted) = insert_identity_noise(&p, seed);
        prop_assume!(inserted > 0);
        let basic = verify_programs(&p, &q, &CheckOptions::basic()).unwrap();
        prop_assert_eq!(basic.verdict, Verdict::NotEquivalent);
    }
}
