//! Property-based tests for the omega substrate and the frontend, checking
//! the algebraic laws the equivalence checker relies on.

use arrayeq::omega::{Conjunct, Constraint, LinExpr, Relation, Set, Space};
use proptest::prelude::*;

/// A small affine 1-D relation `{ [i] -> [a*i + b] : lo <= i < hi }`.
fn affine_relation(a: i64, b: i64, lo: i64, hi: i64) -> Relation {
    Relation::parse(&format!("{{ [i] -> [{a}i + {b}] : {lo} <= i < {hi} }}")).unwrap()
}

fn interval(lo: i64, hi: i64) -> Set {
    Set::parse(&format!("{{ [i] : {lo} <= i < {hi} }}")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Composition agrees with the pointwise application of the two maps.
    #[test]
    fn compose_is_pointwise_function_composition(
        a1 in 1i64..4, b1 in -3i64..4, a2 in 1i64..4, b2 in -3i64..4,
        x in 0i64..16,
    ) {
        let r1 = affine_relation(a1, b1, 0, 16);
        let r2 = affine_relation(a2, b2, -80, 80);
        let composed = r1.compose(&r2).unwrap();
        let mid = a1 * x + b1;
        let fin = a2 * mid + b2;
        prop_assert!(composed.contains(&[x], &[fin], &[]));
        prop_assert!(!composed.contains(&[x], &[fin + 1], &[]));
    }

    /// The inverse is an involution and swaps domain and range.
    #[test]
    fn inverse_is_an_involution(a in 1i64..5, b in -4i64..5, hi in 1i64..20) {
        let r = affine_relation(a, b, 0, hi);
        prop_assert!(r.inverse().inverse().is_equal(&r).unwrap());
        prop_assert!(r.inverse().domain().is_equal(&r.range()).unwrap());
        prop_assert!(r.inverse().range().is_equal(&r.domain()).unwrap());
    }

    /// Set difference, intersection and union behave like their pointwise
    /// definitions on intervals.
    #[test]
    fn set_algebra_matches_pointwise_semantics(
        lo1 in -8i64..8, len1 in 0i64..12,
        lo2 in -8i64..8, len2 in 0i64..12,
        probe in -10i64..24,
    ) {
        let s1 = interval(lo1, lo1 + len1);
        let s2 = interval(lo2, lo2 + len2);
        let in1 = probe >= lo1 && probe < lo1 + len1;
        let in2 = probe >= lo2 && probe < lo2 + len2;
        prop_assert_eq!(s1.union(&s2).unwrap().contains(&[probe], &[]), in1 || in2);
        prop_assert_eq!(s1.intersect(&s2).unwrap().contains(&[probe], &[]), in1 && in2);
        prop_assert_eq!(s1.subtract(&s2).unwrap().contains(&[probe], &[]), in1 && !in2);
        prop_assert_eq!(s1.is_subset(&s2).unwrap(), len1 == 0 || (lo1 >= lo2 && lo1 + len1 <= lo2 + len2));
    }

    /// Equality of relations is reflexive and symmetric, and strict subsets
    /// are never reported equal.
    #[test]
    fn equality_laws(a in 1i64..4, b in -3i64..4, hi in 2i64..20) {
        let r = affine_relation(a, b, 0, hi);
        let smaller = affine_relation(a, b, 0, hi - 1);
        prop_assert!(r.is_equal(&r).unwrap());
        prop_assert!(smaller.is_subset(&r).unwrap());
        prop_assert!(!r.is_equal(&smaller).unwrap());
        prop_assert!(!r.is_subset(&smaller).unwrap());
    }

    /// The transitive closure of a unit shift contains exactly the pairs
    /// reachable in one or more steps.
    #[test]
    fn closure_of_unit_shift_is_reachability(hi in 2i64..20, from in 0i64..20, to in 0i64..21) {
        prop_assume!(from < hi);
        let r = affine_relation(1, 1, 0, hi);
        let (closure, exact) = r.transitive_closure().unwrap();
        prop_assert!(exact);
        let reachable = to > from && to <= hi;
        prop_assert_eq!(closure.contains(&[from], &[to], &[]), reachable);
    }
}

/// Builds `{ [i] -> [o] : a·i + b − o = 0  ∧  i − lo ≥ 0  ∧  hi − 1 − i ≥ 0 }`
/// programmatically, with every constraint's expression scaled by the matching
/// entry of `scales` and the constraints ordered by `rotate` — structural
/// noise that canonicalization must erase.
fn noisy_conjunct(a: i64, b: i64, lo: i64, hi: i64, scales: [i64; 3], rotate: usize) -> Conjunct {
    let space = Space::relation(&["i"], &["o"], &[]);
    let mut c = Conjunct::universe(space);
    let mut eq = LinExpr::zero(2);
    eq.set_coeff(0, a);
    eq.set_coeff(1, -1);
    eq.set_constant(b);
    let mut lo_e = LinExpr::zero(2);
    lo_e.set_coeff(0, 1);
    lo_e.set_constant(-lo);
    let mut hi_e = LinExpr::zero(2);
    hi_e.set_coeff(0, -1);
    hi_e.set_constant(hi - 1);
    let mut cs = vec![
        Constraint::eq(eq.scale(scales[0])),
        Constraint::geq(lo_e.scale(scales[1].abs())),
        Constraint::geq(hi_e.scale(scales[2].abs())),
    ];
    let n = cs.len();
    cs.rotate_left(rotate % n);
    for k in cs {
        c.add(k);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Permuting the conjuncts of a union does not change the structural
    /// hash (and equal hashes come with equal canonical keys).
    #[test]
    fn structural_hash_ignores_conjunct_order(
        a1 in 1i64..4, b1 in -3i64..4, a2 in 1i64..4, b2 in -3i64..4, hi in 1i64..16,
    ) {
        let r1 = affine_relation(a1, b1, 0, hi);
        let r2 = affine_relation(a2, b2, -5, hi + 3);
        let u12 = r1.union(&r2).unwrap();
        let u21 = r2.union(&r1).unwrap();
        prop_assert_eq!(u12.structural_hash(), u21.structural_hash());
        prop_assert_eq!(u12.canonical_key(), u21.canonical_key());
        // Duplicating a disjunct is also invisible.
        let u121 = u12.union(&r1).unwrap();
        prop_assert_eq!(u121.structural_hash(), u12.structural_hash());
    }

    /// Permuting the constraints inside a conjunct and scaling them by
    /// constants does not change the structural hash; genuinely different
    /// bounds do.
    #[test]
    fn structural_hash_is_canonical_over_constraint_noise(
        a in 1i64..4, b in -3i64..4, lo in -4i64..2, hi in 3i64..12,
        s0 in 1i64..4, s1 in 1i64..4, s2 in 1i64..4, rot in 0usize..3,
    ) {
        let space = Space::relation(&["i"], &["o"], &[]);
        let clean = Relation::from_conjuncts(
            space.clone(),
            vec![noisy_conjunct(a, b, lo, hi, [1, 1, 1], 0)],
        );
        let noisy = Relation::from_conjuncts(
            space.clone(),
            vec![noisy_conjunct(a, b, lo, hi, [s0, s1, s2], rot)],
        );
        prop_assert_eq!(clean.structural_hash(), noisy.structural_hash());
        prop_assert_eq!(clean.canonical_key(), noisy.canonical_key());
        // A shifted upper bound must be visible to the hash.
        let different = Relation::from_conjuncts(
            space,
            vec![noisy_conjunct(a, b, lo, hi + 1, [1, 1, 1], 0)],
        );
        prop_assert!(clean.structural_hash() != different.structural_hash());
    }

    /// An equality constraint and its negated twin (`e = 0` vs `−e = 0`)
    /// canonicalise to the same structural hash.
    #[test]
    fn structural_hash_ignores_equality_sign(a in 1i64..5, b in -4i64..5) {
        let space = Space::relation(&["i"], &["o"], &[]);
        let mut eq = LinExpr::zero(2);
        eq.set_coeff(0, a);
        eq.set_coeff(1, -1);
        eq.set_constant(b);
        let mut pos = Conjunct::universe(space.clone());
        pos.add(Constraint::eq(eq.clone()));
        let mut neg = Conjunct::universe(space.clone());
        neg.add(Constraint::eq(eq.scale(-1)));
        let rp = Relation::from_conjuncts(space.clone(), vec![pos]);
        let rn = Relation::from_conjuncts(space, vec![neg]);
        prop_assert_eq!(rp.structural_hash(), rn.structural_hash());
        prop_assert!(rp.is_equal(&rn).unwrap());
    }

    /// The cached hash survives cloning and equals a from-scratch
    /// recomputation on a structurally identical relation.
    #[test]
    fn structural_hash_is_stable_under_cloning(a in 1i64..4, b in -3i64..4, hi in 1i64..16) {
        let r = affine_relation(a, b, 0, hi);
        let h = r.structural_hash();
        let clone = r.clone();
        prop_assert_eq!(clone.structural_hash(), h);
        let fresh = affine_relation(a, b, 0, hi);
        prop_assert_eq!(fresh.structural_hash(), h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Model extraction invariant: whenever a relation is non-empty,
    /// `sample_point` returns a point, and that point is a member
    /// (`contains` re-decides with the full existential machinery).  Covers
    /// plain bounds, congruences and explicit existential strides.
    #[test]
    fn sample_point_is_always_a_member(
        a in 1i64..5, b in -6i64..7, lo in -6i64..4, len in 0i64..12,
        m in 2i64..5, r in 0i64..4,
    ) {
        let bounded = affine_relation(a, b, lo, lo + len);
        let strided = Relation::parse(&format!(
            "{{ [i] -> [{a}i + {b}] : {lo} <= i < {hi} and i % {m} = {r} }}",
            hi = lo + len, r = r % m,
        )).unwrap();
        let existential = Relation::parse(&format!(
            "{{ [i] -> [{a}i + {b}] : exists k : i = {m}k + {r} and {lo} <= i < {hi} }}",
            hi = lo + len, r = r % m,
        )).unwrap();
        for rel in [&bounded, &strided, &existential] {
            match rel.sample_point() {
                Some(s) => {
                    prop_assert!(rel.contains(&s.input, &s.output, &s.params),
                        "sampled point outside relation {rel}");
                    prop_assert!(!rel.is_empty());
                }
                None => prop_assert!(rel.is_empty(), "no point for non-empty {rel}"),
            }
        }
        // Strided and existential describe the same set: sampling must agree
        // on emptiness.
        prop_assert_eq!(strided.sample_point().is_some(), existential.sample_point().is_some());
    }

    /// Every point of a set can be enumerated by sample-and-subtract, each
    /// sampled point satisfies every constraint, and the enumeration count
    /// matches the set's cardinality.
    #[test]
    fn sample_and_subtract_enumerates_exactly(lo in -5i64..5, len in 0i64..8, m in 2i64..4) {
        let s = Set::parse(&format!(
            "{{ [k] : k % {m} = 0 and {lo} <= k < {hi} }}", hi = lo + len,
        )).unwrap();
        let expected: Vec<i64> = (lo..lo + len).filter(|k| k.rem_euclid(m) == 0).collect();
        let mut seen = Vec::new();
        let mut remaining = s.clone();
        while let Some((p, _)) = remaining.sample_point() {
            prop_assert!(s.contains(&p, &[]), "{p:?} outside {s}");
            prop_assert!(!seen.contains(&p[0]), "duplicate {p:?}");
            seen.push(p[0]);
            remaining = remaining.without_point(&p).unwrap();
            prop_assert!(seen.len() <= expected.len(), "sampled too many points");
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pretty-printing a generated kernel and re-parsing it yields a program
    /// the checker proves equivalent to the original.
    #[test]
    fn generated_kernels_round_trip_through_the_printer(seed in 0u64..50, layers in 1usize..4) {
        use arrayeq::core::{verify_programs, CheckOptions};
        use arrayeq::lang::{parser::parse_program, pretty::program_to_string};
        use arrayeq::transform::generator::{generate_kernel, GeneratorConfig};

        let cfg = GeneratorConfig { n: 24, layers, seed, ..Default::default() };
        let p = generate_kernel(&cfg);
        let reparsed = parse_program(&program_to_string(&p)).unwrap();
        let report = verify_programs(&p, &reparsed, &CheckOptions::default()).unwrap();
        prop_assert!(report.is_equivalent());
    }

    /// Random transformation pipelines never produce a program the checker
    /// rejects (soundness of the correct-by-construction transformations).
    #[test]
    fn random_pipelines_always_verify(seed in 0u64..30) {
        use arrayeq::core::{verify_programs, CheckOptions};
        use arrayeq::transform::generator::{generate_kernel, GeneratorConfig};
        use arrayeq::transform::random_pipeline;

        let cfg = GeneratorConfig { n: 24, layers: 2, seed, ..Default::default() };
        let p = generate_kernel(&cfg);
        let (t, _) = random_pipeline(&p, 4, seed * 31 + 7);
        let report = verify_programs(&p, &t, &CheckOptions::default()).unwrap();
        prop_assert!(report.is_equivalent());
    }
}
