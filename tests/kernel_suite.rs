//! Integration test: the realistic kernel suite verifies under random
//! transformation pipelines (the Section 6.2 workload, experiment E8).

use arrayeq::core::{verify_programs, CheckOptions};
use arrayeq::lang::corpus::KERNELS;
use arrayeq::lang::parser::parse_program;
use arrayeq::transform::random_pipeline;

#[test]
fn every_kernel_verifies_against_its_transformed_version() {
    for (name, src) in KERNELS {
        let original = parse_program(src).unwrap();
        let (transformed, steps) = random_pipeline(&original, 6, 23);
        let report = verify_programs(&original, &transformed, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.is_equivalent(),
            "{name} with steps {steps:?}:\n{}",
            report.summary()
        );
    }
}
