//! Reproduces the paper's running example: the four program versions of
//! Fig. 1 and the verdicts of Sections 5 and 6 (E1/E3 of EXPERIMENTS.md),
//! issued as one parallel batch through the persistent engine.
//!
//! Run with `cargo run --release --example fig1_paper`.

use arrayeq::core::Method;
use arrayeq::engine::{Verifier, VerifyRequest};
use arrayeq::lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D};

fn main() {
    let pairs = [
        ("(a) vs (b)", FIG1_A, FIG1_B, true),
        ("(a) vs (c)", FIG1_A, FIG1_C, true),
        ("(b) vs (c)", FIG1_B, FIG1_C, true),
        ("(a) vs (d)", FIG1_A, FIG1_D, false),
    ];

    // One engine, one batch: the requests fan across a worker pool, the
    // results come back in request order, and all workers share one cache.
    let verifier = Verifier::builder().build();
    let requests: Vec<VerifyRequest> = pairs
        .iter()
        .map(|(_, a, b, _)| VerifyRequest::source(*a, *b))
        .collect();
    let outcomes = verifier.verify_batch(&requests);

    for ((name, _, _, expect_equivalent), outcome) in pairs.iter().zip(outcomes) {
        let outcome = outcome.expect("pipeline runs");
        println!(
            "{name}: {}   (paths: {}, flattenings: {}, matchings: {})",
            outcome.report.verdict,
            outcome.report.stats.paths_compared,
            outcome.report.stats.flattenings,
            outcome.report.stats.matchings
        );
        assert_eq!(outcome.report.is_equivalent(), *expect_equivalent, "{name}");
    }
    let session = verifier.session_stats();
    println!(
        "session: {} queries ({} equivalent, {} not), {} shared-table entries",
        session.queries, session.equivalent, session.not_equivalent, session.shared_table_entries
    );

    // The basic method of Section 5.1 cannot handle the algebraic
    // transformations that produce (c).  Method choice is an engine-level
    // policy (cache entries are only valid under one options set), so a
    // basic-method check is a second engine.
    let basic = Verifier::builder().method(Method::Basic).build();
    let outcome = basic.verify_source(FIG1_A, FIG1_C).unwrap();
    println!(
        "(a) vs (c) with the basic method: {}",
        outcome.report.verdict
    );
    assert!(!outcome.report.is_equivalent());
}
