//! Reproduces the paper's running example: the four program versions of
//! Fig. 1 and the verdicts of Sections 5 and 6 (E1/E3 of EXPERIMENTS.md).
//!
//! Run with `cargo run --release --example fig1_paper`.

use arrayeq::core::{verify_source, CheckOptions};
use arrayeq::lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D};

fn main() {
    let pairs = [
        ("(a) vs (b)", FIG1_A, FIG1_B, true),
        ("(a) vs (c)", FIG1_A, FIG1_C, true),
        ("(b) vs (c)", FIG1_B, FIG1_C, true),
        ("(a) vs (d)", FIG1_A, FIG1_D, false),
    ];
    for (name, a, b, expect_equivalent) in pairs {
        let report = verify_source(a, b, &CheckOptions::default()).expect("pipeline runs");
        println!(
            "{name}: {}   (paths: {}, flattenings: {}, matchings: {})",
            report.verdict,
            report.stats.paths_compared,
            report.stats.flattenings,
            report.stats.matchings
        );
        assert_eq!(report.is_equivalent(), expect_equivalent, "{name}");
    }

    // The basic method of Section 5.1 cannot handle the algebraic
    // transformations that produce (c).
    let basic = verify_source(FIG1_A, FIG1_C, &CheckOptions::basic()).unwrap();
    println!("(a) vs (c) with the basic method: {}", basic.verdict);
    assert!(!basic.is_equivalent());
}
