//! Section 6.1: error diagnostics for the erroneous transformed version (d)
//! of Fig. 1 — the failing paths, the differing mappings, the blame
//! heuristic pointing at the `buf` index expression of statement v3, and the
//! witness engine's concrete counterexample: an output element at which the
//! two programs *execute* to different values, with the failing ADDG slice
//! rendered for Graphviz.
//!
//! Run with `cargo run --release --example diagnose_bug`.

use arrayeq::addg::extract;
use arrayeq::core::CheckOptions;
use arrayeq::lang::corpus::{FIG1_A, FIG1_D};
use arrayeq::lang::parser::parse_program;
use arrayeq::witness::{verify_with_witnesses, witness_dot, WitnessOptions};

fn main() {
    let original = parse_program(FIG1_A).expect("fig1(a) parses");
    let transformed = parse_program(FIG1_D).expect("fig1(d) parses");
    let report = verify_with_witnesses(
        &original,
        &transformed,
        &CheckOptions::default(),
        &WitnessOptions::default(),
    )
    .expect("pipeline runs");
    assert!(!report.is_equivalent());
    println!("{}", report.summary());

    println!("--- blame heuristic ---");
    for (stmt, failing_paths) in report.blame() {
        println!("statement {stmt}: involved in {failing_paths} failing path(s)");
    }

    println!("--- concrete counterexamples ---");
    for w in &report.witnesses {
        println!("{w}");
    }

    if let Some(w) = report.witnesses.iter().find(|w| w.confirmed) {
        let g = extract(&transformed).expect("ADDG extraction");
        let dot = witness_dot(&g, w).expect("slice renders");
        println!("--- failing slice of the transformed ADDG (Graphviz) ---");
        println!("{dot}");
    }
}
