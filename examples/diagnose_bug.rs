//! Section 6.1: error diagnostics for the erroneous transformed version (d)
//! of Fig. 1 — the failing paths, the differing mappings and the blame
//! heuristic pointing at the `buf` index expression of statement v3.
//!
//! Run with `cargo run --release --example diagnose_bug`.

use arrayeq::core::{verify_source, CheckOptions};
use arrayeq::lang::corpus::{FIG1_A, FIG1_D};

fn main() {
    let report = verify_source(FIG1_A, FIG1_D, &CheckOptions::default()).expect("pipeline runs");
    assert!(!report.is_equivalent());
    println!("{}", report.summary());

    println!("--- blame heuristic ---");
    for (stmt, failing_paths) in report.blame() {
        println!("statement {stmt}: involved in {failing_paths} failing path(s)");
    }
}
