//! Section 6.1: error diagnostics for the erroneous transformed version (d)
//! of Fig. 1 — the failing paths, the differing mappings, the blame
//! heuristic pointing at the `buf` index expression of statement v3, and a
//! concrete counterexample: an output element at which the two programs
//! *execute* to different values, with the failing ADDG slice rendered for
//! Graphviz.  Witness extraction is an engine option — one
//! `Verifier::builder().witnesses(true)` call, no separate entry point.
//!
//! Run with `cargo run --release --example diagnose_bug`.

use arrayeq::addg::extract;
use arrayeq::engine::{report_to_json, Verifier};
use arrayeq::lang::corpus::{FIG1_A, FIG1_D};
use arrayeq::lang::parser::parse_program;
use arrayeq::witness::witness_dot;

fn main() {
    let verifier = Verifier::builder().witnesses(true).build();
    let outcome = verifier
        .verify_source(FIG1_A, FIG1_D)
        .expect("pipeline runs");
    let report = &outcome.report;
    assert!(!report.is_equivalent());
    println!("{}", report.summary());

    println!("--- blame heuristic ---");
    for (stmt, failing_paths) in report.blame() {
        println!("statement {stmt}: involved in {failing_paths} failing path(s)");
    }

    println!("--- concrete counterexamples ---");
    for w in &report.witnesses {
        println!("{w}");
    }

    if let Some(w) = report.witnesses.iter().find(|w| w.confirmed) {
        let transformed = parse_program(FIG1_D).expect("fig1(d) parses");
        let g = extract(&transformed).expect("ADDG extraction");
        let dot = witness_dot(&g, w).expect("slice renders");
        println!("--- failing slice of the transformed ADDG (Graphviz) ---");
        println!("{dot}");
    }

    // The same report, machine-readable (what `arrayeq verify --json` emits).
    println!("--- JSON ---");
    println!("{}", report_to_json(report));
}
