//! Quick start: verify that a hand-transformed loop is equivalent to the
//! original and inspect the checker's statistics.
//!
//! Run with `cargo run --example quickstart`.

use arrayeq::core::{verify_source, CheckOptions};

fn main() {
    let original = r#"
#define N 64
void scale_add(int A[], int B[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[2*k] + B[k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + B[2*k];
}
"#;

    // The designer fused the loops, dropped the temporary and re-associated
    // the additions — all transformations the checker supports.
    let transformed = r#"
#define N 64
void scale_add(int A[], int B[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
t1:     C[k] = B[2*k] + (B[k] + A[2*k]);
}
"#;

    let report = verify_source(original, transformed, &CheckOptions::default())
        .expect("both programs are in the supported class");
    println!("verdict: {}", report.verdict);
    println!(
        "paths compared: {}, mapping equalities: {}, flattenings: {}",
        report.stats.paths_compared, report.stats.mapping_equalities, report.stats.flattenings
    );
    assert!(report.is_equivalent());
}
