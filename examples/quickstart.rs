//! Quick start: verify that a hand-transformed loop is equivalent to the
//! original, then re-check it and watch the persistent engine answer from
//! its cross-query caches.
//!
//! Run with `cargo run --example quickstart`.

use arrayeq::engine::Verifier;

fn main() {
    let original = r#"
#define N 64
void scale_add(int A[], int B[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[2*k] + B[k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + B[2*k];
}
"#;

    // The designer fused the loops, dropped the temporary and re-associated
    // the additions — all transformations the checker supports.
    let transformed = r#"
#define N 64
void scale_add(int A[], int B[], int C[]) {
    int k;
    for (k = 0; k < N; k++)
t1:     C[k] = B[2*k] + (B[k] + A[2*k]);
}
"#;

    // Construct the engine once; issue as many queries as you like.
    let verifier = Verifier::builder().build();

    let outcome = verifier
        .verify_source(original, transformed)
        .expect("both programs are in the supported class");
    println!("verdict: {}", outcome.report.verdict);
    println!(
        "paths compared: {}, mapping equalities: {}, flattenings: {}",
        outcome.report.stats.paths_compared,
        outcome.report.stats.mapping_equalities,
        outcome.report.stats.flattenings
    );
    assert!(outcome.report.is_equivalent());

    // Re-checking the same pair (the post-edit CI regime) rides the session
    // caches: sub-proofs established above discharge whole sub-traversals.
    let again = verifier
        .verify_source(original, transformed)
        .expect("pipeline runs");
    println!(
        "re-check: {} shared-table hits, session hit rate {:.0}%",
        again.report.stats.shared_table_hits,
        again.session.combined_hit_rate() * 100.0
    );
    assert!(again.report.stats.shared_table_hits > 0);
}
