//! Extracts the ADDGs of the Fig. 1 programs (the graphs drawn in Fig. 2 of
//! the paper) and writes them as Graphviz `.dot` files.
//!
//! Run with `cargo run --example addg_export`; then e.g.
//! `dot -Tpdf addg_a.dot -o addg_a.pdf`.

use arrayeq::addg::{extract, to_dot};
use arrayeq::lang::corpus::FIG1_ALL;
use arrayeq::lang::parser::parse_program;

fn main() {
    for (name, src) in FIG1_ALL {
        let program = parse_program(src).expect("corpus program parses");
        let addg = extract(&program).expect("class program has an ADDG");
        println!(
            "version ({name}): {} statements, {} nodes, {} leaf paths, outputs {:?}",
            addg.statement_count(),
            addg.node_count(),
            addg.leaf_path_count(),
            addg.output_arrays()
        );
        let path = format!("addg_{name}.dot");
        std::fs::write(&path, to_dot(&addg)).expect("write dot file");
        println!("  wrote {path}");
    }
}
