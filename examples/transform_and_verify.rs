//! A designer's workflow: start from a kernel, apply a pipeline of
//! transformations (loop + data-flow + algebraic), verify every step
//! through one persistent engine session — successive steps share most of
//! their sub-computations, so the session's caches keep getting warmer —
//! then inject a bug and watch the checker localise it.
//!
//! Run with `cargo run --release --example transform_and_verify`.

use arrayeq::engine::{Verifier, VerifyRequest};
use arrayeq::lang::corpus::{with_size, FIG1_A};
use arrayeq::lang::parser::parse_program;
use arrayeq::lang::pretty::program_to_string;
use arrayeq::transform::errors::{inject, Bug};
use arrayeq::transform::random_pipeline;

fn main() {
    let original = parse_program(&with_size(FIG1_A, 128)).expect("corpus program parses");
    let verifier = Verifier::builder().witnesses(true).build();

    // Verify each prefix of a reproducible random pipeline against the
    // original — the PEQcheck-style localized re-checking regime where
    // verification is a *repeated* query over shared sub-problems.
    let mut transformed = original.clone();
    for steps in 1..=4 {
        let (next, applied) = random_pipeline(&original, 2 * steps, 2024);
        transformed = next;
        let outcome = verifier
            .verify(&VerifyRequest::programs(
                original.clone(),
                transformed.clone(),
            ))
            .expect("pipeline runs");
        println!(
            "after {} transformation steps {applied:?}: {}  ({} shared-table hits)",
            2 * steps,
            outcome.report.verdict,
            outcome.report.stats.shared_table_hits
        );
        assert!(outcome.report.is_equivalent());
    }
    println!(
        "\n--- final transformed program ---\n{}",
        program_to_string(&transformed)
    );
    let session = verifier.session_stats();
    println!(
        "session after the pipeline: {} queries, combined hit rate {:.0}%",
        session.queries,
        session.combined_hit_rate() * 100.0
    );

    // Now the designer slips: an off-by-two in the buf index of s2.  The
    // same session rejects it — with a concrete counterexample attached,
    // because the engine was built with witnesses enabled.
    let broken = inject(&transformed, "s2", Bug::IndexOffset(2))
        .or_else(|_| inject(&transformed, "s2_hi", Bug::IndexOffset(2)))
        .expect("statement s2 still exists in some form");
    let outcome = verifier
        .verify(&VerifyRequest::programs(original, broken))
        .expect("pipeline runs");
    println!(
        "verification of the buggy version: {}",
        outcome.report.verdict
    );
    assert!(!outcome.report.is_equivalent());
    println!("{}", outcome.report.summary());
}
