//! A designer's workflow: start from a kernel, apply a pipeline of
//! transformations (loop + data-flow + algebraic), verify every step, then
//! inject a bug and watch the checker localise it.
//!
//! Run with `cargo run --release --example transform_and_verify`.

use arrayeq::core::{verify_programs, CheckOptions};
use arrayeq::lang::corpus::{with_size, FIG1_A};
use arrayeq::lang::parser::parse_program;
use arrayeq::lang::pretty::program_to_string;
use arrayeq::transform::errors::{inject, Bug};
use arrayeq::transform::random_pipeline;

fn main() {
    let original = parse_program(&with_size(FIG1_A, 128)).expect("corpus program parses");

    // Apply a reproducible random pipeline of legality-checked transformations.
    let (transformed, steps) = random_pipeline(&original, 8, 2024);
    println!("applied transformation steps: {steps:?}\n");
    println!(
        "--- transformed program ---\n{}",
        program_to_string(&transformed)
    );

    let report = verify_programs(&original, &transformed, &CheckOptions::default()).unwrap();
    println!("verification of the pipeline: {}", report.verdict);
    assert!(report.is_equivalent());

    // Now the designer slips: an off-by-two in the buf index of s2.
    let broken = inject(&transformed, "s2", Bug::IndexOffset(2))
        .or_else(|_| inject(&transformed, "s2_hi", Bug::IndexOffset(2)))
        .expect("statement s2 still exists in some form");
    let report = verify_programs(&original, &broken, &CheckOptions::default()).unwrap();
    println!("verification of the buggy version: {}", report.verdict);
    assert!(!report.is_equivalent());
    println!("{}", report.summary());
}
