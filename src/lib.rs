//! # arrayeq
//!
//! Façade crate of the *arrayeq* workspace: a reproduction of the DATE 2005
//! paper *"Functional Equivalence Checking for Verification of Algebraic
//! Transformations on Array-Intensive Source Code"* (Shashidhar, Bruynooghe,
//! Catthoor, Janssens).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports their public APIs under stable module names so applications can
//! depend on a single crate:
//!
//! * [`omega`] — integer sets and affine relations (the Omega-calculator
//!   substrate),
//! * [`lang`] — the restricted-C frontend, class checks, def-use analysis and
//!   the reference interpreter,
//! * [`addg`] — array data dependence graphs,
//! * [`core`] — the equivalence checker (basic and extended methods) with
//!   error diagnostics,
//! * [`transform`] — source-to-source transformations, error injection,
//!   fault-injection mutation harness and workload generators,
//! * [`witness`] — concrete counterexamples for `NotEquivalent` verdicts:
//!   Omega model extraction, interpreter replay and failing-slice export.
//!
//! ## Quick start
//!
//! ```
//! use arrayeq::core::{verify_source, CheckOptions};
//!
//! let original = r#"
//!     #define N 16
//!     void f(int A[], int C[]) {
//!         int k;
//!         for (k = 0; k < N; k++)
//!     s1:     C[k] = A[2*k] + A[k];
//!     }
//! "#;
//! let transformed = r#"
//!     #define N 16
//!     void f(int A[], int C[]) {
//!         int k;
//!         for (k = 15; k >= 0; k--)
//!     t1:     C[k] = A[k] + A[2*k];
//!     }
//! "#;
//! let report = verify_source(original, transformed, &CheckOptions::default()).unwrap();
//! assert!(report.is_equivalent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arrayeq_addg as addg;
pub use arrayeq_core as core;
pub use arrayeq_lang as lang;
pub use arrayeq_omega as omega;
pub use arrayeq_transform as transform;
pub use arrayeq_witness as witness;
