//! # arrayeq
//!
//! Façade crate of the *arrayeq* workspace: a reproduction of the DATE 2005
//! paper *"Functional Equivalence Checking for Verification of Algebraic
//! Transformations on Array-Intensive Source Code"* (Shashidhar, Bruynooghe,
//! Catthoor, Janssens), grown into a persistent verification engine.
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports their public APIs under stable module names so applications can
//! depend on a single crate:
//!
//! * [`engine`] — **the recommended entry point**: a long-lived
//!   [`Verifier`](engine::Verifier) with cross-query shared caches, budgets
//!   (deadline / cancellation / work limit), parallel batch verification and
//!   JSON rendering,
//! * [`omega`] — integer sets and affine relations (the Omega-calculator
//!   substrate),
//! * [`lang`] — the restricted-C frontend, class checks, def-use analysis and
//!   the reference interpreter,
//! * [`addg`] — array data dependence graphs (plus content fingerprints for
//!   cross-query tabling),
//! * [`core`] — the equivalence checker (basic and extended methods) with
//!   error diagnostics; its free functions are the one-shot convenience path,
//! * [`transform`] — source-to-source transformations, error injection,
//!   fault-injection mutation harness and workload generators,
//! * [`witness`] — concrete counterexamples for `NotEquivalent` verdicts:
//!   Omega model extraction, interpreter replay and failing-slice export
//!   (folded into the engine via
//!   [`VerifierBuilder::witnesses`](engine::VerifierBuilder::witnesses)).
//!
//! ## Quick start
//!
//! Construct a [`Verifier`](engine::Verifier) once and issue queries against
//! it; the session amortises sub-proofs and Omega-test verdicts across
//! queries and threads:
//!
//! ```
//! use arrayeq::engine::{Verifier, VerifyRequest};
//!
//! let original = r#"
//!     #define N 16
//!     void f(int A[], int C[]) {
//!         int k;
//!         for (k = 0; k < N; k++)
//!     s1:     C[k] = A[2*k] + A[k];
//!     }
//! "#;
//! let transformed = r#"
//!     #define N 16
//!     void f(int A[], int C[]) {
//!         int k;
//!         for (k = 15; k >= 0; k--)
//!     t1:     C[k] = A[k] + A[2*k];
//!     }
//! "#;
//!
//! let verifier = Verifier::builder()
//!     .witnesses(true)                                  // counterexamples on failure
//!     .deadline(std::time::Duration::from_secs(5))      // per-request budget
//!     .build();
//!
//! let outcome = verifier.verify_source(original, transformed).unwrap();
//! assert!(outcome.report.is_equivalent());
//!
//! // Re-checks and perturbed variants reuse the session's caches...
//! let again = verifier.verify_source(original, transformed).unwrap();
//! assert!(again.report.stats.shared_table_hits > 0);
//!
//! // ...and batches fan out across a worker pool, results in request order.
//! let outcomes = verifier.verify_batch(&[
//!     VerifyRequest::source(original, transformed),
//!     VerifyRequest::source(original, original),
//! ]);
//! assert!(outcomes.iter().all(|o| o.as_ref().unwrap().report.is_equivalent()));
//! ```
//!
//! One *large* request (many outputs, wide kernels) can itself be sharded
//! across a worker pool with
//! [`VerifierBuilder::jobs`](engine::VerifierBuilder::jobs) (or
//! [`CheckOptions::jobs`](core::CheckOptions) on the one-shot path): the
//! root obligation splits into per-output and per-definition sub-proofs,
//! workers share the session caches, and the verdict, diagnostics and the
//! stable rendering ([`Report::render_stable`](core::Report::render_stable))
//! are byte-identical at every worker count:
//!
//! ```
//! use arrayeq::engine::Verifier;
//! let wide = Verifier::builder().jobs(0).build(); // 0 = all cores
//! # let _ = wide;
//! ```
//!
//! The extended method normalises algebraic chains through the
//! [`core::normalize`-backed operator algebra](core::OperatorProperties):
//! out of the box `+`/`*` flatten with constant folding, identity and
//! annihilator elements, `-`/negation fold into the `+` chain, and `*`
//! distributes one level over `+` — so factored/expanded and
//! subtraction-shuffled kernels verify.  Declare *your own* operators
//! (e.g. saturating `min`/`max`) with
//! [`VerifierBuilder::declare_call`](engine::VerifierBuilder::declare_call)
//! (CLI: `--declare-op min=ac`):
//!
//! ```
//! use arrayeq::engine::{OperatorClass, Verifier};
//! let verifier = Verifier::builder()
//!     .declare_call("min", OperatorClass::AC)
//!     .build();
//! # let _ = verifier;
//! ```
//!
//! For one-off checks the original free functions remain as thin one-shot
//! wrappers: [`core::verify_source`], [`core::verify_programs`],
//! [`core::verify_addgs`] and [`witness::verify_with_witnesses`].
//!
//! ## The `arrayeq` CLI
//!
//! The `crates/cli` binary exposes the engine on the command line:
//!
//! ```text
//! arrayeq verify a.c b.c [--method basic|extended] [--declare-op name=ac]...
//!                        [--witnesses] [--json] [--dot out.dot]
//!                        [--deadline-ms N] [--max-work N] [--jobs N]
//! arrayeq corpus --list          # built-in programs and fault-corpus mutants
//! arrayeq corpus fig1a           # print one of them
//! ```
//!
//! Exit codes are the machine contract: `0` equivalent, `1` not equivalent,
//! `2` inconclusive (typed budget reason in the JSON), `>2` usage or
//! pipeline error.  `--json` emits the full outcome — verdict, stats,
//! diagnostics, witnesses, session counters — as a single document parsable
//! with [`engine::JsonValue::parse`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arrayeq_addg as addg;
pub use arrayeq_core as core;
pub use arrayeq_engine as engine;
pub use arrayeq_lang as lang;
pub use arrayeq_omega as omega;
pub use arrayeq_transform as transform;
pub use arrayeq_witness as witness;
