//! Process-level fault injection against the daemon: `ARRAYEQ_SERVE_PANIC_IDS`
//! makes the worker panic inside the verification of the named request ids.
//! A poisoned request must answer `ok:false` on its own connection while
//! every other connection proceeds, the daemon must survive an 8-panic storm
//! across concurrent sessions, and the session afterwards must answer
//! byte-identically to a freshly started daemon.
//!
//! This file is its own test binary on purpose: the env hook is read once
//! per process, so it must not leak into the other serve tests.

use arrayeq_engine::{JsonValue, Verifier};
use arrayeq_lang::corpus::{FIG1_A, FIG1_C, FIG1_D};
use arrayeq_serve::client::{control_request_line, response_verdict, Client};
use arrayeq_serve::{ServeConfig, Server, SpawnedServer};
use std::fs;
use std::path::PathBuf;

/// The ids the daemon is armed to panic on: one per concurrent client.
const POISONED_IDS: [u64; 8] = [9001, 9002, 9003, 9004, 9005, 9006, 9007, 9008];

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arrayeq-panic-it-{tag}-{}", std::process::id()))
}

fn start_daemon(tag: &str) -> SpawnedServer {
    let socket = tmp_path(&format!("{tag}.sock"));
    let _ = fs::remove_file(&socket);
    SpawnedServer::start(Server::new(Verifier::new(), ServeConfig::default()), socket).unwrap()
}

#[test]
fn daemon_survives_a_panic_storm_and_answers_byte_identically_afterwards() {
    std::env::set_var(
        "ARRAYEQ_SERVE_PANIC_IDS",
        POISONED_IDS
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    let daemon = start_daemon("storm");

    // 8 concurrent connections, each sending one poisoned verify followed
    // by one clean verify on the same session.  The poisoned request
    // answers ok:false with the panic surfaced as the error; the clean one
    // is unaffected — the panic poisons the request, not the session.
    std::thread::scope(|scope| {
        for (i, &poisoned_id) in POISONED_IDS.iter().enumerate() {
            let socket = daemon.socket().to_path_buf();
            scope.spawn(move || {
                let mut client = Client::connect(&socket).unwrap();
                let response = client.verify(poisoned_id, FIG1_A, FIG1_C).unwrap();
                let v = JsonValue::parse(&response).unwrap();
                assert_eq!(
                    v.get("id").and_then(JsonValue::as_i64),
                    Some(poisoned_id as i64),
                    "the failure is answered on the poisoned request's id: {response}"
                );
                assert_eq!(
                    v.get("ok").and_then(JsonValue::as_bool),
                    Some(false),
                    "poisoned request answers ok:false: {response}"
                );
                let error = v.get("error").and_then(JsonValue::as_str).unwrap();
                assert!(
                    error.contains("panicked"),
                    "the error names the panic: {error}"
                );

                // Same connection, next request: alive and correct.  Odd
                // clients check an inequivalent pair so the storm covers
                // both verdict directions.
                let clean_id = 100 + i as u64;
                let (b, expected) = if i % 2 == 0 {
                    (FIG1_C, "equivalent")
                } else {
                    (FIG1_D, "not_equivalent")
                };
                let response = client.verify(clean_id, FIG1_A, b).unwrap();
                assert_eq!(
                    response_verdict(&response).unwrap(),
                    expected,
                    "client {i}: {response}"
                );
            });
        }
    });

    // The storm must not have wedged the daemon: control traffic works…
    let mut client = Client::connect(daemon.socket()).unwrap();
    let pong = client.request(&control_request_line(1, "ping")).unwrap();
    assert!(pong.contains("\"ok\":true"), "{pong}");

    // …and a verify after 8 worker panics is byte-identical to the same
    // request against a freshly started daemon: whatever the panicking
    // workers left behind in the shared tables is complete, not corrupt.
    let after = client.verify(777, FIG1_A, FIG1_C).unwrap();
    drop(client);
    daemon.stop().unwrap();

    std::env::remove_var("ARRAYEQ_SERVE_PANIC_IDS");
    let fresh_daemon = start_daemon("fresh");
    let mut fresh = Client::connect(fresh_daemon.socket()).unwrap();
    let baseline = fresh.verify(777, FIG1_A, FIG1_C).unwrap();
    drop(fresh);
    fresh_daemon.stop().unwrap();

    // The response embeds wall time and warm-session cache counters, which
    // legitimately differ between a long-lived session and a cold daemon;
    // everything semantic — verdict, typed budget reason, outputs, content
    // fingerprints, diagnostics, witnesses, blame — must be byte-identical.
    assert_eq!(mask_volatile(&after), mask_volatile(&baseline));
    assert!(response_verdict(&after).unwrap() == "equivalent");
}

/// Strips the volatile parts of a response line — the per-request `stats`
/// and per-session `session` counter objects (both flat) and the wall-time
/// stamp — leaving only semantic content for byte comparison.
fn mask_volatile(line: &str) -> String {
    let mut out = line.to_owned();
    for key in ["\"stats\":{", "\"session\":{"] {
        while let Some(pos) = out.find(key) {
            let obj_end = out[pos..].find('}').expect("flat object closes") + pos + 1;
            out.replace_range(pos..obj_end, "\"masked\":0");
        }
    }
    while let Some(pos) = out.find("\"wall_time_us\":") {
        let val_start = pos + "\"wall_time_us\":".len();
        let val_end = out[val_start..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|n| val_start + n)
            .unwrap_or(out.len());
        out.replace_range(pos..val_end, "\"masked_time\":0");
    }
    out
}
