//! Concurrent daemon sessions: N client threads over one Unix socket, mixed
//! equivalent and fault-corpus requests, per-client verdict correctness,
//! cross-client shared-table reuse, and budget/cancellation isolation — one
//! client's limits never leak into another's verdict.

use arrayeq_engine::{JsonValue, Verifier};
use arrayeq_lang::corpus::{FIG1_A, FIG1_C};
use arrayeq_lang::pretty::program_to_string;
use arrayeq_serve::client::{
    cancel_request_line, control_request_line, response_verdict, verify_request_line, Client,
    VerifyParams,
};
use arrayeq_serve::{ServeConfig, Server, SpawnedServer};
use arrayeq_transform::mutate::fault_corpus;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arrayeq-serve-it-{tag}-{}", std::process::id()))
}

fn start_daemon(tag: &str, verifier: Verifier) -> SpawnedServer {
    let socket = tmp_path(&format!("{tag}.sock"));
    let _ = fs::remove_file(&socket);
    SpawnedServer::start(Server::new(verifier, ServeConfig::default()), socket).unwrap()
}

#[test]
fn concurrent_clients_get_correct_verdicts_and_share_the_table() {
    let daemon = start_daemon("concurrent", Verifier::new());
    let corpus: Vec<(String, String, bool)> = {
        let mut pairs = vec![(FIG1_A.to_owned(), FIG1_C.to_owned(), true)];
        for case in fault_corpus().into_iter().take(3) {
            pairs.push((
                program_to_string(&case.original),
                program_to_string(&case.mutant),
                false,
            ));
        }
        pairs
    };

    std::thread::scope(|scope| {
        for client_no in 0..4u64 {
            let socket = daemon.socket().to_path_buf();
            let corpus = &corpus;
            scope.spawn(move || {
                let mut client = Client::connect(&socket).unwrap();
                assert!(client.greeting().contains("arrayeq-serve-v1"));
                for (i, (original, transformed, equivalent)) in corpus.iter().enumerate() {
                    let id = client_no * 100 + i as u64;
                    let response = client.verify(id, original, transformed).unwrap();
                    let verdict = response_verdict(&response).unwrap();
                    let expected = if *equivalent {
                        "equivalent"
                    } else {
                        "not_equivalent"
                    };
                    assert_eq!(verdict, expected, "client {client_no} pair {i}: {response}");
                    let v = JsonValue::parse(&response).unwrap();
                    assert_eq!(v.get("id").and_then(JsonValue::as_i64), Some(id as i64));
                }
            });
        }
    });

    // All four clients verified the same pairs against one engine: the
    // later ones must have discharged sub-proofs from the shared table.
    let mut client = Client::connect(daemon.socket()).unwrap();
    let stats = client.request(&control_request_line(1, "stats")).unwrap();
    let v = JsonValue::parse(&stats).unwrap();
    let session = v.get("result").and_then(|r| r.get("session")).unwrap();
    let queries = session.get("queries").and_then(JsonValue::as_i64).unwrap();
    let hits = session
        .get("shared_table_hits")
        .and_then(JsonValue::as_i64)
        .unwrap();
    assert_eq!(queries, 4 * corpus.len() as i64);
    assert!(hits > 0, "cross-client shared-table reuse: {stats}");
    drop(client);
    daemon.stop().unwrap();
}

#[test]
fn budgets_and_cancellation_stay_per_client() {
    let daemon = start_daemon("isolation", Verifier::new());

    std::thread::scope(|scope| {
        // Client A: starved budget -> inconclusive with a typed reason.
        let socket_a = daemon.socket().to_path_buf();
        scope.spawn(move || {
            let mut a = Client::connect(&socket_a).unwrap();
            let line = verify_request_line(
                1,
                FIG1_A,
                FIG1_C,
                &VerifyParams {
                    max_work: Some(1),
                    ..VerifyParams::default()
                },
            );
            let response = a.request(&line).unwrap();
            assert_eq!(response_verdict(&response).unwrap(), "inconclusive");
            let v = JsonValue::parse(&response).unwrap();
            let reason = v
                .get("result")
                .and_then(|r| r.get("report"))
                .and_then(|r| r.get("budget_exhausted"))
                .and_then(|b| b.get("reason"))
                .and_then(JsonValue::as_str)
                .map(str::to_owned);
            assert_eq!(reason.as_deref(), Some("work_limit"), "{response}");
        });

        // Client B, concurrently: full budget -> equivalent, untouched by
        // A's starvation.
        let socket_b = daemon.socket().to_path_buf();
        scope.spawn(move || {
            let mut b = Client::connect(&socket_b).unwrap();
            let response = b.verify(2, FIG1_A, FIG1_C).unwrap();
            assert_eq!(
                response_verdict(&response).unwrap(),
                "equivalent",
                "{response}"
            );
        });
    });

    // Cancellation is connection-scoped: cancelling an id that only exists
    // on another connection is a no-op.
    let mut a = Client::connect(daemon.socket()).unwrap();
    let mut b = Client::connect(daemon.socket()).unwrap();
    a.send(&verify_request_line(
        7,
        FIG1_A,
        FIG1_C,
        &VerifyParams::default(),
    ))
    .unwrap();
    let cancel = b.request(&cancel_request_line(8, 7)).unwrap();
    let v = JsonValue::parse(&cancel).unwrap();
    assert_eq!(
        v.get("result")
            .and_then(|r| r.get("cancelled"))
            .and_then(JsonValue::as_bool),
        Some(false),
        "other connections' ids are invisible: {cancel}"
    );
    let response = a.recv().unwrap();
    assert_eq!(response_verdict(&response).unwrap(), "equivalent");

    // Cancelling on the owning connection cancels (or races completion —
    // both are legal), but either way B's parallel request is untouched.
    a.send(&verify_request_line(
        9,
        FIG1_A,
        FIG1_C,
        &VerifyParams::default(),
    ))
    .unwrap();
    a.send(&cancel_request_line(10, 9)).unwrap();
    let mut verdicts = Vec::new();
    for _ in 0..2 {
        let line = a.recv().unwrap();
        let v = JsonValue::parse(&line).unwrap();
        if v.get("id").and_then(JsonValue::as_i64) == Some(9) {
            verdicts.push(response_verdict(&line).unwrap());
        }
    }
    assert_eq!(verdicts.len(), 1);
    assert!(
        verdicts[0] == "equivalent" || verdicts[0] == "inconclusive",
        "cancel races completion: {verdicts:?}"
    );
    let response = b.verify(11, FIG1_A, FIG1_C).unwrap();
    assert_eq!(response_verdict(&response).unwrap(), "equivalent");
    drop((a, b));
    daemon.stop().unwrap();
}

#[test]
fn shutdown_drains_queued_work_and_flushes_the_store() {
    let dir = tmp_path("drain-store");
    let _ = fs::remove_dir_all(&dir);

    let daemon = start_daemon("drain", Verifier::builder().store(&dir).build());
    let mut client = Client::connect(daemon.socket()).unwrap();
    // Queue a verify and immediately request shutdown: the queued check
    // must still complete and answer before the connection closes.
    client
        .send(&verify_request_line(
            1,
            FIG1_A,
            FIG1_C,
            &VerifyParams::default(),
        ))
        .unwrap();
    client.send(&control_request_line(2, "shutdown")).unwrap();
    let mut saw_verdict = false;
    let mut saw_shutdown = false;
    while let Ok(line) = client.recv() {
        let v = JsonValue::parse(&line).unwrap();
        match v.get("id").and_then(JsonValue::as_i64) {
            Some(1) => {
                assert_eq!(response_verdict(&line).unwrap(), "equivalent");
                saw_verdict = true;
            }
            Some(2) => saw_shutdown = true,
            other => panic!("unexpected response id {other:?}: {line}"),
        }
        if saw_verdict && saw_shutdown {
            break;
        }
    }
    assert!(saw_verdict, "queued verify drained before close");
    assert!(saw_shutdown);
    drop(client);
    daemon.stop().unwrap();

    // The shutdown path flushed: a fresh daemon on the same store starts
    // warm and discharges sub-proofs from disk.
    let daemon = start_daemon("drain2", Verifier::builder().store(&dir).build());
    assert!(daemon.server().verifier().store_warnings().is_empty());
    let mut client = Client::connect(daemon.socket()).unwrap();
    assert!(client.greeting().contains("\"store\":true"));
    let response = client.verify(1, FIG1_A, FIG1_C).unwrap();
    assert_eq!(response_verdict(&response).unwrap(), "equivalent");
    let v = JsonValue::parse(&response).unwrap();
    let store_hits = v
        .get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("store_hits"))
        .and_then(JsonValue::as_i64)
        .unwrap();
    assert!(store_hits > 0, "restarted daemon starts warm: {response}");
    drop(client);
    daemon.stop().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A `Write + Send` sink over shared memory for driving `run_session`
/// without a socket.
#[derive(Clone)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn in_memory_session_speaks_the_protocol() {
    let server = Server::new(Verifier::new(), ServeConfig::default());
    let script = format!(
        "{}\n{}\nnot json at all\n{}\n",
        control_request_line(1, "ping"),
        verify_request_line(2, FIG1_A, FIG1_C, &VerifyParams::default()),
        control_request_line(3, "checkpoint"),
    );
    let out = SharedSink(Arc::new(Mutex::new(Vec::new())));
    server.run_session(script.as_bytes(), out.clone()).unwrap();

    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Greeting + 4 responses (EOF ends the session without shutdown).
    assert_eq!(lines.len(), 5, "{text}");
    let greeting = JsonValue::parse(lines[0]).unwrap();
    assert_eq!(
        greeting.get("format").and_then(JsonValue::as_str),
        Some("arrayeq-serve-v1")
    );
    let by_id = |id: i64| {
        lines[1..]
            .iter()
            .map(|l| JsonValue::parse(l).unwrap())
            .find(|v| v.get("id").and_then(JsonValue::as_i64) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}: {text}"))
    };
    assert_eq!(
        by_id(1)
            .get("result")
            .and_then(|r| r.get("pong"))
            .and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        response_verdict(lines[1..].iter().find(|l| l.contains("\"id\":2")).unwrap()).unwrap(),
        "equivalent"
    );
    // Checkpoint without a store: ok with a null epoch.
    let cp = by_id(3);
    assert_eq!(cp.get("ok").and_then(JsonValue::as_bool), Some(true));
    // The malformed line produced an id-less error.
    let err = lines[1..]
        .iter()
        .map(|l| JsonValue::parse(l).unwrap())
        .find(|v| v.get("ok").and_then(JsonValue::as_bool) == Some(false))
        .expect("malformed line answered");
    assert!(err
        .get("error")
        .and_then(JsonValue::as_str)
        .unwrap()
        .contains("malformed"));
}
