//! The daemon's wire protocol: line-delimited JSON over a Unix socket or
//! stdio, built on the engine's hand-rolled [`JsonValue`] (no serde).
//!
//! Every request is one line, an object with a client-chosen numeric `id`
//! and a `cmd`:
//!
//! ```json
//! {"id":1,"cmd":"verify","original":"<C source>","transformed":"<C source>",
//!  "witnesses":true,"deadline_ms":5000,"max_work":1000000}
//! {"id":2,"cmd":"ping"}
//! {"id":3,"cmd":"stats"}
//! {"id":4,"cmd":"cancel","target":1}
//! {"id":5,"cmd":"checkpoint"}
//! {"id":6,"cmd":"shutdown"}
//! ```
//!
//! Every response is one line echoing the id:
//!
//! ```json
//! {"id":1,"ok":true,"result":{...}}
//! {"id":7,"ok":false,"error":"..."}
//! ```
//!
//! On connect the server sends a greeting line carrying the protocol format
//! marker, the engine's options fingerprint (the PR 6 compatibility key) and
//! whether a persistent store is attached.  `verify` responses embed the
//! full engine outcome document ([`arrayeq_engine::outcome_to_json`]);
//! budget fields (`deadline_ms`, `max_work`, `witnesses`) override the
//! engine defaults per request and are never verdict-relevant.

use arrayeq_engine::{json_string, JsonValue};

/// Magic string identifying the protocol (bumped on breaking changes).
pub const PROTOCOL_FORMAT: &str = "arrayeq-serve-v1";

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Verify a source pair, with optional per-request budget overrides.
    Verify {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// Original program source text.
        original: String,
        /// Transformed program source text.
        transformed: String,
        /// Per-request witness-extraction override.
        witnesses: Option<bool>,
        /// Per-request wall-clock budget in milliseconds.
        deadline_ms: Option<u64>,
        /// Per-request traversal work budget.
        max_work: Option<u64>,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen request id.
        id: u64,
    },
    /// Session statistics snapshot (cumulative, engine-wide).
    Stats {
        /// Client-chosen request id.
        id: u64,
    },
    /// Cancel the in-flight or queued verify with id `target` *on this
    /// connection*.
    Cancel {
        /// Client-chosen request id.
        id: u64,
        /// The id of the verify request to cancel.
        target: u64,
    },
    /// Flush and compact the persistent store now.
    Checkpoint {
        /// Client-chosen request id.
        id: u64,
    },
    /// Gracefully shut the server down: drain in-flight checks, flush the
    /// store, close every connection.
    Shutdown {
        /// Client-chosen request id.
        id: u64,
    },
}

impl Request {
    /// The client-chosen id of any request variant.
    pub fn id(&self) -> u64 {
        match self {
            Request::Verify { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Cancel { id, .. }
            | Request::Checkpoint { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// A protocol-level parse failure: the response should echo `id` when the
/// line got far enough to carry one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The request id, when one could be extracted.
    pub id: Option<u64>,
    /// What was wrong with the line.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (carrying the id when present) on malformed
/// JSON, a missing/unknown `cmd`, or missing command arguments.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let err = |id: Option<u64>, message: String| ProtocolError { id, message };
    let v = JsonValue::parse(line).map_err(|e| err(None, format!("malformed request: {e}")))?;
    let id = v.get("id").and_then(JsonValue::as_i64).map(|n| n as u64);
    let Some(id) = id else {
        return Err(err(None, "request without numeric `id`".into()));
    };
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err(Some(id), "request without `cmd`".into()))?;
    let opt_u64 = |key: &str| v.get(key).and_then(JsonValue::as_i64).map(|n| n as u64);
    match cmd {
        "verify" => {
            let original = v
                .get("original")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err(Some(id), "verify without `original`".into()))?
                .to_owned();
            let transformed = v
                .get("transformed")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err(Some(id), "verify without `transformed`".into()))?
                .to_owned();
            Ok(Request::Verify {
                id,
                original,
                transformed,
                witnesses: v.get("witnesses").and_then(JsonValue::as_bool),
                deadline_ms: opt_u64("deadline_ms"),
                max_work: opt_u64("max_work"),
            })
        }
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "cancel" => {
            let target = opt_u64("target")
                .ok_or_else(|| err(Some(id), "cancel without numeric `target`".into()))?;
            Ok(Request::Cancel { id, target })
        }
        "checkpoint" => Ok(Request::Checkpoint { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(err(Some(id), format!("unknown cmd `{other}`"))),
    }
}

/// Renders the greeting line sent once per connection.
pub fn greeting(options_fp: u64, store_attached: bool) -> String {
    format!(
        "{{\"format\":{},\"options_fp\":{},\"store\":{}}}",
        json_string(PROTOCOL_FORMAT),
        arrayeq_engine::hex64(options_fp),
        store_attached,
    )
}

/// Renders a success response wrapping an already-rendered JSON `result`.
pub fn ok_response(id: u64, result_json: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result_json}}}")
}

/// Renders an error response (id `null` when the request never yielded one).
pub fn err_response(id: Option<u64>, message: &str) -> String {
    let id = match id {
        Some(id) => id.to_string(),
        None => "null".into(),
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{}}}",
        json_string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_round_trips_with_budget_overrides() {
        let line = "{\"id\":7,\"cmd\":\"verify\",\"original\":\"int a;\",\
                    \"transformed\":\"int b;\",\"witnesses\":true,\
                    \"deadline_ms\":250,\"max_work\":9999}";
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Verify {
                id: 7,
                original: "int a;".into(),
                transformed: "int b;".into(),
                witnesses: Some(true),
                deadline_ms: Some(250),
                max_work: Some(9999),
            }
        );
        assert_eq!(req.id(), 7);
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(
            parse_request("{\"id\":1,\"cmd\":\"ping\"}").unwrap(),
            Request::Ping { id: 1 }
        );
        assert_eq!(
            parse_request("{\"id\":2,\"cmd\":\"cancel\",\"target\":1}").unwrap(),
            Request::Cancel { id: 2, target: 1 }
        );
        assert_eq!(
            parse_request("{\"id\":3,\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown { id: 3 }
        );
        assert_eq!(
            parse_request("{\"id\":4,\"cmd\":\"checkpoint\"}").unwrap(),
            Request::Checkpoint { id: 4 }
        );
        assert_eq!(
            parse_request("{\"id\":5,\"cmd\":\"stats\"}").unwrap(),
            Request::Stats { id: 5 }
        );
    }

    #[test]
    fn malformed_lines_carry_the_id_when_present() {
        assert_eq!(parse_request("not json").unwrap_err().id, None);
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap_err().id, None);
        let e = parse_request("{\"id\":9,\"cmd\":\"fly\"}").unwrap_err();
        assert_eq!(e.id, Some(9));
        assert!(e.message.contains("fly"));
        let e = parse_request("{\"id\":9,\"cmd\":\"verify\"}").unwrap_err();
        assert_eq!(e.id, Some(9));
    }

    #[test]
    fn responses_and_greeting_are_valid_json() {
        for line in [
            greeting(0xdead_beef, true),
            ok_response(3, "{\"pong\":true}"),
            err_response(None, "nope \"quoted\""),
            err_response(Some(4), "bad"),
        ] {
            JsonValue::parse(&line).unwrap();
        }
        let g = JsonValue::parse(&greeting(7, false)).unwrap();
        assert_eq!(
            g.get("format").and_then(JsonValue::as_str),
            Some(PROTOCOL_FORMAT)
        );
        assert_eq!(g.get("store").and_then(JsonValue::as_bool), Some(false));
    }
}
