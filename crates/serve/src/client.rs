//! A small blocking client for the daemon protocol, used by
//! `arrayeq client`, the bench load generator and the serve tests.
//!
//! [`Client::request`] is the simple call-response path.  The split
//! [`Client::send`] / [`Client::recv`] pair exists so tests can put a
//! verify in flight and then race a `cancel` past it — the reader thread
//! on the server answers control messages ahead of queued work, so
//! responses can arrive out of request order; match them up by `id`.

use crate::protocol::PROTOCOL_FORMAT;
use arrayeq_engine::{json_string, JsonValue};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Typed client-side failure, mapped by `arrayeq client` onto exit code 3.
#[derive(Debug)]
pub enum ClientError {
    /// No connection could be established (socket absent, refused, or the
    /// greeting never arrived) after every configured attempt.
    Connect {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last I/O failure observed.
        last: io::Error,
    },
    /// An established connection failed mid-request (broken pipe, reset,
    /// server closed) after every configured replay.
    Io {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last I/O failure observed.
        last: io::Error,
    },
    /// The server's greeting line is not the daemon protocol — the socket
    /// belongs to something else.  Never retried.
    MalformedGreeting {
        /// The greeting line actually received (trimmed).
        line: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { attempts, last } => {
                write!(f, "cannot connect after {attempts} attempt(s): {last}")
            }
            ClientError::Io { attempts, last } => {
                write!(f, "connection failed after {attempts} attempt(s): {last}")
            }
            ClientError::MalformedGreeting { line } => {
                write!(
                    f,
                    "server sent a malformed greeting (not an arrayeq daemon?): {line:?}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Bounded-retry policy for [`connect_with_retry`] / [`request_with_retry`]:
/// exponential backoff from `base_ms`, capped at `max_ms`, with deterministic
/// per-process jitter so a fleet of clients restarted together does not
/// reconnect in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Backoff before the second attempt, in milliseconds; doubles per retry.
    pub base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            base_ms: 50,
            max_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The policy behind `arrayeq client --retry N --retry-max-ms M`:
    /// `retries` extra attempts after the first.
    pub fn with_retries(retries: u32, max_ms: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: retries.saturating_add(1),
            max_ms,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before attempt `attempt` (1-based; attempt 1 has none):
    /// `min(max_ms, base_ms << (attempt-2))`, then jittered down by up to
    /// half so concurrent clients spread out.
    fn backoff(&self, attempt: u32, seed: &mut u64) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = (attempt - 2).min(16);
        let full = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_ms.max(1));
        // xorshift64*: deterministic within a process run, seeded from the
        // clock and pid at policy use — no external RNG dependency.
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let jitter = *seed % (full / 2 + 1);
        Duration::from_millis(full - jitter)
    }
}

/// A per-process jitter seed: wall-clock nanos mixed with the pid, so two
/// clients launched in the same instant still diverge.
fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9);
    (nanos ^ u64::from(std::process::id())).max(1)
}

/// Whether the greeting line is the daemon protocol's: a JSON object whose
/// `format` is [`PROTOCOL_FORMAT`].
fn greeting_is_valid(line: &str) -> bool {
    JsonValue::parse(line)
        .ok()
        .and_then(|v| {
            v.get("format")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .is_some_and(|f| f == PROTOCOL_FORMAT)
}

/// Connects with bounded retry: connect/greeting I/O failures back off and
/// retry up to `policy.attempts`; a *malformed* greeting fails immediately
/// (the socket is not an arrayeq daemon — retrying cannot fix that).
///
/// # Errors
///
/// [`ClientError::Connect`] when every attempt failed,
/// [`ClientError::MalformedGreeting`] on a non-daemon greeting.
pub fn connect_with_retry(path: &Path, policy: &RetryPolicy) -> Result<Client, ClientError> {
    let mut seed = jitter_seed();
    let mut last: Option<io::Error> = None;
    let attempts = policy.attempts.max(1);
    for attempt in 1..=attempts {
        std::thread::sleep(policy.backoff(attempt, &mut seed));
        match Client::connect(path) {
            Ok(client) => {
                if !greeting_is_valid(client.greeting()) {
                    return Err(ClientError::MalformedGreeting {
                        line: client.greeting().to_owned(),
                    });
                }
                return Ok(client);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(ClientError::Connect {
        attempts,
        last: last.unwrap_or_else(|| io::Error::other("no attempt made")),
    })
}

/// Sends `line` and returns the response that echoes `id`, reconnecting and
/// **replaying the identical request line** on connect or mid-request I/O
/// failure, up to `policy.attempts` total attempts.
///
/// Replay is safe because daemon requests are idempotent queries and every
/// response carries the client-chosen `id`: a fresh connection is a fresh
/// session (no stale response can arrive), and on one connection responses
/// to other in-flight requests are skipped until `id`'s own answer shows up.
///
/// # Errors
///
/// [`ClientError`] when every attempt failed (or the greeting was malformed).
pub fn request_with_retry(
    path: &Path,
    line: &str,
    id: u64,
    policy: &RetryPolicy,
) -> Result<String, ClientError> {
    let mut seed = jitter_seed();
    let mut last: Option<io::Error> = None;
    let mut connected_once = false;
    let attempts = policy.attempts.max(1);
    for attempt in 1..=attempts {
        std::thread::sleep(policy.backoff(attempt, &mut seed));
        let mut client = match Client::connect(path) {
            Ok(c) => c,
            Err(e) => {
                last = Some(e);
                continue;
            }
        };
        if !greeting_is_valid(client.greeting()) {
            return Err(ClientError::MalformedGreeting {
                line: client.greeting().to_owned(),
            });
        }
        connected_once = true;
        match client.request_expect_id(line, id) {
            Ok(response) => return Ok(response),
            Err(e) => last = Some(e),
        }
    }
    let last = last.unwrap_or_else(|| io::Error::other("no attempt made"));
    if connected_once {
        Err(ClientError::Io { attempts, last })
    } else {
        Err(ClientError::Connect { attempts, last })
    }
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    greeting: String,
}

impl Client {
    /// Connects to the daemon socket at `path` and reads the greeting line.
    ///
    /// # Errors
    ///
    /// Fails when the socket is absent/refusing or the greeting never
    /// arrives.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut greeting = String::new();
        if reader.read_line(&mut greeting)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before greeting",
            ));
        }
        Ok(Client {
            reader,
            writer,
            greeting: greeting.trim().to_owned(),
        })
    }

    /// The greeting line the server sent on connect.
    pub fn greeting(&self) -> &str {
        &self.greeting
    }

    /// Sends one request line (newline appended here).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line, whichever request it answers.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed the connection.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim().to_owned())
    }

    /// Sends one request and returns the next response line.  Only valid
    /// when no other request is outstanding on this connection.
    ///
    /// # Errors
    ///
    /// Propagates socket failures from either direction.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Sends one request and waits for the response whose `id` echoes
    /// `expect`, skipping responses that answer other in-flight requests on
    /// this connection (control replies overtake queued verifies).
    ///
    /// # Errors
    ///
    /// Propagates socket failures from either direction.
    pub fn request_expect_id(&mut self, line: &str, expect: u64) -> io::Result<String> {
        self.send(line)?;
        loop {
            let response = self.recv()?;
            let id = JsonValue::parse(&response)
                .ok()
                .and_then(|v| v.get("id").and_then(JsonValue::as_i64));
            match id {
                Some(id) if id != expect as i64 => continue,
                _ => return Ok(response),
            }
        }
    }

    /// Verifies a source pair and returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a protocol-level failure comes back as
    /// an `"ok":false` response line, not an `Err`.
    pub fn verify(&mut self, id: u64, original: &str, transformed: &str) -> io::Result<String> {
        self.request(&verify_request_line(
            id,
            original,
            transformed,
            &VerifyParams::default(),
        ))
    }
}

/// Optional per-request budget overrides for [`verify_request_line`].
#[derive(Debug, Clone, Default)]
pub struct VerifyParams {
    /// Witness-extraction override.
    pub witnesses: Option<bool>,
    /// Wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Traversal work budget.
    pub max_work: Option<u64>,
}

/// Renders a `verify` request line for the given pair and budgets.
pub fn verify_request_line(
    id: u64,
    original: &str,
    transformed: &str,
    params: &VerifyParams,
) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"cmd\":\"verify\",\"original\":{},\"transformed\":{}",
        json_string(original),
        json_string(transformed),
    );
    if let Some(w) = params.witnesses {
        line.push_str(&format!(",\"witnesses\":{w}"));
    }
    if let Some(d) = params.deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    if let Some(m) = params.max_work {
        line.push_str(&format!(",\"max_work\":{m}"));
    }
    line.push('}');
    line
}

/// Renders a control request line (`ping`, `stats`, `checkpoint`,
/// `shutdown`).
pub fn control_request_line(id: u64, cmd: &str) -> String {
    format!("{{\"id\":{id},\"cmd\":{}}}", json_string(cmd))
}

/// Renders a `cancel` request line targeting verify `target`.
pub fn cancel_request_line(id: u64, target: u64) -> String {
    format!("{{\"id\":{id},\"cmd\":\"cancel\",\"target\":{target}}}")
}

/// Pulls the engine verdict string out of a `verify` response line, or the
/// error message out of a failed one.
///
/// # Errors
///
/// Returns the response's `error` text (or a description of the malformed
/// line) as `Err`.
pub fn response_verdict(line: &str) -> Result<String, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
    if v.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return Err(v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("request failed")
            .to_owned());
    }
    v.get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("verdict"))
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| "response without verdict".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;

    #[test]
    fn request_lines_are_valid_protocol() {
        let line = verify_request_line(
            5,
            "int a[4];\n",
            "int b\"x\";",
            &VerifyParams {
                witnesses: Some(false),
                deadline_ms: Some(100),
                max_work: None,
            },
        );
        match protocol::parse_request(&line).unwrap() {
            protocol::Request::Verify {
                id,
                original,
                witnesses,
                deadline_ms,
                max_work,
                ..
            } => {
                assert_eq!(id, 5);
                assert_eq!(original, "int a[4];\n");
                assert_eq!(witnesses, Some(false));
                assert_eq!(deadline_ms, Some(100));
                assert_eq!(max_work, None);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            protocol::parse_request(&control_request_line(1, "ping")).unwrap(),
            protocol::Request::Ping { id: 1 }
        ));
        assert!(matches!(
            protocol::parse_request(&cancel_request_line(2, 1)).unwrap(),
            protocol::Request::Cancel { id: 2, target: 1 }
        ));
    }

    #[test]
    fn verdicts_extract_from_response_lines() {
        let ok = "{\"id\":1,\"ok\":true,\"result\":{\"report\":{\"verdict\":\"equivalent\"}}}";
        assert_eq!(response_verdict(ok).unwrap(), "equivalent");
        let err = "{\"id\":1,\"ok\":false,\"error\":\"boom\"}";
        assert_eq!(response_verdict(err).unwrap_err(), "boom");
    }
}
