//! A small blocking client for the daemon protocol, used by
//! `arrayeq client`, the bench load generator and the serve tests.
//!
//! [`Client::request`] is the simple call-response path.  The split
//! [`Client::send`] / [`Client::recv`] pair exists so tests can put a
//! verify in flight and then race a `cancel` past it — the reader thread
//! on the server answers control messages ahead of queued work, so
//! responses can arrive out of request order; match them up by `id`.

use arrayeq_engine::{json_string, JsonValue};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    greeting: String,
}

impl Client {
    /// Connects to the daemon socket at `path` and reads the greeting line.
    ///
    /// # Errors
    ///
    /// Fails when the socket is absent/refusing or the greeting never
    /// arrives.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut greeting = String::new();
        if reader.read_line(&mut greeting)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before greeting",
            ));
        }
        Ok(Client {
            reader,
            writer,
            greeting: greeting.trim().to_owned(),
        })
    }

    /// The greeting line the server sent on connect.
    pub fn greeting(&self) -> &str {
        &self.greeting
    }

    /// Sends one request line (newline appended here).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line, whichever request it answers.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed the connection.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim().to_owned())
    }

    /// Sends one request and returns the next response line.  Only valid
    /// when no other request is outstanding on this connection.
    ///
    /// # Errors
    ///
    /// Propagates socket failures from either direction.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Verifies a source pair and returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a protocol-level failure comes back as
    /// an `"ok":false` response line, not an `Err`.
    pub fn verify(&mut self, id: u64, original: &str, transformed: &str) -> io::Result<String> {
        self.request(&verify_request_line(
            id,
            original,
            transformed,
            &VerifyParams::default(),
        ))
    }
}

/// Optional per-request budget overrides for [`verify_request_line`].
#[derive(Debug, Clone, Default)]
pub struct VerifyParams {
    /// Witness-extraction override.
    pub witnesses: Option<bool>,
    /// Wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Traversal work budget.
    pub max_work: Option<u64>,
}

/// Renders a `verify` request line for the given pair and budgets.
pub fn verify_request_line(
    id: u64,
    original: &str,
    transformed: &str,
    params: &VerifyParams,
) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"cmd\":\"verify\",\"original\":{},\"transformed\":{}",
        json_string(original),
        json_string(transformed),
    );
    if let Some(w) = params.witnesses {
        line.push_str(&format!(",\"witnesses\":{w}"));
    }
    if let Some(d) = params.deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    if let Some(m) = params.max_work {
        line.push_str(&format!(",\"max_work\":{m}"));
    }
    line.push('}');
    line
}

/// Renders a control request line (`ping`, `stats`, `checkpoint`,
/// `shutdown`).
pub fn control_request_line(id: u64, cmd: &str) -> String {
    format!("{{\"id\":{id},\"cmd\":{}}}", json_string(cmd))
}

/// Renders a `cancel` request line targeting verify `target`.
pub fn cancel_request_line(id: u64, target: u64) -> String {
    format!("{{\"id\":{id},\"cmd\":\"cancel\",\"target\":{target}}}")
}

/// Pulls the engine verdict string out of a `verify` response line, or the
/// error message out of a failed one.
///
/// # Errors
///
/// Returns the response's `error` text (or a description of the malformed
/// line) as `Err`.
pub fn response_verdict(line: &str) -> Result<String, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
    if v.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return Err(v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("request failed")
            .to_owned());
    }
    v.get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("verdict"))
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| "response without verdict".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;

    #[test]
    fn request_lines_are_valid_protocol() {
        let line = verify_request_line(
            5,
            "int a[4];\n",
            "int b\"x\";",
            &VerifyParams {
                witnesses: Some(false),
                deadline_ms: Some(100),
                max_work: None,
            },
        );
        match protocol::parse_request(&line).unwrap() {
            protocol::Request::Verify {
                id,
                original,
                witnesses,
                deadline_ms,
                max_work,
                ..
            } => {
                assert_eq!(id, 5);
                assert_eq!(original, "int a[4];\n");
                assert_eq!(witnesses, Some(false));
                assert_eq!(deadline_ms, Some(100));
                assert_eq!(max_work, None);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            protocol::parse_request(&control_request_line(1, "ping")).unwrap(),
            protocol::Request::Ping { id: 1 }
        ));
        assert!(matches!(
            protocol::parse_request(&cancel_request_line(2, 1)).unwrap(),
            protocol::Request::Cancel { id: 2, target: 1 }
        ));
    }

    #[test]
    fn verdicts_extract_from_response_lines() {
        let ok = "{\"id\":1,\"ok\":true,\"result\":{\"report\":{\"verdict\":\"equivalent\"}}}";
        assert_eq!(response_verdict(ok).unwrap(), "equivalent");
        let err = "{\"id\":1,\"ok\":false,\"error\":\"boom\"}";
        assert_eq!(response_verdict(err).unwrap_err(), "boom");
    }
}
