//! # arrayeq-serve
//!
//! The verification daemon: a line-JSON protocol server multiplexing
//! concurrent client sessions onto one shared [`Verifier`], so many
//! short-lived clients hit one warm brain instead of each rebuilding the
//! engine's caches from nothing.
//!
//! Design:
//!
//! * **One engine, many sessions.**  Every connection gets a reader thread
//!   and a worker thread; verifies run sequentially *per connection* and
//!   concurrently *across* connections, all against the same
//!   [`Verifier`] — so one client's established sub-proofs discharge
//!   another client's sub-traversals through the shared equivalence table.
//! * **Per-request budgets.**  `deadline_ms`, `max_work` and `witnesses`
//!   map onto [`arrayeq_engine::RequestLimits`]; budgets are not
//!   verdict-relevant, so mixed-budget clients share the caches soundly.
//! * **Cooperative cancellation.**  Each verify gets its own
//!   [`CancelToken`], registered while queued or in flight; `cancel`
//!   control messages are handled on the reader thread, so they overtake
//!   the queue.  One client's cancellation can never touch another
//!   client's request.
//! * **Graceful shutdown.**  `shutdown` (or EOF on stdio) stops intake,
//!   drains every in-flight and queued check, flushes the persistent store
//!   and only then returns.
//! * **Persistent store.**  When the engine carries a
//!   [`arrayeq_engine::ProofStore`], the server flushes it every
//!   [`ServeConfig::flush_every`] verifies, on `checkpoint` commands and on
//!   shutdown — so the next process (daemon or one-shot CLI) starts warm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;

use arrayeq_engine::{
    outcome_to_json, session_to_json, CancelToken, RequestLimits, Verifier, VerifyRequest,
};
use protocol::{err_response, greeting, ok_response, parse_request, Request};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush the persistent store after this many completed verifies
    /// (0 flushes only on `checkpoint` and shutdown).
    pub flush_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { flush_every: 64 }
    }
}

/// One verification daemon: a shared engine plus the connection plumbing.
/// Construct with [`Server::new`], then run [`Server::run_unix`] or
/// [`Server::run_stdio`].
pub struct Server {
    verifier: Arc<Verifier>,
    config: ServeConfig,
    shutdown: AtomicBool,
    verifies_done: AtomicUsize,
    /// Read-halves of live socket connections, shut down to unblock their
    /// readers when shutdown is requested.
    live: Mutex<Vec<UnixStream>>,
    /// The socket the acceptor is blocked on, so `request_shutdown` can
    /// poke it awake with a throwaway connection.
    listen_path: Mutex<Option<PathBuf>>,
}

/// Work queued from a session's reader thread to its worker thread.
enum Job {
    Verify {
        id: u64,
        original: String,
        transformed: String,
        witnesses: Option<bool>,
        deadline_ms: Option<u64>,
        max_work: Option<u64>,
        token: CancelToken,
    },
    Checkpoint {
        id: u64,
    },
}

impl Server {
    /// Wraps an engine into a server.
    pub fn new(verifier: Verifier, config: ServeConfig) -> Arc<Server> {
        Arc::new(Server {
            verifier: Arc::new(verifier),
            config,
            shutdown: AtomicBool::new(false),
            verifies_done: AtomicUsize::new(0),
            live: Mutex::new(Vec::new()),
            listen_path: Mutex::new(None),
        })
    }

    /// The shared engine (for tests and embedding).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown: stops intake and unblocks every
    /// connection's reader.  In-flight and queued checks still drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let live = self.live.lock().unwrap();
        for stream in live.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        drop(live);
        // Wake the acceptor so it observes the flag: a blocked `accept`
        // only returns when someone connects.
        if let Some(path) = self.listen_path.lock().unwrap().as_ref() {
            let _ = UnixStream::connect(path);
        }
    }

    /// Serves connections on a Unix socket at `path` until a client sends
    /// `shutdown`.  Drains every session, flushes the store, removes the
    /// socket file.
    ///
    /// # Errors
    ///
    /// Propagates failures binding the socket and flushing the store;
    /// per-connection I/O errors only end their own session.
    pub fn run_unix(self: &Arc<Self>, path: &Path) -> io::Result<()> {
        // A stale socket file from a crashed daemon would make bind fail.
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        *self.listen_path.lock().unwrap() = Some(path.to_path_buf());
        std::thread::scope(|scope| -> io::Result<()> {
            for conn in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if self.shutdown_requested() {
                    break;
                }
                self.live.lock().unwrap().push(stream.try_clone()?);
                let server = Arc::clone(self);
                scope.spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let _ = server.run_session(reader, stream);
                });
            }
            Ok(())
        })?;
        *self.listen_path.lock().unwrap() = None;
        let _ = std::fs::remove_file(path);
        self.verifier.flush_store()?;
        Ok(())
    }

    /// Serves exactly one session on stdin/stdout (`arrayeq serve --stdio`).
    /// EOF or a `shutdown` command ends it; the store is flushed before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates session I/O failures and store flush failures.
    pub fn run_stdio(self: &Arc<Self>) -> io::Result<()> {
        let stdin = io::stdin().lock();
        self.run_session(stdin, io::stdout())?;
        self.verifier.flush_store()?;
        Ok(())
    }

    /// Runs one client session: greeting, then request lines until EOF or
    /// shutdown.  Control messages (`ping`, `stats`, `cancel`, `shutdown`)
    /// are answered on the reader thread immediately; `verify` and
    /// `checkpoint` queue to this session's worker thread, which runs them
    /// in order and concurrently with other sessions.
    ///
    /// Generic over the transport so tests can drive it with in-memory
    /// buffers.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures; read failures end the session
    /// cleanly (the peer is gone).
    pub fn run_session<R, W>(&self, mut reader: R, writer: W) -> io::Result<()>
    where
        R: BufRead,
        W: Write + Send,
    {
        let writer = Arc::new(Mutex::new(writer));
        write_line(
            &writer,
            &greeting(
                self.verifier.options_fingerprint(),
                self.verifier.has_store(),
            ),
        )?;
        // Tokens of queued/in-flight verifies of THIS session, so `cancel`
        // is connection-scoped by construction.
        let active: Mutex<HashMap<u64, CancelToken>> = Mutex::new(HashMap::new());
        let (tx, rx) = mpsc::channel::<Job>();

        std::thread::scope(|scope| -> io::Result<()> {
            let worker_writer = Arc::clone(&writer);
            let worker_active = &active;
            let worker = scope.spawn(move || -> io::Result<()> {
                for job in rx {
                    let line = self.run_job(job, worker_active);
                    write_line(&worker_writer, &line)?;
                }
                Ok(())
            });

            let mut line = String::new();
            loop {
                if self.shutdown_requested() {
                    break;
                }
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break,  // EOF: client hung up
                    Err(_) => break, // peer gone or read side shut down
                    Ok(_) => {}
                }
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match parse_request(trimmed) {
                    Err(e) => write_line(&writer, &err_response(e.id, &e.message))?,
                    Ok(Request::Ping { id }) => {
                        write_line(&writer, &ok_response(id, "{\"pong\":true}"))?
                    }
                    Ok(Request::Stats { id }) => {
                        let result = format!(
                            "{{\"session\":{},\"store_attached\":{},\"store_epoch\":{}}}",
                            session_to_json(&self.verifier.session_stats()),
                            self.verifier.has_store(),
                            match self.verifier.store_epoch() {
                                Some(e) => e.to_string(),
                                None => "null".into(),
                            },
                        );
                        write_line(&writer, &ok_response(id, &result))?;
                    }
                    Ok(Request::Cancel { id, target }) => {
                        let cancelled = match active.lock().unwrap().get(&target) {
                            Some(token) => {
                                token.cancel();
                                true
                            }
                            None => false,
                        };
                        let result = format!("{{\"cancelled\":{cancelled}}}");
                        write_line(&writer, &ok_response(id, &result))?;
                    }
                    Ok(Request::Shutdown { id }) => {
                        write_line(&writer, &ok_response(id, "{\"shutting_down\":true}"))?;
                        self.request_shutdown();
                        break;
                    }
                    Ok(Request::Verify {
                        id,
                        original,
                        transformed,
                        witnesses,
                        deadline_ms,
                        max_work,
                    }) => {
                        let token = CancelToken::new();
                        active.lock().unwrap().insert(id, token.clone());
                        let job = Job::Verify {
                            id,
                            original,
                            transformed,
                            witnesses,
                            deadline_ms,
                            max_work,
                            token,
                        };
                        if tx.send(job).is_err() {
                            break; // worker died; session is over
                        }
                    }
                    Ok(Request::Checkpoint { id }) => {
                        if tx.send(Job::Checkpoint { id }).is_err() {
                            break;
                        }
                    }
                }
            }
            // Closing the channel lets the worker drain the queue and exit:
            // graceful shutdown finishes queued checks rather than dropping
            // them.
            drop(tx);
            worker.join().expect("session worker never panics")
        })
    }

    /// Runs one queued job on the shared engine and renders its response.
    fn run_job(&self, job: Job, active: &Mutex<HashMap<u64, CancelToken>>) -> String {
        match job {
            Job::Verify {
                id,
                original,
                transformed,
                witnesses,
                deadline_ms,
                max_work,
                token,
            } => {
                let limits = RequestLimits {
                    deadline: deadline_ms.map(Duration::from_millis),
                    max_work,
                    witnesses,
                    cancel: Some(token),
                };
                let request = VerifyRequest::source(original, transformed);
                // Per-request panic isolation: a panicking check answers
                // *this* request `ok:false` while the session worker, every
                // other connection and the engine keep going.  The shared
                // caches need no quarantine — entries are complete
                // single-put facts, never partially published mid-check.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    injected_panic(id);
                    self.verifier.verify_with_limits(&request, &limits)
                }));
                let response = match outcome {
                    Ok(Ok(outcome)) => ok_response(id, &outcome_to_json(&outcome)),
                    Ok(Err(e)) => err_response(Some(id), &e.to_string()),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".into());
                        err_response(Some(id), &format!("verification worker panicked: {msg}"))
                    }
                };
                active.lock().unwrap().remove(&id);
                let done = self.verifies_done.fetch_add(1, Ordering::Relaxed) + 1;
                if self.config.flush_every > 0 && done.is_multiple_of(self.config.flush_every) {
                    // Periodic persistence is best-effort; shutdown flushes
                    // authoritatively and surfaces errors.
                    let _ = self.verifier.flush_store();
                }
                response
            }
            Job::Checkpoint { id } => match self.verifier.checkpoint_store() {
                Ok(Some(epoch)) => ok_response(id, &format!("{{\"epoch\":{epoch}}}")),
                Ok(None) => ok_response(id, "{\"epoch\":null}"),
                Err(e) => err_response(Some(id), &format!("checkpoint failed: {e}")),
            },
        }
    }
}

/// Fault injection for the robustness tests: when the environment variable
/// `ARRAYEQ_SERVE_PANIC_IDS` (comma-separated request ids, read once per
/// process) names this verify's id, the handler panics mid-request — driving
/// the `catch_unwind` containment in [`Server::run_job`] from outside the
/// process.  Unset in production, this is a no-op.
fn injected_panic(id: u64) {
    static IDS: std::sync::OnceLock<Vec<u64>> = std::sync::OnceLock::new();
    let ids = IDS.get_or_init(|| {
        std::env::var("ARRAYEQ_SERVE_PANIC_IDS")
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .unwrap_or_default()
    });
    if ids.contains(&id) {
        panic!("injected request panic (id {id})");
    }
}

/// Writes one response line and flushes (line-delimited protocol: the peer
/// blocks on whole lines).
fn write_line<W: Write>(writer: &Arc<Mutex<W>>, line: &str) -> io::Result<()> {
    let mut w = writer.lock().unwrap();
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// A convenience handle for a daemon spawned on a background thread of the
/// current process (bench and tests; production runs `arrayeq serve`).
pub struct SpawnedServer {
    server: Arc<Server>,
    socket: PathBuf,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl SpawnedServer {
    /// Starts `server` on `socket` in a background thread and waits until
    /// the socket accepts connections.
    ///
    /// # Errors
    ///
    /// Fails when the socket never comes up (bind failure in the server
    /// thread).
    pub fn start(server: Arc<Server>, socket: PathBuf) -> io::Result<SpawnedServer> {
        let thread_server = Arc::clone(&server);
        let thread_socket = socket.clone();
        let thread = std::thread::spawn(move || thread_server.run_unix(&thread_socket));
        // Poll for the socket to come up.
        for _ in 0..200 {
            if UnixStream::connect(&socket).is_ok() {
                return Ok(SpawnedServer {
                    server,
                    socket,
                    thread: Some(thread),
                });
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "server socket never came up",
        ))
    }

    /// The socket path clients should connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The server handle.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Requests shutdown (waking the acceptor) and joins the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server thread's exit result.
    pub fn stop(mut self) -> io::Result<()> {
        self.server.request_shutdown();
        // Wake the acceptor so it observes the flag.
        let _ = UnixStream::connect(&self.socket);
        match self.thread.take() {
            Some(t) => t.join().expect("server thread never panics"),
            None => Ok(()),
        }
    }
}
