//! Graphviz export of ADDGs, for producing figures like Fig. 2 of the paper.
//!
//! Two entry points: [`to_dot`] renders the plain graph; [`to_dot_highlighted`]
//! additionally paints a failing [`Slice`] (the statements and arrays feeding
//! a witness point) in red, so an inequivalence verdict is visually
//! debuggable straight from the exported figure.

use crate::graph::{Addg, Node, NodeId};
use crate::slice::Slice;
use std::fmt::Write;

/// Renders the ADDG in Graphviz `dot` syntax.
///
/// Array nodes are drawn as boxes, operator nodes as circles, access leaves
/// as edges from their operator to the array node annotated with the
/// dependency mapping, mirroring the paper's Fig. 2 layout conventions.
pub fn to_dot(g: &Addg) -> String {
    render(g, &Slice::default())
}

/// Renders the ADDG with the given failing slice highlighted: every
/// statement (operator nodes, definition and operand edges) and array node in
/// the slice is drawn in red with a heavier stroke.  Produced together with a
/// witness, this points straight at the part of the program feeding the
/// diverging output element.
pub fn to_dot_highlighted(g: &Addg, slice: &Slice) -> String {
    render(g, slice)
}

fn render(g: &Addg, slice: &Slice) -> String {
    let hl_stmt = |s: &str| slice.statements.contains(s);
    let mut out = String::new();
    let _ = writeln!(out, "digraph addg_{} {{", sanitize(&g.program_name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    // Array nodes.
    for (id, node) in g.nodes() {
        if let Node::Array { name } = node {
            let shape = if g.is_input(name) {
                "box, style=filled, fillcolor=lightyellow"
            } else if g.is_output(name) {
                "box, style=filled, fillcolor=lightblue"
            } else {
                "box"
            };
            let extra = if slice.arrays.contains(name) {
                ", color=red, penwidth=3"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{id} [label=\"{name}\", shape={shape}{extra}];");
        }
    }
    // Operator and constant nodes.
    for (id, node) in g.nodes() {
        match node {
            Node::Operator {
                kind, statement, ..
            } => {
                let extra = if hl_stmt(statement) {
                    ", color=red, penwidth=2, fontcolor=red"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"{}\\n{statement}\", shape=circle{extra}];",
                    escape(&kind.to_string())
                );
            }
            Node::Const { value, .. } => {
                let _ = writeln!(out, "  n{id} [label=\"{value}\", shape=plaintext];");
            }
            _ => {}
        }
    }

    // Definition edges: array -> rhs root, labelled with the statement.
    for array in g
        .nodes()
        .filter_map(|(_, n)| match n {
            Node::Array { name } => Some(name.clone()),
            _ => None,
        })
        .collect::<Vec<_>>()
    {
        let array_id = g
            .nodes()
            .find_map(|(id, n)| match n {
                Node::Array { name } if *name == array => Some(id),
                _ => None,
            })
            .expect("array node exists");
        for def in g.definitions(&array) {
            let target = resolve_edge_target(g, def.root);
            let extra = if hl_stmt(&def.statement) {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{array_id} -> n{target} [label=\"{}\", penwidth=2{extra}];",
                def.statement
            );
        }
    }

    // Operand edges, labelled with positions; access leaves collapse into an
    // edge to the array node labelled with the mapping.
    for (id, node) in g.nodes() {
        if let Node::Operator {
            operands,
            statement,
            ..
        } = node
        {
            for (pos, &child) in operands.iter().enumerate() {
                let target = resolve_edge_target(g, child);
                let mut extra = match g.node(child) {
                    Node::Access { mapping, .. } => {
                        format!(
                            ", taillabel=\"{}\"",
                            escape(&truncate(&mapping.to_string(), 60))
                        )
                    }
                    _ => String::new(),
                };
                if hl_stmt(statement) {
                    extra.push_str(", color=red");
                }
                let _ = writeln!(out, "  n{id} -> n{target} [label=\"{}\"{extra}];", pos + 1);
            }
        }
    }

    let _ = writeln!(out, "}}");
    out
}

/// Access nodes are rendered as edges straight to their array node.
fn resolve_edge_target(g: &Addg, id: NodeId) -> NodeId {
    match g.node(id) {
        Node::Access { array, .. } => g
            .nodes()
            .find_map(|(aid, n)| match n {
                Node::Array { name } if name == array => Some(aid),
                _ => None,
            })
            .unwrap_or(id),
        _ => id,
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}...", &s[..max])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use arrayeq_lang::corpus::FIG1_A;
    use arrayeq_lang::parser::parse_program;

    #[test]
    fn dot_output_mentions_every_array_and_statement() {
        let g = extract(&parse_program(FIG1_A).unwrap()).unwrap();
        let dot = to_dot(&g);
        for name in ["\"A\"", "\"B\"", "\"C\"", "\"tmp\"", "\"buf\""] {
            assert!(dot.contains(name), "missing {name} in dot output");
        }
        for stmt in ["s1", "s2", "s3"] {
            assert!(dot.contains(stmt), "missing {stmt} in dot output");
        }
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(!dot.contains("color=red"), "plain export has no highlight");
    }

    #[test]
    fn highlighted_export_paints_exactly_the_slice() {
        let g = extract(&parse_program(FIG1_A).unwrap()).unwrap();
        let slice = crate::slice_for_point(&g, "C", &[3]).unwrap();
        let dot = to_dot_highlighted(&g, &slice);
        assert!(dot.contains("color=red"));
        // Every operator node / definition edge carrying a statement label is
        // highlighted exactly when the statement is in the slice.
        for line in dot.lines() {
            for stmt in ["s1", "s2", "s3"] {
                if line.contains(&format!("\\n{stmt}\"")) || line.contains(&format!("\"{stmt}\"")) {
                    assert_eq!(
                        line.contains("color=red"),
                        slice.statements.contains(stmt),
                        "wrong highlight on: {line}"
                    );
                }
            }
        }
    }
}
