//! Content fingerprints of ADDG positions.
//!
//! The checker's tabling cache identifies a sub-problem by a pair of
//! traversal positions plus the two output-current mappings.  Within one run
//! a position is just a node id or an array name — dense, but meaningless
//! outside the graph it came from.  To let a long-lived engine reuse
//! established sub-equivalences *across* queries (re-checking the same pair
//! after an edit, or a perturbed variant sharing most of its statements),
//! every position needs a name that depends only on the computation below
//! it, not on extraction order.
//!
//! [`fingerprints`] computes such a name: a 64-bit hash per node and per
//! array that digests, recursively, everything the synchronized traversal's
//! verdict can depend on at that position —
//!
//! * operator kinds and operand order,
//! * constants,
//! * dependency mappings (via [`Relation::structural_hash`], so cosmetic
//!   constraint-presentation differences do not split fingerprints),
//! * per-definition element sets and right-hand sides,
//! * array names and input/output/recurrence roles (leaf comparison and
//!   recurrence handling are name- and role-sensitive).
//!
//! Recurrences make the array-level graph cyclic, so the hashes are computed
//! by Weisfeiler–Lehman-style iteration: array hashes start from local facts
//! (name, roles, definition count) and are refined rounds-many times by
//! hashing each definition's tree over the previous round's array hashes.
//! After `#arrays + 1` rounds every acyclic chain has fully propagated and
//! cyclic structure is folded in up to hash strength.  Two positions with
//! equal fingerprints present identical sub-computations to the checker (up
//! to 64-bit collisions — the same trust boundary as the structural hashes
//! the tabling cache already rides on).

use crate::graph::{Addg, Node, NodeId};
use arrayeq_omega::{structural_hash_of, StructuralHasher};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Stable content hashes for every position of one ADDG (see the module
/// docs).  Produced by [`fingerprints`]; consumed by the engine's shared
/// cross-query equivalence table.
#[derive(Debug, Clone)]
pub struct Fingerprints {
    nodes: Vec<u64>,
    arrays: BTreeMap<String, u64>,
}

impl Fingerprints {
    /// The fingerprint of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the fingerprinted graph.
    pub fn node(&self, id: NodeId) -> u64 {
        self.nodes[id]
    }

    /// The fingerprint of the array position `name`.  Arrays never seen by
    /// the fingerprinted graph fall back to a hash of the name alone, so a
    /// lookup can never panic mid-traversal.
    pub fn array(&self, name: &str) -> u64 {
        self.arrays
            .get(name)
            .copied()
            .unwrap_or_else(|| structural_hash_of(&("unknown-array", name)))
    }

    /// Every array the fingerprinted graph mentions, with its fingerprint,
    /// in name order.  The enumeration the diff engine and the baseline
    /// exporter walk; [`array`](Self::array) stays the point lookup.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, u64)> {
        self.arrays.iter().map(|(name, &h)| (name.as_str(), h))
    }
}

/// Computes the content [`Fingerprints`] of a graph.
///
/// Names of *intermediate* arrays are not folded in: the traversal looks
/// straight through an intermediate (the paper's intermediate-variable
/// reduction), so its name never influences a verdict — only input names
/// (leaf comparison is name-sensitive), output names and recurrence arrays
/// (coinductive assumptions are keyed by name) are.  Dropping the
/// don't-care names makes repeated idioms — the same filter chain applied
/// per channel through differently-named temporaries — fingerprint
/// identically, so their sub-proofs share one tabling entry within a run.
/// Callers whose options make intermediate names significant (focused
/// checking with declared intermediate correspondences) must use
/// [`fingerprints_named`] instead.
pub fn fingerprints(g: &Addg) -> Fingerprints {
    fingerprints_impl(g, false)
}

/// Like [`fingerprints`], but folds *every* array name into the hashes.
///
/// Required when intermediate array names can change the verdict — i.e.
/// when checking under a focus that declares intermediate correspondences
/// by name ([`Focus::intermediate_pairs`]); always sound, just blind to
/// renamed-temporary sharing.
///
/// [`Focus::intermediate_pairs`]: https://docs.rs/arrayeq-core
pub fn fingerprints_named(g: &Addg) -> Fingerprints {
    fingerprints_impl(g, true)
}

/// Folds a flattened term's content — an integer coefficient times a
/// multiset of factors, each named by a `(position fingerprint, mapping
/// structural hash)` pair — into one 64-bit *term fingerprint*.
///
/// This extends the position-fingerprint vocabulary to the normalization
/// subsystem's hash-consed terms: factor pairs are sorted before hashing so
/// the fingerprint is order-free (a commutative-chain term is one multiset),
/// and because both ingredients are rename-invariant and cross-graph
/// comparable, so is the result — equal term fingerprints mean the same
/// `coeff · Π factors` whichever graph each side came from (up to 64-bit
/// collisions, the shared trust boundary of every fingerprint here).
pub fn term_fingerprint(coeff: i64, factor_keys: &[(u64, u64)]) -> u64 {
    let mut sorted: Vec<(u64, u64)> = factor_keys.to_vec();
    sorted.sort_unstable();
    let mut h = StructuralHasher::default();
    ("term", coeff, sorted.len()).hash(&mut h);
    for pair in &sorted {
        pair.hash(&mut h);
    }
    h.finish()
}

fn fingerprints_impl(g: &Addg, name_all: bool) -> Fingerprints {
    let recurrent = g.recurrence_arrays();
    // Collect every array name a position can mention: defined arrays plus
    // inputs (which have no definitions).
    let mut names: Vec<String> = g.input_arrays().to_vec();
    for (_, node) in g.nodes() {
        let mentioned = match node {
            Node::Array { name } => Some(name),
            Node::Access { array, .. } => Some(array),
            _ => None,
        };
        if let Some(name) = mentioned {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    }

    // The part of an array's name that the verdict can depend on: the name
    // itself for inputs/outputs/recurrence arrays, nothing for plain
    // intermediates (unless the caller asked for all names).
    let label = |name: &str| -> String {
        if name_all || g.is_input(name) || g.is_output(name) || recurrent.iter().any(|r| r == name)
        {
            name.to_owned()
        } else {
            String::new()
        }
    };

    // Round 0: local facts only.
    let mut arrays: BTreeMap<String, u64> = names
        .iter()
        .map(|name| {
            let h = structural_hash_of(&(
                "array-seed",
                label(name),
                g.is_input(name),
                g.is_output(name),
                recurrent.contains(name),
                g.definitions(name).len(),
            ));
            (name.clone(), h)
        })
        .collect();

    // The relation hashes folded into every round are round-invariant:
    // an access mapping and a definition's element set never change while
    // the array hashes refine.  Canonicalizing them is the expensive part
    // of a round on wide kernels, so compute each exactly once up front.
    let access_rel: Vec<u64> = g
        .nodes()
        .map(|(_, node)| match node {
            Node::Access { mapping, .. } => mapping.structural_hash(),
            _ => 0,
        })
        .collect();
    let def_rel: BTreeMap<&str, Vec<u64>> = names
        .iter()
        .map(|name| {
            let hashes = g
                .definitions(name)
                .iter()
                .map(|def| def.elements.as_relation().structural_hash())
                .collect();
            (name.as_str(), hashes)
        })
        .collect();

    // WL refinement: re-hash every array over the previous round's hashes of
    // the arrays its definitions read.  `#arrays + 1` rounds bound the
    // longest possible acyclic def-use chain, but refinement is a pure
    // function of the previous round's hashes — once a round changes
    // nothing, no later round can either, so stop at the fixpoint (typically
    // reached after depth-of-the-deepest-chain rounds, far below the bound).
    let rounds = arrays.len() + 1;
    let mut nodes = vec![0u64; g.node_count()];
    for _ in 0..rounds {
        hash_nodes(g, &arrays, &access_rel, &mut nodes);
        let mut next = BTreeMap::new();
        for name in &names {
            let mut h = StructuralHasher::default();
            ("array", label(name), g.is_input(name.as_str())).hash(&mut h);
            for (def, rel_hash) in g.definitions(name).iter().zip(&def_rel[name.as_str()]) {
                (*rel_hash, def.element_dims, nodes[def.root]).hash(&mut h)
            }
            next.insert(name.clone(), h.finish());
        }
        let stable = next == arrays;
        arrays = next;
        if stable {
            break;
        }
    }
    hash_nodes(g, &arrays, &access_rel, &mut nodes);
    Fingerprints { nodes, arrays }
}

/// One bottom-up pass over the statement trees, hashing every node against
/// the current array hashes.  `access_rel` carries the precomputed
/// structural hash of each Access node's mapping (round-invariant, see
/// [`fingerprints_impl`]).  Operator trees are acyclic (operands always
/// point at later-created nodes within the statement), but iterate to a
/// fixpoint over ids to stay independent of creation order.
fn hash_nodes(g: &Addg, arrays: &BTreeMap<String, u64>, access_rel: &[u64], out: &mut [u64]) {
    // Nodes reference only smaller-or-larger ids within their own tree; a
    // reverse pass resolves operands created after their operator, a forward
    // pass the (usual) opposite order.  Two passes always suffice because
    // trees are shallow chains of Operator → operand ids created in one
    // statement visit.
    for _ in 0..2 {
        for (id, node) in g.nodes() {
            out[id] = match node {
                Node::Array { name } => arrays[name],
                Node::Const { value, .. } => structural_hash_of(&("const", value)),
                Node::Access { array, .. } => {
                    structural_hash_of(&("access", arrays[array], access_rel[id]))
                }
                Node::Operator { kind, operands, .. } => {
                    let mut h = StructuralHasher::default();
                    ("operator", kind).hash(&mut h);
                    for &op in operands {
                        out[op].hash(&mut h);
                    }
                    h.finish()
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_D, KERNEL_RECURRENCE};
    use arrayeq_lang::parser::parse_program;

    fn addg(src: &str) -> Addg {
        extract(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn fingerprints_are_stable_across_extractions() {
        let g1 = addg(FIG1_A);
        let g2 = addg(FIG1_A);
        let f1 = fingerprints(&g1);
        let f2 = fingerprints(&g2);
        for name in ["A", "B", "C", "tmp", "buf"] {
            assert_eq!(f1.array(name), f2.array(name), "array {name}");
        }
        for (id, _) in g1.nodes() {
            assert_eq!(f1.node(id), f2.node(id), "node {id}");
        }
    }

    #[test]
    fn fingerprints_are_invariant_under_iterator_renaming() {
        // The same computation written over differently-named iterators:
        // every dependency mapping folds the iterator into an existential,
        // and the rename-canonical structural hashes ignore both the
        // dimension names and the existential order, so the fingerprints —
        // and with them the checker's tabling keys — coincide.
        let with_k = r#"
#define N 64
void f(int A[], int B[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[2*k] + B[k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + A[k];
}
"#;
        let with_j = r#"
#define N 64
void f(int A[], int B[], int C[]) {
    int j, tmp[N];
    for (j = 0; j < N; j++)
s1:     tmp[j] = A[2*j] + B[j];
    for (j = 0; j < N; j++)
s2:     C[j] = tmp[j] + A[j];
}
"#
        .to_owned();
        assert_ne!(with_k, with_j, "renaming changed the source");
        let gk = addg(with_k);
        let gj = addg(&with_j);
        let fk = fingerprints(&gk);
        let fj = fingerprints(&gj);
        for name in ["A", "B", "C", "tmp"] {
            assert_eq!(fk.array(name), fj.array(name), "array {name}");
        }
        assert_eq!(gk.node_count(), gj.node_count());
        for (id, _) in gk.nodes() {
            assert_eq!(fk.node(id), fj.node(id), "node {id}");
        }
    }

    #[test]
    fn intermediate_names_are_transparent_unless_asked_for() {
        // The same computation routed through a differently-named
        // temporary: intermediate names are don't-cares for the verdict, so
        // the default fingerprints coincide while `fingerprints_named`
        // separates them.
        let via_tmp = r#"
#define N 32
void f(int A[], int C[]) {
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[2*k] + A[k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + A[k];
}
"#;
        let via_buf = via_tmp.replace("tmp", "buf");
        let g1 = addg(via_tmp);
        let g2 = addg(&via_buf);
        let f1 = fingerprints(&g1);
        let f2 = fingerprints(&g2);
        assert_eq!(f1.array("tmp"), f2.array("buf"), "renamed temporaries");
        assert_eq!(f1.array("C"), f2.array("C"));
        let n1 = fingerprints_named(&g1);
        let n2 = fingerprints_named(&g2);
        assert_ne!(n1.array("tmp"), n2.array("buf"), "named variant keeps them");
        // ...transitively: C reads the renamed temporary, so its named
        // fingerprint splits too, while the untouched input keeps its hash.
        assert_ne!(n1.array("C"), n2.array("C"));
        assert_eq!(n1.array("A"), n2.array("A"));
    }

    #[test]
    fn different_programs_get_different_output_fingerprints() {
        let fa = fingerprints(&addg(FIG1_A));
        let fd = fingerprints(&addg(FIG1_D));
        // Version (d) computes C differently; the output fingerprint must
        // differ while the untouched inputs keep theirs.
        assert_ne!(fa.array("C"), fd.array("C"));
        assert_eq!(fa.array("A"), fd.array("A"));
        assert_eq!(fa.array("B"), fd.array("B"));
    }

    #[test]
    fn recurrent_graphs_fingerprint_without_diverging() {
        let g = addg(KERNEL_RECURRENCE);
        let f1 = fingerprints(&g);
        let f2 = fingerprints(&g);
        assert_eq!(f1.array("Y"), f2.array("Y"));
    }

    #[test]
    fn unknown_arrays_fall_back_to_a_name_hash() {
        let f = fingerprints(&addg(FIG1_A));
        assert_eq!(f.array("nope"), f.array("nope"));
        assert_ne!(f.array("nope"), f.array("other"));
    }
}
