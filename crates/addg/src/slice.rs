//! Point-driven ADDG slicing: the statements and arrays feeding one concrete
//! output element.
//!
//! Given a witness point `C[p]`, the witness engine wants to show the
//! designer *which part of the program* computed the wrong value.  This
//! module walks the ADDG backwards from the definitions covering `p`,
//! propagating **concrete element points** through the dependency mappings
//! (restrict the mapping's domain to the point, enumerate the range with the
//! Omega model extraction), and collects every statement and array on the
//! way.  Working with concrete points keeps every set operation tiny and
//! makes termination on recurrences a plain visited check — element points
//! strictly decrease along a cycle's dependence direction.  The result
//! drives the highlighted Graphviz export ([`crate::to_dot_highlighted`])
//! and the slice lists attached to witnesses.

use crate::graph::{Addg, Node, NodeId};
use crate::Result;
use arrayeq_omega::Set;
use std::collections::BTreeSet;

/// Upper bound on visited `(array, point)` pairs; hitting it yields a
/// *partial* slice, which is still sound to highlight.
const SLICE_POINT_LIMIT: usize = 4096;

/// Upper bound on the number of distinct elements followed through a single
/// access of a single statement instance (the mappings of the class are
/// functions per iteration, so this is rarely more than one or two).
const READS_PER_ACCESS: usize = 8;

/// The part of an ADDG feeding one concrete output element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Slice {
    /// Labels of the statements on some dependence path into the point.
    pub statements: BTreeSet<String>,
    /// Arrays read or written on those paths (including the output itself).
    pub arrays: BTreeSet<String>,
}

impl Slice {
    /// Whether the slice is empty (no definition covers the point).
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty() && self.arrays.is_empty()
    }
}

/// Whether `set` contains `point` (for some parameter values).
fn covers(set: &Set, point: &[i64]) -> bool {
    if set.space().n_in() != point.len() {
        return false;
    }
    if set.space().n_param() == 0 {
        return set.contains(point, &[]);
    }
    !set.singleton(point)
        .intersect(set)
        .map(|s| s.is_empty())
        .unwrap_or(true)
}

/// Computes the slice of `g` feeding the element `point` of `output`.
///
/// Starting from the definitions of `output` whose element sets contain the
/// point, the traversal restricts each statement's dependency mappings to
/// the current element and follows the concrete points of their ranges into
/// the operand arrays, until input arrays are reached.  Recurrences
/// terminate through the visited set (and, defensively, a work limit).
///
/// # Errors
///
/// Propagates omega-layer errors from the set algebra.
pub fn slice_for_point(g: &Addg, output: &str, point: &[i64]) -> Result<Slice> {
    let mut slice = Slice::default();
    let mut visited: BTreeSet<(String, Vec<i64>)> = BTreeSet::new();
    let mut work: Vec<(String, Vec<i64>)> = vec![(output.to_owned(), point.to_vec())];

    while let Some((array, p)) = work.pop() {
        if visited.len() > SLICE_POINT_LIMIT {
            break;
        }
        if !visited.insert((array.clone(), p.clone())) {
            continue;
        }
        let defs = g.definitions(&array);
        if g.is_input(&array) || defs.is_empty() {
            slice.arrays.insert(array);
            continue;
        }
        let mut covered_by_any = false;
        for def in defs {
            if !covers(&def.elements, &p) {
                continue;
            }
            covered_by_any = true;
            slice.statements.insert(def.statement.clone());
            let here = def.elements.singleton(&p);
            // Follow every access leaf of the statement's operator tree.
            let mut stack: Vec<NodeId> = vec![def.root];
            while let Some(id) = stack.pop() {
                match g.node(id) {
                    Node::Operator { operands, .. } => stack.extend(operands.iter().copied()),
                    Node::Access { array, mapping, .. } => {
                        let reads = mapping.restrict_domain(&here)?.range();
                        for (rp, _params) in reads.sample_points(READS_PER_ACCESS) {
                            work.push((array.clone(), rp));
                        }
                    }
                    Node::Array { .. } | Node::Const { .. } => {}
                }
            }
        }
        if covered_by_any {
            slice.arrays.insert(array);
        }
    }
    Ok(slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use arrayeq_lang::corpus::{with_size, FIG1_A, FIG1_D, KERNEL_RECURRENCE};
    use arrayeq_lang::parser::parse_program;

    fn addg(src: &str) -> Addg {
        extract(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1a_slice_covers_the_feeding_statements() {
        let g = addg(FIG1_A);
        let s = slice_for_point(&g, "C", &[3]).unwrap();
        // C[3] needs s3 (the defining statement), s1 (tmp[3]) and s2
        // (buf[6] = buf[2*3]).
        for stmt in ["s1", "s2", "s3"] {
            assert!(s.statements.contains(stmt), "missing {stmt}: {s:?}");
        }
        for arr in ["C", "tmp", "buf", "A", "B"] {
            assert!(s.arrays.contains(arr), "missing {arr}: {s:?}");
        }
    }

    #[test]
    fn slice_is_point_sensitive() {
        let g = addg(FIG1_D);
        // Odd points of C are defined by v4 only; v3 must not be in the slice.
        let s = slice_for_point(&g, "C", &[3]).unwrap();
        assert!(s.statements.contains("v4"));
        assert!(!s.statements.contains("v3"), "{s:?}");
        // Even points go through v3 instead.
        let s = slice_for_point(&g, "C", &[2]).unwrap();
        assert!(s.statements.contains("v3"));
    }

    #[test]
    fn slice_of_uncovered_point_is_empty_of_statements() {
        let g = addg(FIG1_A);
        let s = slice_for_point(&g, "C", &[100_000]).unwrap();
        assert!(s.statements.is_empty());
    }

    #[test]
    fn recurrence_slice_terminates_even_from_deep_points() {
        let g = addg(&with_size(KERNEL_RECURRENCE, 64));
        let s = slice_for_point(&g, "Y", &[63]).unwrap();
        assert!(s.statements.contains("r0"));
        assert!(s.statements.contains("r1"));
        assert!(s.arrays.contains("X"));
    }
}
