//! # arrayeq-addg
//!
//! Array Data Dependence Graphs (ADDGs) — the program representation of
//! Section 3.2 of the DATE 2005 paper.
//!
//! An ADDG has a node for every array variable and for every operator
//! occurrence of a program in the restricted class.  Edges point against the
//! flow of data: from each defined array to the operator tree of the
//! statement defining it (labelled with the statement), and from operators to
//! their operands (labelled with the operand position).  Each array-read leaf
//! carries the statement's **dependency mapping** — the integer relation from
//! the elements being defined to the elements being read, represented with
//! [`arrayeq_omega::Relation`].
//!
//! The equivalence checker of `arrayeq-core` works directly on this graph;
//! this crate provides construction ([`extract`]), the reduction primitive
//! (composition of dependency mappings along a path, available through the
//! relations themselves), structural queries (roots, leaves, recurrence
//! cycles) and Graphviz export for inspection.
//!
//! ```
//! use arrayeq_addg::extract;
//! use arrayeq_lang::parser::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(arrayeq_lang::corpus::FIG1_A)?;
//! let addg = extract(&program)?;
//! assert_eq!(addg.output_arrays(), &["C".to_string()]);
//! assert_eq!(addg.definitions("C").len(), 1);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod dot;
mod extract;
mod fingerprint;
mod graph;
mod slice;

pub use diff::{diff_addgs, diff_fingerprints, AddgDiff};
pub use dot::{to_dot, to_dot_highlighted};
pub use extract::{describe_node, extract};
pub use fingerprint::{fingerprints, fingerprints_named, term_fingerprint, Fingerprints};
pub use graph::{Addg, Definition, Node, NodeId, OperatorKind};
pub use slice::{slice_for_point, Slice};

use std::fmt;

/// Errors produced while building or querying an ADDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddgError {
    /// The underlying frontend analysis failed.
    Lang(arrayeq_lang::LangError),
    /// The omega layer failed while building dependency mappings.
    Omega(arrayeq_omega::OmegaError),
    /// The program uses a construct the ADDG extractor does not support.
    Unsupported {
        /// Description of the unsupported construct.
        message: String,
    },
}

impl fmt::Display for AddgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddgError::Lang(e) => write!(f, "frontend error: {e}"),
            AddgError::Omega(e) => write!(f, "integer-set error: {e}"),
            AddgError::Unsupported { message } => write!(f, "unsupported construct: {message}"),
        }
    }
}

impl std::error::Error for AddgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AddgError::Lang(e) => Some(e),
            AddgError::Omega(e) => Some(e),
            AddgError::Unsupported { .. } => None,
        }
    }
}

impl From<arrayeq_lang::LangError> for AddgError {
    fn from(e: arrayeq_lang::LangError) -> Self {
        AddgError::Lang(e)
    }
}

impl From<arrayeq_omega::OmegaError> for AddgError {
    fn from(e: arrayeq_omega::OmegaError) -> Self {
        AddgError::Omega(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AddgError>;
