//! ADDG diff engine: classify positions clean/dirty across two versions of
//! a program and compute the dirty cone an incremental re-check must cover.
//!
//! The substrate is the WL-style content fingerprint of
//! [`fingerprints`](crate::fingerprints): a position whose fingerprint is
//! unchanged between the old and the new graph presents the checker with an
//! identical sub-computation, so every sub-proof below it is reusable as-is.
//! A position whose fingerprint changed — or that exists on only one side —
//! is *dirty*, and because the fingerprint of a reader digests the
//! fingerprints of everything it reads, dirtiness already propagates
//! transitively toward the outputs through the hashes themselves.  The cone
//! computation below re-derives that closure explicitly over the array
//! dependence edges anyway: it is cheap, it documents the intended
//! semantics (dirty positions plus everything reachable from them along
//! def-use edges toward the outputs), and it keeps the classification
//! conservative even if a 64-bit collision ever masked a changed reader.

use crate::fingerprint::{fingerprints, Fingerprints};
use crate::graph::Addg;
use std::collections::{BTreeMap, BTreeSet};

/// The result of diffing two versions of one program's ADDG.
///
/// Array names are the position vocabulary: node-level edits surface as a
/// changed fingerprint on the array whose definition contains the node, so
/// array granularity is exactly the granularity at which the checker can
/// skip work (one output obligation per output array).
#[derive(Debug, Clone)]
pub struct AddgDiff {
    /// Arrays present in both graphs with identical content fingerprints.
    pub clean: Vec<String>,
    /// Arrays whose fingerprints differ, or that exist on only one side.
    pub dirty: Vec<String>,
    /// The dirty cone: dirty arrays plus every array reachable from one
    /// along dependence edges toward the outputs (i.e. every array whose
    /// value can observe an edit).  Sorted; always a superset of `dirty`.
    pub cone: Vec<String>,
    /// Output arrays (of either side) inside the cone — the obligations an
    /// incremental re-check must actually traverse.
    pub dirty_outputs: Vec<String>,
    /// Output arrays of the *new* graph outside the cone — the obligations
    /// a baseline-seeded run may skip entirely.
    pub clean_outputs: Vec<String>,
}

impl AddgDiff {
    /// Total number of arrays seen across both graphs.
    pub fn total(&self) -> usize {
        self.clean.len() + self.dirty.len()
    }

    /// One-line cone statistics for logs and bench rows.
    pub fn stats_line(&self) -> String {
        format!(
            "arrays: {} total, {} dirty, cone {} ({} of {} outputs dirty)",
            self.total(),
            self.dirty.len(),
            self.cone.len(),
            self.dirty_outputs.len(),
            self.dirty_outputs.len() + self.clean_outputs.len(),
        )
    }
}

/// Diffs two versions of a program by content fingerprint.
///
/// `old` and `new` are the pre-edit and post-edit graphs of the *same side*
/// of an equivalence query (the pair the baseline was produced on versus
/// the pair being re-checked).  Comparison is positional only in name:
/// fingerprints are rename-invariant for intermediates, so routing the same
/// computation through a renamed temporary stays clean.
pub fn diff_addgs(old: &Addg, new: &Addg) -> AddgDiff {
    diff_fingerprints(&fingerprints(old), &fingerprints(new), old, new)
}

/// Like [`diff_addgs`], but over fingerprints the caller already computed
/// (with whichever naming scheme the check options demand).
pub fn diff_fingerprints(
    old_fp: &Fingerprints,
    new_fp: &Fingerprints,
    old: &Addg,
    new: &Addg,
) -> AddgDiff {
    // Union of array vocabularies; BTreeMap keeps every listing sorted and
    // deterministic.
    let mut seen: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for (name, _) in old_fp.arrays() {
        seen.entry(name).or_insert((false, false)).0 = true;
    }
    for (name, _) in new_fp.arrays() {
        seen.entry(name).or_insert((false, false)).1 = true;
    }

    let mut clean = Vec::new();
    let mut dirty: BTreeSet<String> = BTreeSet::new();
    for (name, (in_old, in_new)) in &seen {
        if *in_old && *in_new && old_fp.array(name) == new_fp.array(name) {
            clean.push((*name).to_owned());
        } else {
            dirty.insert((*name).to_owned());
        }
    }

    // Dirty cone: propagate along the new graph's dependence edges (defined
    // array reads dirty array ⇒ defined array is in the cone), to fixpoint.
    // Arrays only the old graph knew stay in the cone as themselves — they
    // have no readers in the new graph by definition.
    let deps = new.array_dependences();
    let mut cone: BTreeSet<String> = dirty.clone();
    loop {
        let before = cone.len();
        for (defined, read) in &deps {
            if cone.contains(read) {
                cone.insert(defined.clone());
            }
        }
        if cone.len() == before {
            break;
        }
    }

    let mut outputs: BTreeSet<&str> = new.output_arrays().iter().map(String::as_str).collect();
    outputs.extend(old.output_arrays().iter().map(String::as_str));
    let dirty_outputs: Vec<String> = outputs
        .iter()
        .filter(|o| cone.contains(**o))
        .map(|o| (*o).to_owned())
        .collect();
    let clean_outputs: Vec<String> = new
        .output_arrays()
        .iter()
        .filter(|o| !cone.contains(o.as_str()))
        .cloned()
        .collect();

    AddgDiff {
        clean,
        dirty: dirty.into_iter().collect(),
        cone: cone.into_iter().collect(),
        dirty_outputs,
        clean_outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_D};
    use arrayeq_lang::parser::parse_program;

    fn addg(src: &str) -> Addg {
        extract(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn identical_graphs_diff_clean() {
        let g = addg(FIG1_A);
        let d = diff_addgs(&g, &addg(FIG1_A));
        assert!(d.dirty.is_empty(), "dirty: {:?}", d.dirty);
        assert!(d.cone.is_empty());
        assert!(d.dirty_outputs.is_empty());
        assert_eq!(d.clean_outputs, vec!["C".to_owned()]);
        assert!(d.clean.iter().any(|a| a == "C"));
    }

    #[test]
    fn edited_output_lands_in_the_cone() {
        // FIG1_D computes C differently from FIG1_A: the output must be
        // dirty, the untouched inputs clean.
        let d = diff_addgs(&addg(FIG1_A), &addg(FIG1_D));
        assert!(d.dirty.iter().any(|a| a == "C"), "dirty: {:?}", d.dirty);
        assert!(d.clean.iter().any(|a| a == "A"));
        assert!(d.clean.iter().any(|a| a == "B"));
        assert_eq!(d.dirty_outputs, vec!["C".to_owned()]);
        assert!(d.clean_outputs.is_empty());
    }

    #[test]
    fn edit_in_one_chain_keeps_the_other_output_clean() {
        let two = r#"
#define N 32
void f(int A[], int C[], int D[]) {
    int k, t1[N], t2[N];
    for (k = 0; k < N; k++)
s1:     t1[k] = A[k] + 1;
    for (k = 0; k < N; k++)
s2:     C[k] = t1[k] + A[k];
    for (k = 0; k < N; k++)
s3:     t2[k] = A[k] + 2;
    for (k = 0; k < N; k++)
s4:     D[k] = t2[k] + A[k];
}
"#;
        // Edit one statement of the D-chain only.
        let edited = two.replace("A[k] + 2", "A[k] + 3");
        let d = diff_addgs(&addg(two), &addg(&edited));
        assert_eq!(d.dirty_outputs, vec!["D".to_owned()]);
        assert_eq!(d.clean_outputs, vec!["C".to_owned()]);
        // The edited temporary and its reader are both in the cone.
        assert!(d.cone.iter().any(|a| a == "t2"));
        assert!(d.cone.iter().any(|a| a == "D"));
        assert!(!d.cone.iter().any(|a| a == "t1"));
        assert!(d.stats_line().contains("1 of 2 outputs dirty"));
    }
}
