//! ADDG extraction from programs in the restricted class.

use crate::graph::{Addg, Definition, Node, NodeId, OperatorKind};
use crate::Result;
use arrayeq_lang::affine::{analyze, StatementInfo};
use arrayeq_lang::ast::{ArrayRef, BinOp, Expr, Program};
use arrayeq_lang::pretty::array_ref_to_string;

/// Extracts the ADDG of a program.
///
/// Every assignment statement contributes one operator tree; array-read
/// leaves carry their dependency mapping (`write⁻¹ ∘ read`), and the
/// statement is registered as a definition of its target array together with
/// the set of elements it defines.
///
/// # Errors
///
/// Fails when the affine analysis of the frontend fails (non-affine indices
/// or bounds) or a dependency mapping cannot be built.
pub fn extract(program: &Program) -> Result<Addg> {
    let infos = analyze(program)?;
    let mut g = Addg::new(program.name.clone());

    // Roles: inputs are parameters that are only read; outputs are written
    // parameters; intermediates are local arrays (plus written-and-read
    // parameters, which behave like intermediates for the traversal).
    let inputs = program.input_arrays();
    let outputs = program.output_arrays();
    let intermediates = program.intermediate_arrays();
    g.set_roles(inputs, outputs, intermediates);

    for info in &infos {
        let root = build_expr(&mut g, &info.rhs, info)?;
        let elements = info.write_element_set()?;
        let def = Definition {
            statement: info.label.clone(),
            elements,
            root,
            lhs_text: format!(
                "{}[{}]",
                info.target,
                info.write_indices
                    .iter()
                    .map(render_affine)
                    .collect::<Vec<_>>()
                    .join("][")
            ),
            element_dims: info.write_indices.len(),
        };
        g.add_definition(&info.target, def);
    }
    Ok(g)
}

fn render_affine(a: &arrayeq_lang::affine::Affine) -> String {
    let mut parts = Vec::new();
    for (n, &c) in &a.coeffs {
        if c == 0 {
            continue;
        }
        if c == 1 {
            parts.push(n.clone());
        } else {
            parts.push(format!("{c}{n}"));
        }
    }
    if a.konst != 0 || parts.is_empty() {
        parts.push(a.konst.to_string());
    }
    parts.join(" + ")
}

/// Recursively builds the operator tree of a right-hand side.
fn build_expr(g: &mut Addg, e: &Expr, info: &StatementInfo) -> Result<NodeId> {
    match e {
        Expr::Const(v) => Ok(g.push_node(Node::Const {
            value: *v,
            statement: info.label.clone(),
        })),
        Expr::Var(name) => {
            // A bare scalar in a right-hand side: only `#define` constants
            // are allowed by the class, and those fold to constants.
            if let Some(v) = info.defines.get(name) {
                Ok(g.push_node(Node::Const {
                    value: *v,
                    statement: info.label.clone(),
                }))
            } else {
                Err(crate::AddgError::Unsupported {
                    message: format!(
                        "scalar `{name}` used as a value in statement {}",
                        info.label
                    ),
                })
            }
        }
        Expr::Access(access) => build_access(g, access, info),
        Expr::Neg(inner) => {
            let child = build_expr(g, inner, info)?;
            Ok(g.push_node(Node::Operator {
                kind: OperatorKind::Neg,
                statement: info.label.clone(),
                operands: vec![child],
            }))
        }
        Expr::Bin(op, l, r) => {
            let lc = build_expr(g, l, info)?;
            let rc = build_expr(g, r, info)?;
            let kind = match op {
                BinOp::Add => OperatorKind::Add,
                BinOp::Sub => OperatorKind::Sub,
                BinOp::Mul => OperatorKind::Mul,
                BinOp::Div => OperatorKind::Div,
            };
            Ok(g.push_node(Node::Operator {
                kind,
                statement: info.label.clone(),
                operands: vec![lc, rc],
            }))
        }
        Expr::Call(name, args) => {
            let mut operands = Vec::with_capacity(args.len());
            for a in args {
                operands.push(build_expr(g, a, info)?);
            }
            Ok(g.push_node(Node::Operator {
                kind: OperatorKind::Call(name.clone()),
                statement: info.label.clone(),
                operands,
            }))
        }
    }
}

fn build_access(g: &mut Addg, access: &ArrayRef, info: &StatementInfo) -> Result<NodeId> {
    let mapping = info.dependency_mapping(access)?;
    // Make sure the array variable node exists so the graph has one node per
    // variable, as in the paper's figures.
    g.array_node(&access.array);
    Ok(g.push_node(Node::Access {
        array: access.array.clone(),
        statement: info.label.clone(),
        mapping,
        index_text: array_ref_to_string(access),
    }))
}

/// Renders the expression tree rooted at a node as readable text — used by
/// the error diagnostics of the equivalence checker and by the Graphviz
/// export.
pub fn describe_node(g: &Addg, id: NodeId) -> String {
    match g.node(id) {
        Node::Array { name } => name.clone(),
        Node::Const { value, .. } => value.to_string(),
        Node::Access { index_text, .. } => index_text.clone(),
        Node::Operator { kind, operands, .. } => {
            let parts: Vec<String> = operands.iter().map(|&o| describe_node(g, o)).collect();
            match kind {
                OperatorKind::Call(name) => format!("{name}({})", parts.join(", ")),
                OperatorKind::Neg => format!("-({})", parts[0]),
                _ => format!("({})", parts.join(&format!(" {kind} "))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_C, KERNEL_SAD_TREE};
    use arrayeq_lang::parser::parse_program;
    use arrayeq_omega::Relation;

    fn addg(src: &str) -> Addg {
        extract(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn dependency_mappings_of_fig1a_match_the_paper() {
        let g = addg(FIG1_A);
        // Find statement s2's definition of buf and inspect its two A leaves.
        let def = &g
            .definitions("buf")
            .iter()
            .find(|d| d.statement == "s2")
            .expect("s2 defines buf")
            .clone();
        let mut access_mappings = Vec::new();
        collect_access_mappings(&g, def.root, &mut access_mappings);
        assert_eq!(access_mappings.len(), 2);
        let expect1 = Relation::parse(
            "{ [x] -> [y] : exists k : x = 2k - 2 and y = 2k - 2 and 1 <= k <= 1024 }",
        )
        .unwrap();
        let expect2 = Relation::parse(
            "{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }",
        )
        .unwrap();
        assert!(access_mappings[0].1.is_equal(&expect1).unwrap());
        assert!(access_mappings[1].1.is_equal(&expect2).unwrap());
        assert_eq!(access_mappings[0].0, "A");
        assert_eq!(access_mappings[1].0, "A");
    }

    fn collect_access_mappings(g: &Addg, id: NodeId, out: &mut Vec<(String, Relation)>) {
        match g.node(id) {
            Node::Access { array, mapping, .. } => out.push((array.clone(), mapping.clone())),
            Node::Operator { operands, .. } => {
                for &o in operands {
                    collect_access_mappings(g, o, out);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn strided_definitions_have_strided_element_sets() {
        let g = addg(FIG1_C);
        // u1 defines buf[0..N), u2 defines buf[N..2N-2] for even indices only.
        let defs = g.definitions("buf");
        assert_eq!(defs.len(), 2);
        let u2 = defs.iter().find(|d| d.statement == "u2").unwrap();
        assert!(u2.elements.contains(&[1024], &[]));
        assert!(u2.elements.contains(&[2046], &[]));
        assert!(!u2.elements.contains(&[1025], &[]));
    }

    #[test]
    fn calls_become_operator_nodes() {
        let g = addg(KERNEL_SAD_TREE);
        let mut found_call = false;
        for (_, n) in g.nodes() {
            if let Node::Operator {
                kind: OperatorKind::Call(name),
                ..
            } = n
            {
                assert_eq!(name, "absd");
                found_call = true;
            }
        }
        assert!(found_call);
    }

    #[test]
    fn describe_node_renders_readable_expressions() {
        let g = addg(FIG1_A);
        let def = &g.definitions("C")[0];
        let text = describe_node(&g, def.root);
        assert!(text.contains("tmp[k]"));
        assert!(text.contains("buf[2 * k]"));
    }

    #[test]
    fn scalars_in_value_position_are_rejected() {
        let src = r#"
void f(int A[], int C[]) {
    int k, x;
    for (k = 0; k < 4; k++)
s1:     C[k] = A[k] + x;
}
"#;
        let p = parse_program(src).unwrap();
        assert!(matches!(
            extract(&p),
            Err(crate::AddgError::Unsupported { .. })
        ));
    }
}
