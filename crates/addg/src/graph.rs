//! The ADDG data structure.

use arrayeq_omega::{Relation, Set};
use std::collections::BTreeMap;

/// Index of a node within an [`Addg`].
pub type NodeId = usize;

/// The kind of operator an operator node applies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperatorKind {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Unary negation.
    Neg,
    /// A call of an (uninterpreted or user-declared) function.
    Call(String),
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OperatorKind::Add => write!(f, "+"),
            OperatorKind::Sub => write!(f, "-"),
            OperatorKind::Mul => write!(f, "*"),
            OperatorKind::Div => write!(f, "/"),
            OperatorKind::Neg => write!(f, "neg"),
            OperatorKind::Call(n) => write!(f, "{n}()"),
        }
    }
}

/// A node of the ADDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An array variable (input, output or intermediate).
    Array {
        /// The array name.
        name: String,
    },
    /// An operator occurrence inside the right-hand side of a statement.
    Operator {
        /// The operator.
        kind: OperatorKind,
        /// Label of the statement this occurrence belongs to.
        statement: String,
        /// Operand nodes, in operand-position order.
        operands: Vec<NodeId>,
    },
    /// An array read occurrence (a leaf of a statement's operator tree).
    Access {
        /// The array being read.
        array: String,
        /// Label of the statement this read belongs to.
        statement: String,
        /// The paper's dependency mapping `M_{def,operand}`: from the
        /// elements defined by the statement to the elements read by this
        /// occurrence.
        mapping: Relation,
        /// The index expressions of the access, pretty-printed (for error
        /// diagnostics).
        index_text: String,
    },
    /// A literal constant in a right-hand side.
    Const {
        /// The value.
        value: i64,
        /// Label of the statement this constant belongs to.
        statement: String,
    },
}

/// One definition of an array: the statement that assigns (part of) it.
#[derive(Debug, Clone)]
pub struct Definition {
    /// Label of the defining statement.
    pub statement: String,
    /// The set of elements this statement defines.
    pub elements: Set,
    /// Root node of the statement's right-hand-side operator tree.
    pub root: NodeId,
    /// Pretty-printed left-hand side (for diagnostics).
    pub lhs_text: String,
    /// Number of dimensions of the defined array elements.
    pub element_dims: usize,
}

/// An Array Data Dependence Graph.
#[derive(Debug, Clone)]
pub struct Addg {
    /// Name of the program function the graph was extracted from.
    pub program_name: String,
    nodes: Vec<Node>,
    array_ids: BTreeMap<String, NodeId>,
    definitions: BTreeMap<String, Vec<Definition>>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    intermediates: Vec<String>,
}

impl Addg {
    /// Creates an empty graph (used by the extractor).
    pub(crate) fn new(program_name: String) -> Self {
        Addg {
            program_name,
            nodes: Vec::new(),
            array_ids: BTreeMap::new(),
            definitions: BTreeMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            intermediates: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        id
    }

    /// Returns (creating if necessary) the node of an array variable.
    pub(crate) fn array_node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.array_ids.get(name) {
            return id;
        }
        let id = self.push_node(Node::Array {
            name: name.to_owned(),
        });
        self.array_ids.insert(name.to_owned(), id);
        id
    }

    /// Registers a definition of an array.
    pub(crate) fn add_definition(&mut self, array: &str, def: Definition) {
        self.array_node(array);
        self.definitions
            .entry(array.to_owned())
            .or_default()
            .push(def);
    }

    /// Sets the role lists (called once by the extractor).
    pub(crate) fn set_roles(
        &mut self,
        inputs: Vec<String>,
        outputs: Vec<String>,
        intermediates: Vec<String>,
    ) {
        self.inputs = inputs;
        self.outputs = outputs;
        self.intermediates = intermediates;
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate()
    }

    /// The input arrays (leaf nodes of the ADDG).
    pub fn input_arrays(&self) -> &[String] {
        &self.inputs
    }

    /// The output arrays (root nodes of the ADDG).
    pub fn output_arrays(&self) -> &[String] {
        &self.outputs
    }

    /// The intermediate arrays.
    pub fn intermediate_arrays(&self) -> &[String] {
        &self.intermediates
    }

    /// Whether the array is an input of the function.
    pub fn is_input(&self, array: &str) -> bool {
        self.inputs.iter().any(|a| a == array)
    }

    /// Whether the array is an output of the function.
    pub fn is_output(&self, array: &str) -> bool {
        self.outputs.iter().any(|a| a == array)
    }

    /// The definitions (assigning statements) of an array, in textual order.
    /// Input arrays have no definitions.
    pub fn definitions(&self, array: &str) -> &[Definition] {
        self.definitions
            .get(array)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The union of all elements of `array` defined by the program, or `None`
    /// if the array has no definitions.
    pub fn defined_elements(&self, array: &str) -> Option<Set> {
        let defs = self.definitions(array);
        let mut acc: Option<Set> = None;
        for d in defs {
            acc = Some(match acc {
                None => d.elements.clone(),
                Some(s) => s.union(&d.elements).ok()?,
            });
        }
        acc
    }

    /// Total number of assignment statements represented in the graph.
    pub fn statement_count(&self) -> usize {
        self.definitions.values().map(|v| v.len()).sum()
    }

    /// The arrays read (transitively through operators) by the statement tree
    /// rooted at `root`.
    pub fn arrays_read_from(&self, root: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Access { array, .. } => {
                    if !out.contains(array) {
                        out.push(array.clone());
                    }
                }
                Node::Operator { operands, .. } => stack.extend(operands.iter().copied()),
                Node::Array { .. } | Node::Const { .. } => {}
            }
        }
        out
    }

    /// The array-level dependence edges: `(defined array, read array)` pairs,
    /// one per (definition, operand array).
    pub fn array_dependences(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (array, defs) in &self.definitions {
            for d in defs {
                for read in self.arrays_read_from(d.root) {
                    let pair = (array.clone(), read);
                    if !out.contains(&pair) {
                        out.push(pair);
                    }
                }
            }
        }
        out
    }

    /// The arrays involved in data-flow recurrences (cycles in the
    /// array-level dependence graph, including self-loops).  The paper
    /// handles these with the transitive closure of the cycle's total
    /// dependence mapping.
    pub fn recurrence_arrays(&self) -> Vec<String> {
        let deps = self.array_dependences();
        let arrays: Vec<String> = self.definitions.keys().cloned().collect();
        let mut cyclic = Vec::new();
        for a in &arrays {
            // DFS from a over dependence edges; if we can come back to a, it
            // is part of a cycle.
            let mut stack: Vec<&String> = deps
                .iter()
                .filter(|(from, _)| from == a)
                .map(|(_, to)| to)
                .collect();
            let mut seen: Vec<&String> = Vec::new();
            let mut found = false;
            while let Some(n) = stack.pop() {
                if n == a {
                    found = true;
                    break;
                }
                if seen.contains(&n) {
                    continue;
                }
                seen.push(n);
                stack.extend(deps.iter().filter(|(from, _)| from == n).map(|(_, to)| to));
            }
            if found {
                cyclic.push(a.clone());
            }
        }
        cyclic
    }

    /// Whether the ADDG contains any recurrence.
    pub fn has_recurrence(&self) -> bool {
        !self.recurrence_arrays().is_empty()
    }

    /// Sum over all statements of the number of paths from the defined array
    /// to array-read leaves — the "number of data dependence paths" measure
    /// used when relating checker runtime to ADDG size.
    pub fn leaf_path_count(&self) -> usize {
        let mut total = 0;
        for defs in self.definitions.values() {
            for d in defs {
                total += self.count_leaves(d.root);
            }
        }
        total
    }

    fn count_leaves(&self, id: NodeId) -> usize {
        match &self.nodes[id] {
            Node::Access { .. } => 1,
            Node::Const { .. } | Node::Array { .. } => 0,
            Node::Operator { operands, .. } => operands.iter().map(|&o| self.count_leaves(o)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_B, KERNEL_RECURRENCE};
    use arrayeq_lang::parser::parse_program;

    fn addg(src: &str) -> Addg {
        extract(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1a_structure() {
        let g = addg(FIG1_A);
        assert_eq!(g.output_arrays(), &["C".to_string()]);
        assert_eq!(
            g.input_arrays(),
            &["A".to_string(), "B".to_string()],
            "A and B are only read"
        );
        assert_eq!(
            g.intermediate_arrays(),
            &["tmp".to_string(), "buf".to_string()]
        );
        assert_eq!(g.statement_count(), 3);
        // 4 leaf paths from C: via tmp to B (2) and via buf to A (2) — at the
        // statement level each statement has 2 leaves.
        assert_eq!(g.leaf_path_count(), 6);
        assert!(!g.has_recurrence());
        let deps = g.array_dependences();
        assert!(deps.contains(&("C".to_string(), "tmp".to_string())));
        assert!(deps.contains(&("tmp".to_string(), "B".to_string())));
        assert!(deps.contains(&("buf".to_string(), "A".to_string())));
    }

    #[test]
    fn fig1b_has_split_output_definitions() {
        let g = addg(FIG1_B);
        // C is defined by t3 and t4.
        assert_eq!(g.definitions("C").len(), 2);
        let total = g.defined_elements("C").unwrap();
        // Together they define exactly [0, 1024).
        let expected = arrayeq_omega::Set::parse("{ [k] : 0 <= k < 1024 }").unwrap();
        assert!(total.is_equal(&expected).unwrap());
        // And each alone does not.
        for d in g.definitions("C") {
            assert!(!d.elements.is_equal(&expected).unwrap());
        }
    }

    #[test]
    fn recurrence_is_detected() {
        let g = addg(KERNEL_RECURRENCE);
        assert!(g.has_recurrence());
        assert_eq!(g.recurrence_arrays(), vec!["Y".to_string()]);
    }

    #[test]
    fn operator_kind_display() {
        assert_eq!(OperatorKind::Add.to_string(), "+");
        assert_eq!(OperatorKind::Call("absd".into()).to_string(), "absd()");
    }
}
