//! Global data-flow transformations: expression propagation (inlining an
//! intermediate array into its consumers, or introducing a fresh one).

use crate::{Result, TransformError};
use arrayeq_lang::ast::*;

/// **Forward expression propagation**: inlines an intermediate array that is
/// written with an *identity* index (`tmp[k] = rhs(k)`) by a single
/// statement into every statement that reads it, substituting the read index
/// into the producer's right-hand side, and removes the producer loop.  This
/// is the propagation applied between Fig. 1(a) and (b) (statement `t4`).
///
/// # Errors
///
/// Returns [`TransformError::NotApplicable`] when the array is defined by
/// more than one statement, written with a non-identity index, or not an
/// intermediate local array.
pub fn propagate_array(p: &Program, array: &str) -> Result<Program> {
    if !p.intermediate_arrays().contains(&array.to_owned()) {
        return Err(TransformError::NotApplicable {
            message: format!("`{array}` is not an intermediate local array"),
        });
    }
    // Find the unique producer statement and its enclosing iterator.
    let producers: Vec<&Assign> = p.statements().filter(|a| a.lhs.array == array).collect();
    if producers.len() != 1 {
        return Err(TransformError::NotApplicable {
            message: format!("`{array}` is defined by {} statements", producers.len()),
        });
    }
    let producer = producers[0].clone();
    if producer.lhs.indices.len() != 1 {
        return Err(TransformError::NotApplicable {
            message: "propagation is implemented for 1-D intermediates".into(),
        });
    }
    let iter_var = match &producer.lhs.indices[0] {
        Expr::Var(v) => v.clone(),
        _ => {
            return Err(TransformError::NotApplicable {
                message: format!("`{array}` is not written with an identity index"),
            })
        }
    };

    // Replace reads `array[f(k)]` by the producer's rhs with `iter := f(k)`,
    // then drop the producer statement (and its loop if it becomes empty).
    let mut out = p.clone();
    substitute_reads(&mut out.body, array, &producer.rhs, &iter_var);
    remove_statement(&mut out.body, &producer.label);
    out.body.retain(|s| !is_empty_loop(s));
    out.decls.retain(|d| d.name != array);
    Ok(out)
}

/// **Reverse expression propagation**: extracts the right-hand side of the
/// statement `label` into a fresh intermediate array `temp_name` written with
/// an identity index in its own preceding loop, and replaces the original
/// right-hand side by a read of the new array.  (The inverse of
/// [`propagate_array`] for statements nested in a single unit-stride loop.)
///
/// # Errors
///
/// Returns [`TransformError`] when the statement does not exist or is not
/// nested in exactly one top-level unit-stride loop.
pub fn introduce_temp(p: &Program, label: &str, temp_name: &str) -> Result<Program> {
    // Locate the top-level loop that (directly) contains the statement.
    for (i, s) in p.body.iter().enumerate() {
        if let Stmt::For(f) = s {
            if let Some(pos) = f
                .body
                .iter()
                .position(|s| matches!(s, Stmt::Assign(a) if a.label == label))
            {
                let Stmt::Assign(a) = &f.body[pos] else {
                    unreachable!()
                };
                let producer_loop = Stmt::For(For {
                    var: f.var.clone(),
                    init: f.init.clone(),
                    cond: f.cond.clone(),
                    step: f.step,
                    body: vec![Stmt::Assign(Assign {
                        label: format!("{label}_pre"),
                        lhs: ArrayRef::new(temp_name, vec![Expr::var(&f.var)]),
                        rhs: a.rhs.clone(),
                    })],
                });
                let mut new_loop = f.clone();
                new_loop.body[pos] = Stmt::Assign(Assign {
                    label: a.label.clone(),
                    lhs: a.lhs.clone(),
                    rhs: Expr::access1(temp_name, Expr::var(&f.var)),
                });
                let mut out = p.clone();
                out.body[i] = Stmt::For(new_loop);
                out.body.insert(i, producer_loop);
                // Size the temporary generously: the loop bound expression.
                out.decls.push(Decl {
                    name: temp_name.to_owned(),
                    dims: vec![new_loop_size(f)],
                });
                return Ok(out);
            }
        }
    }
    Err(TransformError::NoSuchLocation {
        message: format!("no top-level loop directly contains statement `{label}`"),
    })
}

fn new_loop_size(f: &For) -> Expr {
    // A safe size for the identity-indexed temporary: the loop's exclusive
    // upper bound (its condition right-hand side plus one for `<=`).
    match f.cond.op {
        CmpOp::Le => Expr::add(f.cond.rhs.clone(), Expr::Const(1)),
        _ => f.cond.rhs.clone(),
    }
}

fn substitute_reads(stmts: &mut [Stmt], array: &str, producer_rhs: &Expr, iter_var: &str) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                a.rhs = substitute_in_expr(a.rhs.clone(), array, producer_rhs, iter_var);
            }
            Stmt::For(f) => substitute_reads(&mut f.body, array, producer_rhs, iter_var),
            Stmt::If(i) => {
                substitute_reads(&mut i.then_branch, array, producer_rhs, iter_var);
                substitute_reads(&mut i.else_branch, array, producer_rhs, iter_var);
            }
        }
    }
}

fn substitute_in_expr(e: Expr, array: &str, producer_rhs: &Expr, iter_var: &str) -> Expr {
    match e {
        Expr::Access(r) if r.array == array && r.indices.len() == 1 => {
            let index = r.indices.into_iter().next().expect("one index");
            replace_var(producer_rhs.clone(), iter_var, &index)
        }
        Expr::Access(r) => Expr::Access(ArrayRef {
            array: r.array,
            indices: r
                .indices
                .into_iter()
                .map(|i| substitute_in_expr(i, array, producer_rhs, iter_var))
                .collect(),
        }),
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(substitute_in_expr(*l, array, producer_rhs, iter_var)),
            Box::new(substitute_in_expr(*r, array, producer_rhs, iter_var)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(substitute_in_expr(
            *inner,
            array,
            producer_rhs,
            iter_var,
        ))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| substitute_in_expr(a, array, producer_rhs, iter_var))
                .collect(),
        ),
        other => other,
    }
}

/// Replaces every occurrence of the scalar `var` in `e` by `value`.
fn replace_var(e: Expr, var: &str, value: &Expr) -> Expr {
    match e {
        Expr::Var(n) if n == var => value.clone(),
        Expr::Var(n) => Expr::Var(n),
        Expr::Const(c) => Expr::Const(c),
        Expr::Access(r) => Expr::Access(ArrayRef {
            array: r.array,
            indices: r
                .indices
                .into_iter()
                .map(|i| replace_var(i, var, value))
                .collect(),
        }),
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(replace_var(*l, var, value)),
            Box::new(replace_var(*r, var, value)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(replace_var(*inner, var, value))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| replace_var(a, var, value))
                .collect(),
        ),
    }
}

fn remove_statement(stmts: &mut Vec<Stmt>, label: &str) {
    stmts.retain_mut(|s| match s {
        Stmt::Assign(a) => a.label != label,
        Stmt::For(f) => {
            remove_statement(&mut f.body, label);
            true
        }
        Stmt::If(i) => {
            remove_statement(&mut i.then_branch, label);
            remove_statement(&mut i.else_branch, label);
            true
        }
    });
}

fn is_empty_loop(s: &Stmt) -> bool {
    match s {
        Stmt::For(f) => f.body.is_empty() || f.body.iter().all(is_empty_loop),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A, KERNEL_DOWNSAMPLE};
    use arrayeq_lang::parser::parse_program;

    fn assert_equiv(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::default()).expect("check runs");
        assert!(r.is_equivalent(), "{}", r.summary());
    }

    #[test]
    fn propagating_tmp_of_fig1a_preserves_equivalence() {
        let p = parse_program(&with_size(FIG1_A, 64)).unwrap();
        let t = propagate_array(&p, "tmp").unwrap();
        // tmp disappears from the declarations and the statement count drops.
        assert!(!t.intermediate_arrays().contains(&"tmp".to_string()));
        assert_eq!(t.statement_count(), p.statement_count() - 1);
        assert_equiv(&p, &t);
    }

    #[test]
    fn propagating_the_downsample_buffer() {
        let p = parse_program(KERNEL_DOWNSAMPLE).unwrap();
        let t = propagate_array(&p, "mid").unwrap();
        assert_equiv(&p, &t);
    }

    #[test]
    fn introduce_temp_is_the_inverse_transformation() {
        let p = parse_program(&with_size(FIG1_A, 32)).unwrap();
        let t = introduce_temp(&p, "s3", "fresh").unwrap();
        assert!(t.intermediate_arrays().contains(&"fresh".to_string()));
        assert_eq!(t.statement_count(), p.statement_count() + 1);
        assert_equiv(&p, &t);
        // Round trip back through propagation.
        let back = propagate_array(&t, "fresh").unwrap();
        assert_equiv(&p, &back);
    }

    #[test]
    fn propagation_of_non_intermediates_is_rejected() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        assert!(propagate_array(&p, "A").is_err());
        assert!(propagate_array(&p, "nope").is_err());
        // buf is written with a non-identity index (2k-2): rejected.
        assert!(propagate_array(&p, "buf").is_err());
    }
}
