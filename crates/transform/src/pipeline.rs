//! Random transformation pipelines: chains of correct-by-construction
//! transformations used to produce (original, transformed) pairs for the
//! benchmarks, replacing the manual design effort of the paper's authors.

use crate::algebraic::{commute_statement, reassociate_statement};
use crate::dataflow::propagate_array;
use crate::loops::{fission_loop, fuse_loops, reverse_loop, split_loop, top_level_loops};
use arrayeq_lang::ast::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a transformation pipeline (recorded for reproducibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformStep {
    /// Loop reversal of the i-th top-level loop.
    ReverseLoop(usize),
    /// Loop fission of the i-th top-level loop.
    FissionLoop(usize),
    /// Fusion of the i-th and (i+1)-th top-level loops.
    FuseLoops(usize),
    /// Bound split of the i-th top-level loop at the given point.
    SplitLoop(usize, i64),
    /// Commutation of the operands in the statement with this label.
    Commute(String),
    /// Re-association of the operator chain in the statement with this label.
    Reassociate(String),
    /// Forward propagation (inlining) of the named intermediate array.
    Propagate(String),
}

/// Applies a pseudo-random sequence of up to `steps` legality-checked
/// transformations to `program`.  Steps that do not apply at the chosen
/// location are skipped, so the returned list may be shorter than `steps`.
/// The result is equivalent to the input by construction.
pub fn random_pipeline(
    program: &Program,
    steps: usize,
    seed: u64,
) -> (Program, Vec<TransformStep>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = program.clone();
    let mut applied = Vec::new();
    for _ in 0..steps {
        let loops = top_level_loops(&current);
        let labels: Vec<String> = current.statements().map(|a| a.label.clone()).collect();
        let intermediates = current.intermediate_arrays();
        let choice = rng.gen_range(0..7);
        let attempt: Option<(Program, TransformStep)> = match choice {
            0 if !loops.is_empty() => {
                let i = loops[rng.gen_range(0..loops.len())];
                reverse_loop(&current, i)
                    .ok()
                    .map(|p| (p, TransformStep::ReverseLoop(i)))
            }
            1 if !loops.is_empty() => {
                let i = loops[rng.gen_range(0..loops.len())];
                fission_loop(&current, i)
                    .ok()
                    .map(|p| (p, TransformStep::FissionLoop(i)))
            }
            2 if loops.len() >= 2 => {
                let pos = rng.gen_range(0..loops.len() - 1);
                let i = loops[pos];
                (loops[pos + 1] == i + 1)
                    .then(|| fuse_loops(&current, i).ok())
                    .flatten()
                    .map(|p| (p, TransformStep::FuseLoops(i)))
            }
            3 if !loops.is_empty() => {
                let i = loops[rng.gen_range(0..loops.len())];
                let n = current.define("N").unwrap_or(16);
                let mid = rng.gen_range(1..n.max(2));
                split_loop(&current, i, mid)
                    .ok()
                    .map(|p| (p, TransformStep::SplitLoop(i, mid)))
            }
            4 if !labels.is_empty() => {
                let l = labels[rng.gen_range(0..labels.len())].clone();
                let (p, n) = commute_statement(&current, &l);
                (n > 0).then_some((p, TransformStep::Commute(l)))
            }
            5 if !labels.is_empty() => {
                let l = labels[rng.gen_range(0..labels.len())].clone();
                let (p, n) = reassociate_statement(&current, &l);
                (n > 0).then_some((p, TransformStep::Reassociate(l)))
            }
            6 if !intermediates.is_empty() => {
                let a = intermediates[rng.gen_range(0..intermediates.len())].clone();
                propagate_array(&current, &a)
                    .ok()
                    .map(|p| (p, TransformStep::Propagate(a)))
            }
            _ => None,
        };
        if let Some((p, step)) = attempt {
            // Keep only transformations that preserve the class and def-use
            // validity (e.g. fusing a consumer before its producer would not).
            if arrayeq_lang::classcheck::check_class(&p)
                .map(|r| r.is_ok())
                .unwrap_or(false)
                && arrayeq_lang::defuse::check_def_use(&p)
                    .map(|r| r.is_ok())
                    .unwrap_or(false)
            {
                current = p;
                applied.push(step);
            }
        }
    }
    (current, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_kernel, inputs_for, GeneratorConfig};
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A};
    use arrayeq_lang::interp::Interpreter;
    use arrayeq_lang::parser::parse_program;

    #[test]
    fn random_pipelines_preserve_equivalence_on_fig1a() {
        let p = parse_program(&with_size(FIG1_A, 32)).unwrap();
        for seed in 0..4 {
            let (t, steps) = random_pipeline(&p, 6, seed);
            let r = verify_programs(&p, &t, &CheckOptions::default()).unwrap();
            assert!(
                r.is_equivalent(),
                "seed {seed}, steps {steps:?}:\n{}",
                r.summary()
            );
        }
    }

    #[test]
    fn random_pipelines_preserve_equivalence_on_generated_kernels() {
        let cfg = GeneratorConfig {
            n: 32,
            layers: 3,
            seed: 7,
            ..Default::default()
        };
        let p = generate_kernel(&cfg);
        let (t, steps) = random_pipeline(&p, 8, 3);
        assert!(!steps.is_empty(), "at least one step should apply");
        let r = verify_programs(&p, &t, &CheckOptions::default()).unwrap();
        assert!(r.is_equivalent(), "steps {steps:?}:\n{}", r.summary());
        // Cross-validate with the simulation oracle.
        let inputs = inputs_for(&cfg);
        let o1 = Interpreter::new(&p).run_for_output(&inputs, "OUT").unwrap();
        let o2 = Interpreter::new(&t).run_for_output(&inputs, "OUT").unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn pipelines_are_deterministic_in_the_seed() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        let (t1, s1) = random_pipeline(&p, 5, 42);
        let (t2, s2) = random_pipeline(&p, 5, 42);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }
}
