//! Global loop transformations (reversal, fission, fusion, bound splitting).
//!
//! All transformations operate on top-level loops of a [`Program`] and are
//! correct by construction for programs in the single-assignment class when
//! the usual legality conditions hold (the helpers check the simple ones and
//! refuse otherwise).

use crate::{Result, TransformError};
use arrayeq_lang::ast::*;

/// Returns the indices of the top-level `for` loops of a program.
pub fn top_level_loops(p: &Program) -> Vec<usize> {
    p.body
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Stmt::For(_)).then_some(i))
        .collect()
}

fn loop_at(p: &Program, index: usize) -> Result<&For> {
    match p.body.get(index) {
        Some(Stmt::For(f)) => Ok(f),
        _ => Err(TransformError::NoSuchLocation {
            message: format!("body item {index} is not a top-level for loop"),
        }),
    }
}

/// Extracts constant bounds `(lo, hi_exclusive)` of a unit-stride loop.
fn constant_bounds(p: &Program, f: &For) -> Option<(i64, i64)> {
    use arrayeq_lang::parser::eval_const;
    if f.step != 1 {
        return None;
    }
    let lo = eval_const(&f.init, &p.defines)?;
    let bound = eval_const(&f.cond.rhs, &p.defines)?;
    match f.cond.op {
        CmpOp::Lt => Some((lo, bound)),
        CmpOp::Le => Some((lo, bound + 1)),
        _ => None,
    }
}

/// **Loop reversal**: a unit-stride up-counting loop runs down instead.
/// Legal in the single-assignment class whenever the loop carries no
/// dependence on itself; the caller is responsible for picking such a loop
/// (the def-use checker re-validates the result).
///
/// # Errors
///
/// Returns [`TransformError`] if the indexed statement is not a for loop
/// with constant unit-stride bounds.
pub fn reverse_loop(p: &Program, index: usize) -> Result<Program> {
    let f = loop_at(p, index)?;
    let (lo, hi) = constant_bounds(p, f).ok_or_else(|| TransformError::NotApplicable {
        message: "loop reversal needs constant unit-stride bounds".into(),
    })?;
    let reversed = For {
        var: f.var.clone(),
        init: Expr::Const(hi - 1),
        cond: Cond::new(Expr::var(&f.var), CmpOp::Ge, Expr::Const(lo)),
        step: -1,
        body: f.body.clone(),
    };
    let mut out = p.clone();
    out.body[index] = Stmt::For(reversed);
    Ok(out)
}

/// **Loop fission** (distribution): a loop whose body holds several
/// statements becomes one loop per statement, preserving statement order.
///
/// # Errors
///
/// Returns [`TransformError`] if the loop body has fewer than two statements
/// or contains nested control flow.
pub fn fission_loop(p: &Program, index: usize) -> Result<Program> {
    let f = loop_at(p, index)?;
    if f.body.len() < 2 {
        return Err(TransformError::NotApplicable {
            message: "loop fission needs at least two body statements".into(),
        });
    }
    if !f.body.iter().all(|s| matches!(s, Stmt::Assign(_))) {
        return Err(TransformError::NotApplicable {
            message: "loop fission is only implemented for flat assignment bodies".into(),
        });
    }
    let mut replacement = Vec::with_capacity(f.body.len());
    for s in &f.body {
        replacement.push(Stmt::For(For {
            var: f.var.clone(),
            init: f.init.clone(),
            cond: f.cond.clone(),
            step: f.step,
            body: vec![s.clone()],
        }));
    }
    let mut out = p.clone();
    out.body.splice(index..=index, replacement);
    Ok(out)
}

/// **Loop fusion**: two adjacent top-level loops with identical iterator,
/// bounds and step are merged into one, concatenating their bodies.
///
/// # Errors
///
/// Returns [`TransformError`] if the two loops do not have identical headers.
pub fn fuse_loops(p: &Program, first: usize) -> Result<Program> {
    let f1 = loop_at(p, first)?.clone();
    let f2 = loop_at(p, first + 1)?.clone();
    let same_header =
        f1.var == f2.var && f1.init == f2.init && f1.cond == f2.cond && f1.step == f2.step;
    if !same_header {
        return Err(TransformError::NotApplicable {
            message: "loop fusion needs identical loop headers".into(),
        });
    }
    let fused = For {
        var: f1.var.clone(),
        init: f1.init.clone(),
        cond: f1.cond.clone(),
        step: f1.step,
        body: f1.body.iter().chain(f2.body.iter()).cloned().collect(),
    };
    let mut out = p.clone();
    out.body[first] = Stmt::For(fused);
    out.body.remove(first + 1);
    Ok(out)
}

/// **Bound splitting**: one unit-stride loop `[lo, hi)` becomes two loops
/// `[lo, mid)` and `[mid, hi)` with identical bodies (the transformation
/// applied between Fig. 1(a) and (b) at `mid = 512`).
///
/// # Errors
///
/// Returns [`TransformError`] if the loop does not have constant unit-stride
/// bounds or `mid` is outside them.
pub fn split_loop(p: &Program, index: usize, mid: i64) -> Result<Program> {
    let f = loop_at(p, index)?;
    let (lo, hi) = constant_bounds(p, f).ok_or_else(|| TransformError::NotApplicable {
        message: "bound splitting needs constant unit-stride bounds".into(),
    })?;
    if mid <= lo || mid >= hi {
        return Err(TransformError::NotApplicable {
            message: format!("split point {mid} outside ({lo}, {hi})"),
        });
    }
    // The second copy must not reuse statement labels (labels identify
    // statements in diagnostics); suffix them.
    let relabel = |stmts: &[Stmt]| -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign(a) => Stmt::Assign(Assign {
                    label: format!("{}_hi", a.label),
                    lhs: a.lhs.clone(),
                    rhs: a.rhs.clone(),
                }),
                other => other.clone(),
            })
            .collect()
    };
    let first = For {
        var: f.var.clone(),
        init: Expr::Const(lo),
        cond: Cond::new(Expr::var(&f.var), CmpOp::Lt, Expr::Const(mid)),
        step: 1,
        body: f.body.clone(),
    };
    let second = For {
        var: f.var.clone(),
        init: Expr::Const(mid),
        cond: Cond::new(Expr::var(&f.var), CmpOp::Lt, Expr::Const(hi)),
        step: 1,
        body: relabel(&f.body),
    };
    let mut out = p.clone();
    out.body
        .splice(index..=index, vec![Stmt::For(first), Stmt::For(second)]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A, KERNEL_LIFTING};
    use arrayeq_lang::parser::parse_program;

    fn assert_equiv(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::default()).expect("check runs");
        assert!(r.is_equivalent(), "{}", r.summary());
    }

    #[test]
    fn reversal_preserves_equivalence() {
        let p = parse_program(&with_size(FIG1_A, 64)).unwrap();
        let t = reverse_loop(&p, 0).unwrap();
        assert_equiv(&p, &t);
        // Reversing the already down-counting loop is rejected.
        assert!(reverse_loop(&p, 1).is_err());
    }

    #[test]
    fn fission_and_fusion_are_inverse_and_preserve_equivalence() {
        // The two lifting loops have identical headers (`k = 0; k < N; k++`),
        // and the producer statement precedes the consumer, so fusing them is
        // legal.
        let p = parse_program(KERNEL_LIFTING).unwrap();
        let fused = fuse_loops(&p, 0).expect("identical headers");
        assert_equiv(&p, &fused);
        let split = fission_loop(&fused, 0).unwrap();
        assert_equiv(&p, &split);
    }

    #[test]
    fn bound_split_preserves_equivalence() {
        let p = parse_program(&with_size(FIG1_A, 64)).unwrap();
        let t = split_loop(&p, 0, 17).unwrap();
        assert_equiv(&p, &t);
        assert!(split_loop(&p, 0, 0).is_err());
        assert!(split_loop(&p, 0, 64).is_err());
    }

    #[test]
    fn location_errors_are_reported() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        assert!(matches!(
            reverse_loop(&p, 99),
            Err(TransformError::NoSuchLocation { .. })
        ));
        assert!(fission_loop(&p, 0).is_err(), "single-statement body");
    }
}
