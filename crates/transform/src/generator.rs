//! Synthetic kernel generation for the scaling experiments of Section 6.2.
//!
//! The paper evaluates on in-house multimedia kernels whose "control
//! complexity and ADDG sizes were comparable to real-life application
//! kernels".  Those sources are not available, so this module generates
//! programs with the same *shape*: layered producer/consumer loop nests over
//! intermediate arrays, with affine (possibly strided or reversed) accesses,
//! ending in one output array.  Both the number of statements (ADDG size) and
//! the loop bound `N` are parameters, which is exactly what experiments
//! E5–E9 sweep.

use arrayeq_lang::ast::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated kernel.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Loop bound of every loop (`#define N`).
    pub n: i64,
    /// Number of intermediate "layers" (each layer adds one loop + one
    /// statement between the inputs and the output).
    pub layers: usize,
    /// Number of input arrays.
    pub inputs: usize,
    /// Operands per statement (the length of the addition chain).
    pub fanin: usize,
    /// Number of output arrays.  `1` (the default) produces the classic
    /// single-`OUT` chain; larger values produce a *wide* kernel — a shared
    /// base layer feeding one independent `layers`-deep chain per output
    /// `OUT0..OUTm` — the workload shape the intra-query parallel checker
    /// shards across its worker pool (`--exp pr4`).
    pub outputs: usize,
    /// For wide kernels (`outputs > 1`): the number of structurally
    /// *distinct* chains.  `0` (the default) makes every chain unique;
    /// `d > 0` repeats the same chain structure every `d` outputs through
    /// freshly-named temporaries — the multi-channel idiom (one filter
    /// applied per channel) whose repeated sub-proofs the rename-invariant
    /// tabling keys collapse to a single entry.
    pub distinct_chains: usize,
    /// Enrich right-hand sides with algebraic structure: factored products
    /// (`g·(x + y)`), subtractions, constant coefficients and identity
    /// operands (`+ 0`, `* 1`).  The workload shape of the normalization
    /// scenarios — pairs produced by `transform::algebraic`'s distribution /
    /// subtraction-shuffle / identity-noise rewrites of these kernels need
    /// the extended method's operator algebra to verify.
    pub algebra: bool,
    /// Seed for the deterministic pseudo-random choices.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n: 256,
            layers: 4,
            inputs: 2,
            fanin: 3,
            outputs: 1,
            distinct_chains: 0,
            algebra: false,
            seed: 1,
        }
    }
}

/// Generates a kernel in the restricted class according to `config`.
///
/// Layer 0 reads the input arrays (with stride-2 and shifted affine
/// accesses); every later layer reads the previous layer's array with
/// identity/reversed accesses; the final statement writes the output `OUT`.
/// The result is guaranteed to be in the program class and to pass the
/// def-use check.
pub fn generate_kernel(config: &GeneratorConfig) -> Program {
    if config.outputs > 1 {
        return generate_wide_kernel(config);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n;
    let mut b = ProgramBuilder::new("generated").define("N", n);
    for i in 0..config.inputs {
        b = b.param(format!("IN{i}"));
    }
    b = b.param("OUT");
    b = b.decl("k", vec![]);

    let mut body = Vec::new();
    let mut prev_arrays: Vec<String> = (0..config.inputs).map(|i| format!("IN{i}")).collect();

    let input_names: Vec<String> = (0..config.inputs).map(|i| format!("IN{i}")).collect();
    for layer in 0..config.layers {
        let array = format!("t{layer}");
        b = b.decl(&array, vec![Expr::var("N")]);
        // The first operand chains to the previous layer (keeping the number
        // of output-to-input paths *linear* in the number of statements, as
        // in producer/consumer signal-processing chains); the remaining
        // operands read fresh input data.
        let chain = random_sum(&mut rng, &prev_arrays, layer == 0, 1, n);
        let rest = if config.algebra {
            random_algebraic_sum(
                &mut rng,
                &input_names,
                config.fanin.saturating_sub(1).max(1),
                n,
            )
        } else {
            random_sum(
                &mut rng,
                &input_names,
                true,
                config.fanin.saturating_sub(1).max(1),
                n,
            )
        };
        let rhs = Expr::add(chain, rest);
        body.push(simple_for(
            "k",
            0,
            n,
            1,
            vec![assign1(&format!("s{layer}"), &array, Expr::var("k"), rhs)],
        ));
        prev_arrays = vec![array];
    }

    // Final statement: OUT[k] = last layer (+ one input for good measure).
    let last = prev_arrays[0].clone();
    let final_rhs = Expr::add(
        Expr::access1(&last, Expr::var("k")),
        Expr::access1("IN0", Expr::var("k")),
    );
    body.push(simple_for(
        "k",
        0,
        n,
        1,
        vec![assign1("sout", "OUT", Expr::var("k"), final_rhs)],
    ));

    for s in body {
        b = b.stmt(s);
    }
    b.build()
}

/// The multi-output variant of [`generate_kernel`] (`outputs > 1`): one
/// shared base layer `t0` over the inputs, then per output `OUTj` an
/// independent chain of `layers - 1` intermediate arrays rooted at `t0`.
///
/// The chains are what an intra-query parallel checker shards across
/// workers; the shared base layer gives the workers structurally identical
/// sub-obligations whose proofs flow between them through the
/// (rename-invariant) equivalence tables.
fn generate_wide_kernel(config: &GeneratorConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n;
    let inputs = config.inputs.max(1);
    let mut b = ProgramBuilder::new("generated_wide").define("N", n);
    for i in 0..inputs {
        b = b.param(format!("IN{i}"));
    }
    for j in 0..config.outputs {
        b = b.param(format!("OUT{j}"));
    }
    b = b.decl("k", vec![]);

    let input_names: Vec<String> = (0..inputs).map(|i| format!("IN{i}")).collect();
    let mut body = Vec::new();

    // Shared base layer read by every chain.
    b = b.decl("t0", vec![Expr::var("N")]);
    let base_rhs = random_sum(&mut rng, &input_names, true, config.fanin.max(1), n);
    body.push(simple_for(
        "k",
        0,
        n,
        1,
        vec![assign1("b0", "t0", Expr::var("k"), base_rhs)],
    ));

    for j in 0..config.outputs {
        // Chains of the same class make identical structural choices (their
        // own rng seeded by the class), so with `distinct_chains = d` every
        // d-th output repeats the same computation through fresh
        // temporaries — the repeated-idiom workload for rename-invariant
        // tabling.  `d = 0` keeps every chain unique.
        let class = if config.distinct_chains > 0 {
            j % config.distinct_chains
        } else {
            j
        };
        let mut chain_rng = StdRng::seed_from_u64(config.seed ^ (0x9e37 + class as u64 * 0x85eb));
        let mut prev = "t0".to_owned();
        for layer in 1..config.layers.max(1) {
            let array = format!("t{j}x{layer}");
            b = b.decl(&array, vec![Expr::var("N")]);
            let chain = random_sum(&mut chain_rng, std::slice::from_ref(&prev), false, 1, n);
            let rest = random_sum(
                &mut chain_rng,
                &input_names,
                true,
                config.fanin.saturating_sub(1).max(1),
                n,
            );
            body.push(simple_for(
                "k",
                0,
                n,
                1,
                vec![assign1(
                    &format!("s{j}x{layer}"),
                    &array,
                    Expr::var("k"),
                    Expr::add(chain, rest),
                )],
            ));
            prev = array;
        }
        // The final statement is per-output (it mixes in a rotating input),
        // so even outputs of the same chain class have distinct root
        // obligations — the repeated work sits one reduction below, where
        // the rename-invariant tabling keys pick it up.
        let final_rhs = Expr::add(
            Expr::access1(&prev, Expr::var("k")),
            Expr::access1(format!("IN{}", j % inputs), Expr::var("k")),
        );
        body.push(simple_for(
            "k",
            0,
            n,
            1,
            vec![assign1(
                &format!("o{j}"),
                &format!("OUT{j}"),
                Expr::var("k"),
                final_rhs,
            )],
        ));
    }

    for s in body {
        b = b.stmt(s);
    }
    b.build()
}

/// Builds a `fanin`-term addition chain over the given source arrays.
fn random_sum(
    rng: &mut StdRng,
    sources: &[String],
    sources_are_inputs: bool,
    fanin: usize,
    n: i64,
) -> Expr {
    let mut terms = Vec::new();
    for _t in 0..fanin.max(1) {
        let src = &sources[rng.gen_range(0..sources.len())];
        let idx = if sources_are_inputs {
            // Inputs may be read with strides and shifts (the driver sizes
            // them at 2N + 4 elements).
            match rng.gen_range(0..3) {
                0 => Expr::var("k"),
                1 => Expr::mul(Expr::Const(2), Expr::var("k")),
                _ => Expr::add(Expr::var("k"), Expr::Const(rng.gen_range(0..4))),
            }
        } else {
            // Intermediate layers are read with in-range permutations only.
            match rng.gen_range(0..2) {
                0 => Expr::var("k"),
                _ => Expr::sub(Expr::Const(n - 1), Expr::var("k")), // N-1-k
            }
        };
        let term = Expr::access1(src, idx);
        terms.push(term);
    }
    let mut expr = terms.remove(0);
    for t in terms {
        expr = Expr::add(expr, t);
    }
    expr
}

/// An algebra-rich `fanin`-term chain over input arrays: beyond plain
/// reads it mixes in subtracted terms, constant-scaled reads (`2·x`),
/// factored products (`x·(y + z)`, which `distribute_statement` expands),
/// identity operands (`x·1`) and plain constants — the raw material of the
/// normalization scenarios.  Terms join with `+`/`-` so inverse folding is
/// always exercised.
fn random_algebraic_sum(rng: &mut StdRng, sources: &[String], fanin: usize, n: i64) -> Expr {
    let read = |rng: &mut StdRng| -> Expr {
        let src = &sources[rng.gen_range(0..sources.len())];
        let idx = match rng.gen_range(0..3) {
            0 => Expr::var("k"),
            1 => Expr::mul(Expr::Const(2), Expr::var("k")),
            _ => Expr::add(Expr::var("k"), Expr::Const(rng.gen_range(0..4))),
        };
        Expr::access1(src, idx)
    };
    let _ = n;
    let mut terms = Vec::new();
    for _t in 0..fanin.max(1) {
        let term = match rng.gen_range(0..6) {
            0 => read(rng),
            1 => Expr::mul(Expr::Const(rng.gen_range(2..5)), read(rng)),
            2 => Expr::mul(read(rng), Expr::add(read(rng), read(rng))),
            3 => Expr::mul(read(rng), Expr::Const(1)),
            4 => Expr::Const(rng.gen_range(0..7)),
            _ => read(rng),
        };
        let negate = rng.gen_range(0..3) == 0;
        terms.push((negate, term));
    }
    let (_, head) = terms[0].clone();
    let mut expr = if terms[0].0 {
        Expr::Neg(Box::new(head))
    } else {
        head
    };
    for (negate, t) in terms.into_iter().skip(1) {
        expr = if negate {
            Expr::sub(expr, t)
        } else {
            Expr::add(expr, t)
        };
    }
    expr
}

/// Input data sized for a generated kernel (all inputs `2N + 4` elements,
/// output `N`), for use with the interpreter oracle.
pub fn inputs_for(config: &GeneratorConfig) -> arrayeq_lang::interp::Inputs {
    let mut inputs = arrayeq_lang::interp::Inputs::new();
    for i in 0..config.inputs.max(1) {
        let data: Vec<i64> = (0..(2 * config.n + 4))
            .map(|v| v * 13 + i as i64 * 7 + 1)
            .collect();
        inputs = inputs.array(format!("IN{i}"), data);
    }
    if config.outputs > 1 {
        for j in 0..config.outputs {
            inputs = inputs.output(format!("OUT{j}"), config.n as usize);
        }
        inputs
    } else {
        inputs.output("OUT", config.n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::classcheck::check_class;
    use arrayeq_lang::defuse::check_def_use;
    use arrayeq_lang::interp::Interpreter;

    #[test]
    fn generated_kernels_are_in_the_class_and_pass_def_use() {
        for seed in 0..5 {
            let cfg = GeneratorConfig {
                n: 32,
                layers: 3,
                seed,
                ..Default::default()
            };
            let p = generate_kernel(&cfg);
            assert!(check_class(&p).unwrap().is_ok(), "seed {seed}");
            assert!(check_def_use(&p).unwrap().is_ok(), "seed {seed}");
            // And they actually run.
            let out = Interpreter::new(&p)
                .run_for_output(&inputs_for(&cfg), "OUT")
                .unwrap();
            assert_eq!(out.len(), 32);
            assert!(out.iter().all(|&v| v != Interpreter::UNINIT));
        }
    }

    #[test]
    fn wide_kernels_are_in_class_and_run_per_output() {
        let cfg = GeneratorConfig {
            n: 16,
            layers: 3,
            outputs: 4,
            seed: 9,
            ..Default::default()
        };
        let p = generate_kernel(&cfg);
        assert!(check_class(&p).unwrap().is_ok());
        assert!(check_def_use(&p).unwrap().is_ok());
        assert_eq!(p.output_arrays().len(), 4);
        // shared base + per output (layers-1 chain + final) statements
        assert_eq!(p.statement_count(), 1 + 4 * 3);
        for j in 0..4 {
            let out = Interpreter::new(&p)
                .run_for_output(&inputs_for(&cfg), &format!("OUT{j}"))
                .unwrap();
            assert_eq!(out.len(), 16);
            assert!(out.iter().all(|&v| v != Interpreter::UNINIT));
        }
        // Equivalent to itself, sequentially and in parallel.
        let r = verify_programs(&p, &p, &CheckOptions::default().with_jobs(4)).unwrap();
        assert!(r.is_equivalent(), "{}", r.summary());
    }

    #[test]
    fn generated_kernels_scale_with_the_layer_count() {
        let small = generate_kernel(&GeneratorConfig {
            layers: 2,
            ..Default::default()
        });
        let large = generate_kernel(&GeneratorConfig {
            layers: 8,
            ..Default::default()
        });
        assert_eq!(small.statement_count(), 3);
        assert_eq!(large.statement_count(), 9);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate_kernel(&GeneratorConfig::default());
        let b = generate_kernel(&GeneratorConfig::default());
        assert_eq!(a, b);
        let c = generate_kernel(&GeneratorConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_kernels_are_self_equivalent() {
        let p = generate_kernel(&GeneratorConfig {
            n: 64,
            layers: 3,
            ..Default::default()
        });
        let r = verify_programs(&p, &p, &CheckOptions::default()).unwrap();
        assert!(r.is_equivalent());
    }
}
