//! # arrayeq-transform
//!
//! Source-to-source transformations, error injection and workload generation
//! for exercising the equivalence checker.
//!
//! The paper's designers apply global loop transformations, expression
//! propagations and algebraic transformations *by hand*; the checker then
//! verifies the result.  To reproduce the evaluation without the authors'
//! proprietary multimedia kernels, this crate provides
//!
//! * **correct-by-construction transformations** ([`loops`], [`dataflow`],
//!   [`algebraic`]) that produce transformed variants which *must* check as
//!   equivalent,
//! * **error injectors** ([`errors`]) that plant the typical index /
//!   operand / operator bugs the diagnostics of Section 6.1 are meant to
//!   localise,
//! * a **fault-injection harness** ([`mutate`]) that enumerates off-by-one
//!   bounds, swapped non-commutative operands, wrong coefficients and
//!   dropped statements over the whole corpus, curated into
//!   ground-truth-inequivalent pairs for the witness engine's self-test, and
//! * **synthetic kernel generators** ([`generator`]) whose ADDG size, loop
//!   depth and loop bounds can be swept for the scaling experiments of
//!   Section 6.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebraic;
pub mod dataflow;
pub mod errors;
pub mod generator;
pub mod loops;
pub mod mutate;
pub mod pipeline;

pub use pipeline::{random_pipeline, TransformStep};

use std::fmt;

/// Errors produced by the transformation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The requested transformation does not apply at the given location.
    NotApplicable {
        /// Which transformation and why it does not apply.
        message: String,
    },
    /// The location (loop index, statement label, ...) does not exist.
    NoSuchLocation {
        /// Description of the missing location.
        message: String,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotApplicable { message } => {
                write!(f, "transformation not applicable: {message}")
            }
            TransformError::NoSuchLocation { message } => write!(f, "no such location: {message}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TransformError>;
