//! Fault injection at corpus scale: a mutation generator producing
//! *known-inequivalent* program pairs.
//!
//! [`errors`](crate::errors) plants one hand-chosen bug at one location; this
//! module instead *enumerates* the classic transformation slips over a whole
//! program — off-by-one loop bounds, swapped non-commutative operands, wrong
//! index coefficients, dropped statements — and curates the results into a
//! [`fault_corpus`]: pairs that stay inside the program class, pass the
//! def-use pre-check (so the equivalence checker proper must find the bug)
//! and are *ground-truth inequivalent*, established independently of the
//! checker by executing both programs on deterministic input fills.
//!
//! The corpus is what the witness engine's end-to-end self-test runs on:
//! for every case the checker must answer `NotEquivalent` and the witness
//! replay must exhibit two different values at a sampled point of the
//! failing domain.

use crate::Result as TransformResult;
use crate::TransformError;
use arrayeq_lang::ast::*;
use arrayeq_lang::classcheck::check_class;
use arrayeq_lang::corpus::{
    with_size, FIG1_A, FIG1_B, KERNELS, KERNEL_FACTORED_IDENT, KERNEL_IDENT_A, KERNEL_SUB_SHUFFLE_A,
};
use arrayeq_lang::defuse::check_def_use;
use arrayeq_lang::interp::{standard_inputs, Interpreter};
use arrayeq_lang::parser::parse_program;
use std::fmt;

/// One mutation the generator can apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Tighten the continuation condition of the `loop_index`-th loop
    /// (pre-order) by one iteration — the classic off-by-one bound.
    OffByOneBound {
        /// Pre-order index of the loop to mutate.
        loop_index: usize,
    },
    /// Bump the initial value of the `loop_index`-th loop by one step,
    /// skipping the first iteration.
    OffByOneStart {
        /// Pre-order index of the loop to mutate.
        loop_index: usize,
    },
    /// Swap the operands of the first non-commutative binary operator
    /// (`-` or `/`) in the labelled statement's right-hand side.
    SwapOperands {
        /// Label of the statement to mutate.
        label: String,
    },
    /// Swap the first two arguments of the first function call in the
    /// labelled statement (uninterpreted functions are not commutative).
    SwapCallArguments {
        /// Label of the statement to mutate.
        label: String,
    },
    /// Replace the first constant index coefficient `c` (with `|c| ≥ 2`) of a
    /// read in the labelled statement by `c − 1` (e.g. `buf[2*k]` → `buf[k]`,
    /// the Fig. 1(d) bug).
    WrongCoefficient {
        /// Label of the statement to mutate.
        label: String,
    },
    /// Remove the labelled statement entirely.  Only applicable when its
    /// array has another defining statement, so the mutant keeps a comparable
    /// interface and the bug manifests as a partially-undefined output.
    DropStatement {
        /// Label of the statement to remove.
        label: String,
    },
    /// Break the first factored product `x*(y+z)` (or `(y+z)*x`) in the
    /// labelled statement into `x*y + z` — a distribution applied to only
    /// one summand, the classic slip when expanding by hand.  The extended
    /// method's one-level distribution must reject the pair.
    BreakDistribution {
        /// Label of the statement to mutate.
        label: String,
    },
    /// Drop the first identity operand (`e + 0` or `e * 1`) of the labelled
    /// statement *and* perturb the surviving sibling's first read by one
    /// index position.  Dropping the identity alone is equivalence-
    /// preserving (exactly what identity elimination normalises away), so
    /// the mutation hides a real bug under the cosmetic change.
    DropIdentityOperand {
        /// Label of the statement to mutate.
        label: String,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::OffByOneBound { loop_index } => write!(f, "off-by-one-bound@L{loop_index}"),
            Mutation::OffByOneStart { loop_index } => write!(f, "off-by-one-start@L{loop_index}"),
            Mutation::SwapOperands { label } => write!(f, "swap-operands@{label}"),
            Mutation::SwapCallArguments { label } => write!(f, "swap-call-args@{label}"),
            Mutation::WrongCoefficient { label } => write!(f, "wrong-coefficient@{label}"),
            Mutation::DropStatement { label } => write!(f, "drop-statement@{label}"),
            Mutation::BreakDistribution { label } => write!(f, "break-distribution@{label}"),
            Mutation::DropIdentityOperand { label } => write!(f, "drop-identity@{label}"),
        }
    }
}

/// Applies a mutation to a program.
///
/// # Errors
///
/// [`TransformError::NoSuchLocation`] when the loop index / label does not
/// exist, [`TransformError::NotApplicable`] when the statement's shape does
/// not admit the mutation.
pub fn apply_mutation(p: &Program, m: &Mutation) -> TransformResult<Program> {
    let mut out = p.clone();
    let applied = match m {
        Mutation::OffByOneBound { loop_index } => {
            mutate_loop(&mut out.body, *loop_index, &mut |f| {
                let delta = match f.cond.op {
                    CmpOp::Lt | CmpOp::Le => -1,
                    CmpOp::Gt | CmpOp::Ge => 1,
                    _ => return false,
                };
                f.cond.rhs = Expr::add(f.cond.rhs.clone(), Expr::Const(delta));
                true
            })
        }
        Mutation::OffByOneStart { loop_index } => {
            mutate_loop(&mut out.body, *loop_index, &mut |f| {
                f.init = Expr::add(f.init.clone(), Expr::Const(f.step));
                true
            })
        }
        Mutation::SwapOperands { label } => mutate_stmt(&mut out.body, label, &mut |a| {
            swap_noncommutative(&mut a.rhs)
        }),
        Mutation::SwapCallArguments { label } => {
            mutate_stmt(&mut out.body, label, &mut |a| swap_call_args(&mut a.rhs))
        }
        Mutation::WrongCoefficient { label } => {
            mutate_stmt(&mut out.body, label, &mut |a| scale_down_coeff(&mut a.rhs))
        }
        Mutation::BreakDistribution { label } => mutate_stmt(&mut out.body, label, &mut |a| {
            break_distribution(&mut a.rhs)
        }),
        Mutation::DropIdentityOperand { label } => mutate_stmt(&mut out.body, label, &mut |a| {
            drop_identity_and_perturb(&mut a.rhs)
        }),
        Mutation::DropStatement { label } => {
            let Some(target) = p.statement(label) else {
                return Err(TransformError::NoSuchLocation {
                    message: format!("no statement labelled `{label}`"),
                });
            };
            let array = target.lhs.array.clone();
            let other_defs = p
                .statements()
                .filter(|a| a.lhs.array == array && a.label != *label)
                .count();
            if other_defs == 0 {
                return Err(TransformError::NotApplicable {
                    message: format!(
                        "`{label}` is the only definition of `{array}`; dropping it would \
                         remove the array from the interface"
                    ),
                });
            }
            drop_stmt(&mut out.body, label);
            Some(true)
        }
    };
    match applied {
        None => Err(TransformError::NoSuchLocation {
            message: format!("mutation target of {m} does not exist"),
        }),
        Some(false) => Err(TransformError::NotApplicable {
            message: format!("{m} does not apply"),
        }),
        Some(true) => Ok(out),
    }
}

/// Enumerates every mutation that structurally applies to `p`, with the
/// mutated program.
pub fn enumerate_mutations(p: &Program) -> Vec<(Mutation, Program)> {
    let mut candidates = Vec::new();
    let n_loops = count_loops(&p.body);
    for i in 0..n_loops {
        candidates.push(Mutation::OffByOneBound { loop_index: i });
        candidates.push(Mutation::OffByOneStart { loop_index: i });
    }
    for a in p.statements() {
        for m in [
            Mutation::SwapOperands {
                label: a.label.clone(),
            },
            Mutation::SwapCallArguments {
                label: a.label.clone(),
            },
            Mutation::WrongCoefficient {
                label: a.label.clone(),
            },
            Mutation::DropStatement {
                label: a.label.clone(),
            },
            Mutation::BreakDistribution {
                label: a.label.clone(),
            },
            Mutation::DropIdentityOperand {
                label: a.label.clone(),
            },
        ] {
            candidates.push(m);
        }
    }
    candidates
        .into_iter()
        .filter_map(|m| apply_mutation(p, &m).ok().map(|q| (m, q)))
        .filter(|(_, q)| q != p)
        .collect()
}

/// One curated fault-injection case: a program, a mutation, and the mutant —
/// guaranteed in-class, def-use-clean and *observably* inequivalent (the two
/// programs produce different outputs on a deterministic input fill).
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// `"<program>-<mutation>"`, unique within the corpus.
    pub name: String,
    /// The unmutated program.
    pub original: Program,
    /// The mutated program.
    pub mutant: Program,
    /// The mutation that was applied.
    pub mutation: Mutation,
}

/// Input-fill seeds used for the ground-truth simulation filter (and reused
/// by the witness replay).
pub const GROUND_TRUTH_SEEDS: [u64; 2] = [1, 2];

/// Builds the fault-injection corpus over the standard program corpus.
///
/// Every enumerated mutant is kept only if
///
/// 1. it still parses the class and def-use pre-checks of Fig. 6 (so the
///    equivalence checker proper — not a front-end guard — must find the
///    bug), and
/// 2. executing original and mutant on the deterministic
///    [`standard_inputs`] fills shows *different* output values (ground
///    truth inequivalence, established by simulation, independent of the
///    checker under test).
///
/// The result is deterministic: no randomness beyond the fixed seeds.
pub fn fault_corpus() -> Vec<FaultCase> {
    let sources: Vec<(&str, String)> = vec![
        ("fig1a", with_size(FIG1_A, 64)),
        // Fig. 1(b) keeps its native size: its split output definitions make
        // dropped-statement faults detectable as output-domain mismatches.
        ("fig1b", FIG1_B.to_owned()),
        ("downsample", with_size(kernel("downsample"), 64)),
        ("lifting", with_size(kernel("lifting"), 64)),
        ("sad_tree", with_size(kernel("sad_tree"), 64)),
        ("matvec", with_size(kernel("matvec"), 64)),
        ("recurrence", with_size(kernel("recurrence"), 64)),
        // Hosts for the distribution / identity fault categories (native
        // sizes: their shapes carry extra `#define`s `with_size` ignores).
        ("factored", KERNEL_FACTORED_IDENT.to_owned()),
        ("subshuffle", KERNEL_SUB_SHUFFLE_A.to_owned()),
        ("identfold", KERNEL_IDENT_A.to_owned()),
    ];
    let mut corpus = Vec::new();
    for (pname, src) in &sources {
        let original = parse_program(src).expect("corpus program parses");
        corpus.extend(curated_mutants(pname, &original));
    }
    corpus
}

/// Enumerates the mutations of one program and curates them with the
/// [`fault_corpus`] filters (front-end checks pass, outputs observably
/// differ under simulation).  Public so property tests can build fault
/// cases over *generated* kernels too.
pub fn curated_mutants(name: &str, original: &Program) -> Vec<FaultCase> {
    enumerate_mutations(original)
        .into_iter()
        .filter(|(_, mutant)| passes_frontend(mutant))
        .filter(|(_, mutant)| observably_different(original, mutant))
        .map(|(mutation, mutant)| FaultCase {
            name: format!("{name}-{mutation}"),
            original: original.clone(),
            mutant,
            mutation,
        })
        .collect()
}

fn kernel(name: &str) -> &'static str {
    KERNELS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("known kernel")
}

fn passes_frontend(p: &Program) -> bool {
    check_class(p).map(|r| r.is_ok()).unwrap_or(false)
        && check_def_use(p).map(|r| r.is_ok()).unwrap_or(false)
}

/// Ground truth: do the two programs produce different outputs on at least
/// one deterministic input fill?  Runs that fail (out-of-bounds reads after a
/// bound mutation, …) disqualify the mutant — the corpus only keeps bugs the
/// checker must find by reasoning, not by crashing.
fn observably_different(a: &Program, b: &Program) -> bool {
    let mut any_diff = false;
    for seed in GROUND_TRUTH_SEEDS {
        let inputs = standard_inputs(a, seed);
        let (Ok((ma, _)), Ok((mb, _))) = (
            Interpreter::new(a).run(&inputs),
            Interpreter::new(b).run(&inputs),
        ) else {
            return false;
        };
        for out in a.output_arrays() {
            match (ma.array(&out), mb.array(&out)) {
                (Some(x), Some(y)) => {
                    if x != y {
                        any_diff = true;
                    }
                }
                _ => return false,
            }
        }
    }
    any_diff
}

fn count_loops(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        match s {
            Stmt::For(f) => {
                n += 1 + count_loops(&f.body);
            }
            Stmt::If(i) => {
                n += count_loops(&i.then_branch) + count_loops(&i.else_branch);
            }
            Stmt::Assign(_) => {}
        }
    }
    n
}

/// Applies `f` to the `target`-th loop in pre-order; `None` when the index is
/// out of range, otherwise whether `f` reported success.
fn mutate_loop(
    stmts: &mut [Stmt],
    target: usize,
    f: &mut dyn FnMut(&mut For) -> bool,
) -> Option<bool> {
    fn walk(
        stmts: &mut [Stmt],
        next: &mut usize,
        target: usize,
        f: &mut dyn FnMut(&mut For) -> bool,
    ) -> Option<bool> {
        for s in stmts {
            match s {
                Stmt::For(l) => {
                    if *next == target {
                        return Some(f(l));
                    }
                    *next += 1;
                    if let Some(r) = walk(&mut l.body, next, target, f) {
                        return Some(r);
                    }
                }
                Stmt::If(i) => {
                    if let Some(r) = walk(&mut i.then_branch, next, target, f) {
                        return Some(r);
                    }
                    if let Some(r) = walk(&mut i.else_branch, next, target, f) {
                        return Some(r);
                    }
                }
                Stmt::Assign(_) => {}
            }
        }
        None
    }
    let mut next = 0;
    walk(stmts, &mut next, target, f)
}

/// Applies `f` to the assignment labelled `label`; `None` when the label does
/// not exist.
fn mutate_stmt(
    stmts: &mut [Stmt],
    label: &str,
    f: &mut dyn FnMut(&mut Assign) -> bool,
) -> Option<bool> {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                if a.label == label {
                    return Some(f(a));
                }
            }
            Stmt::For(l) => {
                if let Some(r) = mutate_stmt(&mut l.body, label, f) {
                    return Some(r);
                }
            }
            Stmt::If(i) => {
                if let Some(r) = mutate_stmt(&mut i.then_branch, label, f) {
                    return Some(r);
                }
                if let Some(r) = mutate_stmt(&mut i.else_branch, label, f) {
                    return Some(r);
                }
            }
        }
    }
    None
}

fn drop_stmt(stmts: &mut Vec<Stmt>, label: &str) {
    stmts.retain_mut(|s| match s {
        Stmt::Assign(a) => a.label != label,
        Stmt::For(l) => {
            drop_stmt(&mut l.body, label);
            true
        }
        Stmt::If(i) => {
            drop_stmt(&mut i.then_branch, label);
            drop_stmt(&mut i.else_branch, label);
            true
        }
    });
}

/// Swaps the operands of the first `-` or `/` whose operands differ.
fn swap_noncommutative(e: &mut Expr) -> bool {
    match e {
        Expr::Bin(op @ (BinOp::Sub | BinOp::Div), l, r) if l != r => {
            let _ = op;
            std::mem::swap(l, r);
            true
        }
        Expr::Bin(_, l, r) => swap_noncommutative(l) || swap_noncommutative(r),
        Expr::Neg(inner) => swap_noncommutative(inner),
        Expr::Call(_, _) => false, // handled by SwapCallArguments
        Expr::Const(_) | Expr::Var(_) | Expr::Access(_) => false,
    }
}

/// Swaps the first two arguments of the first call whose arguments differ.
fn swap_call_args(e: &mut Expr) -> bool {
    match e {
        Expr::Call(_, args) if args.len() >= 2 && args[0] != args[1] => {
            args.swap(0, 1);
            true
        }
        Expr::Bin(_, l, r) => swap_call_args(l) || swap_call_args(r),
        Expr::Neg(inner) => swap_call_args(inner),
        _ => false,
    }
}

/// Replaces the first `Const(c) * x` / `x * Const(c)` (|c| ≥ 2) inside a read
/// index by the same product with `c − 1`.
fn scale_down_coeff(e: &mut Expr) -> bool {
    fn in_index(e: &mut Expr) -> bool {
        match e {
            Expr::Bin(BinOp::Mul, l, r) => {
                if let Expr::Const(c) = **l {
                    if c.abs() >= 2 {
                        **l = Expr::Const(c - 1);
                        return true;
                    }
                }
                if let Expr::Const(c) = **r {
                    if c.abs() >= 2 {
                        **r = Expr::Const(c - 1);
                        return true;
                    }
                }
                in_index(l) || in_index(r)
            }
            Expr::Bin(_, l, r) => in_index(l) || in_index(r),
            Expr::Neg(inner) => in_index(inner),
            _ => false,
        }
    }
    match e {
        Expr::Access(r) => r.indices.iter_mut().any(in_index),
        Expr::Bin(_, l, r) => scale_down_coeff(l) || scale_down_coeff(r),
        Expr::Neg(inner) => scale_down_coeff(inner),
        Expr::Call(_, args) => args.iter_mut().any(scale_down_coeff),
        Expr::Const(_) | Expr::Var(_) => false,
    }
}

/// Rewrites the first `x*(y+z)` / `(y+z)*x` into `x*y + z`.
fn break_distribution(e: &mut Expr) -> bool {
    match e {
        Expr::Bin(BinOp::Mul, l, r) => {
            if let Expr::Bin(BinOp::Add, y, z) = (**r).clone() {
                *e = Expr::add(Expr::mul((**l).clone(), *y), *z);
                return true;
            }
            if let Expr::Bin(BinOp::Add, y, z) = (**l).clone() {
                *e = Expr::add(Expr::mul(*y, (**r).clone()), *z);
                return true;
            }
            break_distribution(l) || break_distribution(r)
        }
        Expr::Bin(_, l, r) => break_distribution(l) || break_distribution(r),
        Expr::Neg(inner) => break_distribution(inner),
        Expr::Call(_, args) => args.iter_mut().any(break_distribution),
        Expr::Const(_) | Expr::Var(_) | Expr::Access(_) => false,
    }
}

/// Replaces the first `e + 0` / `0 + e` / `e * 1` / `1 * e` by `e` with its
/// first array read shifted one index position — cosmetic identity removal
/// hiding a genuine off-by-one.
fn drop_identity_and_perturb(e: &mut Expr) -> bool {
    fn try_drop(e: &mut Expr) -> bool {
        let replacement = match e {
            Expr::Bin(BinOp::Add, l, r) => {
                if matches!(**r, Expr::Const(0)) {
                    Some((**l).clone())
                } else if matches!(**l, Expr::Const(0)) {
                    Some((**r).clone())
                } else {
                    None
                }
            }
            Expr::Bin(BinOp::Mul, l, r) => {
                if matches!(**r, Expr::Const(1)) {
                    Some((**l).clone())
                } else if matches!(**l, Expr::Const(1)) {
                    Some((**r).clone())
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(mut kept) = replacement {
            if perturb_first_read(&mut kept) {
                *e = kept;
                return true;
            }
            return false; // no read to perturb: dropping alone is equivalent
        }
        match e {
            Expr::Bin(_, l, r) => try_drop(l) || try_drop(r),
            Expr::Neg(inner) => try_drop(inner),
            Expr::Call(_, args) => args.iter_mut().any(try_drop),
            _ => false,
        }
    }
    try_drop(e)
}

/// Bumps the first array read's first index by one.
fn perturb_first_read(e: &mut Expr) -> bool {
    match e {
        Expr::Access(a) => match a.indices.first_mut() {
            Some(first) => {
                *first = Expr::add(first.clone(), Expr::Const(1));
                true
            }
            None => false,
        },
        Expr::Bin(_, l, r) => perturb_first_read(l) || perturb_first_read(r),
        Expr::Neg(inner) => perturb_first_read(inner),
        Expr::Call(_, args) => args.iter_mut().any(perturb_first_read),
        Expr::Const(_) | Expr::Var(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_covers_every_mutation_kind() {
        let corpus = fault_corpus();
        assert!(corpus.len() >= 8, "got {} cases", corpus.len());
        let has = |f: &dyn Fn(&Mutation) -> bool| corpus.iter().any(|c| f(&c.mutation));
        assert!(has(&|m| matches!(
            m,
            Mutation::OffByOneBound { .. } | Mutation::OffByOneStart { .. }
        )));
        assert!(has(&|m| matches!(
            m,
            Mutation::SwapOperands { .. } | Mutation::SwapCallArguments { .. }
        )));
        assert!(has(&|m| matches!(m, Mutation::WrongCoefficient { .. })));
        assert!(has(&|m| matches!(m, Mutation::DropStatement { .. })));
        assert!(has(&|m| matches!(m, Mutation::BreakDistribution { .. })));
        assert!(has(&|m| matches!(m, Mutation::DropIdentityOperand { .. })));
        // Names are unique.
        let mut names: Vec<&str> = corpus.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn corpus_members_pass_the_frontend_and_differ_observably() {
        for case in fault_corpus() {
            assert!(passes_frontend(&case.mutant), "{}", case.name);
            assert!(
                observably_different(&case.original, &case.mutant),
                "{}",
                case.name
            );
        }
    }

    #[test]
    fn wrong_coefficient_reproduces_the_fig1d_style_bug() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        let m = Mutation::WrongCoefficient { label: "s3".into() };
        let q = apply_mutation(&p, &m).unwrap();
        // s3: C[k] = tmp[k] + buf[2*k]  →  buf[1*k]
        let s3 = q.statement("s3").unwrap();
        let reads = s3.rhs.reads();
        assert!(reads
            .iter()
            .any(|r| r.array == "buf" && format!("{:?}", r.indices[0]).contains("Const(1)")));
    }

    #[test]
    fn break_distribution_expands_only_one_summand() {
        let p = parse_program(KERNEL_FACTORED_IDENT).unwrap();
        let m = Mutation::BreakDistribution { label: "f1".into() };
        let q = apply_mutation(&p, &m).unwrap();
        // f1: C[k] = G[k] * (A[k] + B[2*k]) + 0  →  G[k]*A[k] + B[2*k] + 0
        let reads: Vec<&str> = q
            .statement("f1")
            .unwrap()
            .rhs
            .reads()
            .iter()
            .map(|r| r.array.as_str())
            .collect();
        assert_eq!(reads, vec!["G", "A", "B"]);
        assert!(
            observably_different(&p, &q),
            "broken distribution is a real bug"
        );
    }

    #[test]
    fn drop_identity_perturbs_the_surviving_sibling() {
        let p = parse_program(KERNEL_IDENT_A).unwrap();
        let m = Mutation::DropIdentityOperand { label: "i1".into() };
        let q = apply_mutation(&p, &m).unwrap();
        assert_ne!(p, q);
        // The `+ 0` is gone and the sibling read shifted: X[k] → X[k + 1].
        let i1 = q.statement("i1").unwrap();
        let x = i1.rhs.reads()[0].clone();
        assert_eq!(x.array, "X");
        assert!(format!("{:?}", x.indices[0]).contains("Const(1)"));
        assert!(observably_different(&p, &q));
        // Dropping the identity *without* the perturbation stays equivalent —
        // the whole point of identity elimination — so a rhs with no reads
        // next to its identity is NotApplicable rather than a silent no-op.
        let only_const = parse_program(
            "#define N 8
void f(int A[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = 7 + 0; }",
        )
        .unwrap();
        assert!(matches!(
            apply_mutation(
                &only_const,
                &Mutation::DropIdentityOperand { label: "s1".into() }
            ),
            Err(TransformError::NotApplicable { .. })
        ));
    }

    #[test]
    fn drop_statement_requires_another_definition() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        // s3 is the only definition of C: dropping must be rejected.
        assert!(matches!(
            apply_mutation(&p, &Mutation::DropStatement { label: "s3".into() }),
            Err(TransformError::NotApplicable { .. })
        ));
        // Fig. 1(b) has two definitions of C.
        let b = parse_program(FIG1_B).unwrap();
        let q = apply_mutation(&b, &Mutation::DropStatement { label: "t3".into() }).unwrap();
        assert!(q.statement("t3").is_none());
        assert!(q.statement("t4").is_some());
    }

    #[test]
    fn off_by_one_bound_changes_the_iteration_count() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        let q = apply_mutation(&p, &Mutation::OffByOneBound { loop_index: 2 }).unwrap();
        assert_ne!(p, q);
        // The mutated final loop leaves C[15] unwritten.
        let inputs = standard_inputs(&p, 1);
        let ca = Interpreter::new(&p).run_for_output(&inputs, "C").unwrap();
        let cb = Interpreter::new(&q).run_for_output(&inputs, "C").unwrap();
        assert_ne!(ca[15], cb[15]);
        assert_eq!(cb[15], Interpreter::UNINIT);
    }

    #[test]
    fn bad_locations_are_reported() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        assert!(matches!(
            apply_mutation(&p, &Mutation::OffByOneBound { loop_index: 99 }),
            Err(TransformError::NoSuchLocation { .. })
        ));
        assert!(matches!(
            apply_mutation(&p, &Mutation::SwapOperands { label: "zz".into() }),
            Err(TransformError::NoSuchLocation { .. })
        ));
    }
}
