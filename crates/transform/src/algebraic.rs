//! Global algebraic data-flow transformations: commutation and
//! re-association of associative/commutative operators (Section 4).

use arrayeq_lang::ast::*;

/// Swaps the operands of every `+` and `*` in the right-hand side of the
/// statement with the given label (commutativity).  Returns the transformed
/// program and how many operator applications were swapped.
pub fn commute_statement(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| commute_expr(e, &mut count));
    (out, count)
}

/// Rotates every left-leaning `+`/`*` chain in the statement's right-hand
/// side: `(a ⊕ b) ⊕ c` becomes `a ⊕ (b ⊕ c)` (associativity).  Returns the
/// transformed program and how many rotations were applied.
pub fn reassociate_statement(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| rotate_right(e, &mut count));
    (out, count)
}

fn map_rhs(p: &Program, label: &str, f: &mut dyn FnMut(Expr) -> Expr) -> Program {
    let mut out = p.clone();
    rewrite_stmts(&mut out.body, label, f);
    out
}

fn rewrite_stmts(stmts: &mut [Stmt], label: &str, f: &mut dyn FnMut(Expr) -> Expr) {
    for s in stmts {
        match s {
            Stmt::Assign(a) if a.label == label => {
                a.rhs = f(a.rhs.clone());
            }
            Stmt::Assign(_) => {}
            Stmt::For(fl) => rewrite_stmts(&mut fl.body, label, f),
            Stmt::If(i) => {
                rewrite_stmts(&mut i.then_branch, label, f);
                rewrite_stmts(&mut i.else_branch, label, f);
            }
        }
    }
}

fn is_ac(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul)
}

fn commute_expr(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Bin(op, l, r) if is_ac(op) => {
            *count += 1;
            Expr::Bin(
                op,
                Box::new(commute_expr(*r, count)),
                Box::new(commute_expr(*l, count)),
            )
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(commute_expr(*l, count)),
            Box::new(commute_expr(*r, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(commute_expr(*inner, count))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter().map(|a| commute_expr(a, count)).collect(),
        ),
        other => other,
    }
}

fn rotate_right(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Bin(op, l, r) if is_ac(op) => {
            let l = rotate_right(*l, count);
            let r = rotate_right(*r, count);
            // (a op b) op c  ->  a op (b op c)
            if let Expr::Bin(inner_op, a, b) = l {
                if inner_op == op {
                    *count += 1;
                    return Expr::Bin(op, a, Box::new(Expr::Bin(op, b, Box::new(r))));
                }
                return Expr::Bin(op, Box::new(Expr::Bin(inner_op, a, b)), Box::new(r));
            }
            Expr::Bin(op, Box::new(l), Box::new(r))
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(rotate_right(*l, count)),
            Box::new(rotate_right(*r, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(rotate_right(*inner, count))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter().map(|a| rotate_right(a, count)).collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A, KERNEL_FIR5, KERNEL_MATVEC};
    use arrayeq_lang::parser::parse_program;

    fn assert_equiv(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::default()).expect("check runs");
        assert!(r.is_equivalent(), "{}", r.summary());
    }

    fn assert_not_equiv_basic(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::basic()).expect("check runs");
        assert!(!r.is_equivalent());
    }

    #[test]
    fn commuting_additions_preserves_equivalence_only_with_the_extended_method() {
        let p = parse_program(&with_size(FIG1_A, 32)).unwrap();
        let (t, swapped) = commute_statement(&p, "s3");
        assert!(swapped >= 1);
        assert_equiv(&p, &t);
        assert_not_equiv_basic(&p, &t);
    }

    #[test]
    fn reassociating_fir_taps_preserves_equivalence() {
        let p = parse_program(KERNEL_FIR5).unwrap();
        let (t, rotated) = reassociate_statement(&p, "f1");
        assert!(rotated >= 1);
        assert_equiv(&p, &t);
    }

    #[test]
    fn combined_commutation_and_reassociation() {
        let p = parse_program(KERNEL_MATVEC).unwrap();
        let (t1, _) = reassociate_statement(&p, "v1");
        let (t2, _) = commute_statement(&t1, "v1");
        assert_equiv(&p, &t2);
    }

    #[test]
    fn unknown_label_is_a_no_op() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        let (t, n) = commute_statement(&p, "does_not_exist");
        assert_eq!(n, 0);
        assert_eq!(p, t);
    }
}
