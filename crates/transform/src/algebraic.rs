//! Global algebraic data-flow transformations: commutation and
//! re-association of associative/commutative operators (Section 4), plus
//! the wider rewrites the normalization subsystem verifies — one-level
//! distribution of `*` over `+`/`-`, subtraction shuffling, and
//! identity/constant noise insertion.

use arrayeq_lang::ast::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Swaps the operands of every `+` and `*` in the right-hand side of the
/// statement with the given label (commutativity).  Returns the transformed
/// program and how many operator applications were swapped.
pub fn commute_statement(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| commute_expr(e, &mut count));
    (out, count)
}

/// Rotates every left-leaning `+`/`*` chain in the statement's right-hand
/// side: `(a ⊕ b) ⊕ c` becomes `a ⊕ (b ⊕ c)` (associativity).  Returns the
/// transformed program and how many rotations were applied.
pub fn reassociate_statement(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| rotate_right(e, &mut count));
    (out, count)
}

/// Distributes every `x * (y ± z)` (and `(y ± z) * x`) in the statement's
/// right-hand side one level: `x*(y+z)` becomes `x*y + x*z`, `x*(y-z)`
/// becomes `x*y - x*z`.  Returns the transformed program and how many
/// products were expanded.  The inverse direction (factoring) is what the
/// extended method's one-level distribution re-normalises.
pub fn distribute_statement(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| distribute_expr(e, &mut count));
    (out, count)
}

/// Distributes every applicable product in *every* statement.
pub fn distribute_program(p: &Program) -> (Program, usize) {
    let mut out = p.clone();
    let mut count = 0;
    let labels: Vec<String> = p.statements().map(|a| a.label.clone()).collect();
    for label in labels {
        let (next, n) = distribute_statement(&out, &label);
        out = next;
        count += n;
    }
    (out, count)
}

/// Rewrites the additive chain of the statement's right-hand side with its
/// terms rotated by one position, signs preserved — `a - b + c` becomes
/// `c + a - b` — so the subtraction lands elsewhere in the chain.  Returns
/// the transformed program and `1` when a rotation was applied (`0` when
/// the chain has fewer than two terms).
pub fn shuffle_subtractions(p: &Program, label: &str) -> (Program, usize) {
    let mut count = 0;
    let out = map_rhs(p, label, &mut |e| rotate_additive_chain(e, &mut count));
    (out, count)
}

/// Sprinkles *identity noise* over every statement's right-hand side:
/// deterministic (seeded) insertion of `+ 0` tails, `* 1` wrappers around
/// array reads, and constants split as `(c - 1) + 1`.  The result is
/// functionally identical by the `+`/`*` identities — exactly what the
/// extended method's identity elimination and constant folding normalise
/// away (the basic method rejects the pair).  Returns the program and the
/// number of insertions.
pub fn insert_identity_noise(p: &Program, seed: u64) -> (Program, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = p.clone();
    let mut count = 0;
    let labels: Vec<String> = p.statements().map(|a| a.label.clone()).collect();
    for label in labels {
        out = map_rhs(&out, &label, &mut |e| {
            let mut noised = noise_expr(e, &mut rng, &mut count);
            // A `+ 0` tail on roughly every second statement.
            if rng.gen_range(0..2) == 0 {
                count += 1;
                noised = Expr::add(noised, Expr::Const(0));
            }
            noised
        });
    }
    (out, count)
}

fn distribute_expr(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Bin(BinOp::Mul, l, r) => {
            let l = distribute_expr(*l, count);
            let r = distribute_expr(*r, count);
            let split = |e: &Expr| -> Option<(BinOp, Expr, Expr)> {
                match e {
                    Expr::Bin(op @ (BinOp::Add | BinOp::Sub), a, b) => {
                        Some((*op, (**a).clone(), (**b).clone()))
                    }
                    _ => None,
                }
            };
            if let Some((op, a, b)) = split(&r) {
                *count += 1;
                return Expr::Bin(
                    op,
                    Box::new(Expr::mul(l.clone(), a)),
                    Box::new(Expr::mul(l, b)),
                );
            }
            if let Some((op, a, b)) = split(&l) {
                *count += 1;
                return Expr::Bin(
                    op,
                    Box::new(Expr::mul(a, r.clone())),
                    Box::new(Expr::mul(b, r)),
                );
            }
            Expr::mul(l, r)
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(distribute_expr(*l, count)),
            Box::new(distribute_expr(*r, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(distribute_expr(*inner, count))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| distribute_expr(a, count))
                .collect(),
        ),
        other => other,
    }
}

/// Collects the `+`/`-`/negation spine of an expression as signed terms.
fn additive_terms(e: &Expr, sign: bool, out: &mut Vec<(bool, Expr)>) {
    match e {
        Expr::Bin(BinOp::Add, l, r) => {
            additive_terms(l, sign, out);
            additive_terms(r, sign, out);
        }
        Expr::Bin(BinOp::Sub, l, r) => {
            additive_terms(l, sign, out);
            additive_terms(r, !sign, out);
        }
        Expr::Neg(inner) => additive_terms(inner, !sign, out),
        other => out.push((sign, other.clone())),
    }
}

/// Rebuilds a signed term list as one chain: positive head (or a negation),
/// then `+`/`-` per term.
fn rebuild_additive(terms: &[(bool, Expr)]) -> Expr {
    let mut it = terms.iter();
    let (sign, head) = it.next().expect("at least one term");
    let mut acc = if *sign {
        head.clone()
    } else {
        Expr::Neg(Box::new(head.clone()))
    };
    for (sign, term) in it {
        acc = if *sign {
            Expr::add(acc, term.clone())
        } else {
            Expr::sub(acc, term.clone())
        };
    }
    acc
}

fn rotate_additive_chain(e: Expr, count: &mut usize) -> Expr {
    let mut terms = Vec::new();
    additive_terms(&e, true, &mut terms);
    if terms.len() < 2 {
        return e;
    }
    terms.rotate_left(1);
    *count += 1;
    rebuild_additive(&terms)
}

fn noise_expr(e: Expr, rng: &mut StdRng, count: &mut usize) -> Expr {
    match e {
        Expr::Access(a) => {
            if rng.gen_range(0..3) == 0 {
                *count += 1;
                Expr::mul(Expr::Access(a), Expr::Const(1))
            } else {
                Expr::Access(a)
            }
        }
        Expr::Const(c) => {
            if rng.gen_range(0..2) == 0 {
                *count += 1;
                Expr::add(Expr::Const(c - 1), Expr::Const(1))
            } else {
                Expr::Const(c)
            }
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(noise_expr(*l, rng, count)),
            Box::new(noise_expr(*r, rng, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(noise_expr(*inner, rng, count))),
        // Call arguments stay untouched: an uninterpreted `f(x*1)` is not
        // provably `f(x)` to the checker (normalisation happens at declared
        // chains, not under uninterpreted functions).
        call @ Expr::Call(..) => call,
        other => other,
    }
}

fn map_rhs(p: &Program, label: &str, f: &mut dyn FnMut(Expr) -> Expr) -> Program {
    let mut out = p.clone();
    rewrite_stmts(&mut out.body, label, f);
    out
}

fn rewrite_stmts(stmts: &mut [Stmt], label: &str, f: &mut dyn FnMut(Expr) -> Expr) {
    for s in stmts {
        match s {
            Stmt::Assign(a) if a.label == label => {
                a.rhs = f(a.rhs.clone());
            }
            Stmt::Assign(_) => {}
            Stmt::For(fl) => rewrite_stmts(&mut fl.body, label, f),
            Stmt::If(i) => {
                rewrite_stmts(&mut i.then_branch, label, f);
                rewrite_stmts(&mut i.else_branch, label, f);
            }
        }
    }
}

fn is_ac(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul)
}

fn commute_expr(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Bin(op, l, r) if is_ac(op) => {
            *count += 1;
            Expr::Bin(
                op,
                Box::new(commute_expr(*r, count)),
                Box::new(commute_expr(*l, count)),
            )
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(commute_expr(*l, count)),
            Box::new(commute_expr(*r, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(commute_expr(*inner, count))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter().map(|a| commute_expr(a, count)).collect(),
        ),
        other => other,
    }
}

fn rotate_right(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Bin(op, l, r) if is_ac(op) => {
            let l = rotate_right(*l, count);
            let r = rotate_right(*r, count);
            // (a op b) op c  ->  a op (b op c)
            if let Expr::Bin(inner_op, a, b) = l {
                if inner_op == op {
                    *count += 1;
                    return Expr::Bin(op, a, Box::new(Expr::Bin(op, b, Box::new(r))));
                }
                return Expr::Bin(op, Box::new(Expr::Bin(inner_op, a, b)), Box::new(r));
            }
            Expr::Bin(op, Box::new(l), Box::new(r))
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            op,
            Box::new(rotate_right(*l, count)),
            Box::new(rotate_right(*r, count)),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(rotate_right(*inner, count))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter().map(|a| rotate_right(a, count)).collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A, KERNEL_FIR5, KERNEL_MATVEC};
    use arrayeq_lang::parser::parse_program;

    fn assert_equiv(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::default()).expect("check runs");
        assert!(r.is_equivalent(), "{}", r.summary());
    }

    fn assert_not_equiv_basic(a: &Program, b: &Program) {
        let r = verify_programs(a, b, &CheckOptions::basic()).expect("check runs");
        assert!(!r.is_equivalent());
    }

    #[test]
    fn commuting_additions_preserves_equivalence_only_with_the_extended_method() {
        let p = parse_program(&with_size(FIG1_A, 32)).unwrap();
        let (t, swapped) = commute_statement(&p, "s3");
        assert!(swapped >= 1);
        assert_equiv(&p, &t);
        assert_not_equiv_basic(&p, &t);
    }

    #[test]
    fn reassociating_fir_taps_preserves_equivalence() {
        let p = parse_program(KERNEL_FIR5).unwrap();
        let (t, rotated) = reassociate_statement(&p, "f1");
        assert!(rotated >= 1);
        assert_equiv(&p, &t);
    }

    #[test]
    fn combined_commutation_and_reassociation() {
        let p = parse_program(KERNEL_MATVEC).unwrap();
        let (t1, _) = reassociate_statement(&p, "v1");
        let (t2, _) = commute_statement(&t1, "v1");
        assert_equiv(&p, &t2);
    }

    #[test]
    fn distribution_preserves_equivalence_only_with_the_extended_method() {
        use arrayeq_lang::corpus::KERNEL_FACTORED_IDENT;
        let p = parse_program(KERNEL_FACTORED_IDENT).unwrap();
        let (t, expanded) = distribute_statement(&p, "f1");
        assert_eq!(expanded, 1);
        assert_ne!(p, t);
        assert_equiv(&p, &t);
        assert_not_equiv_basic(&p, &t);
        let (t2, n2) = distribute_program(&p);
        assert_eq!(n2, 1);
        assert_eq!(t, t2);
    }

    #[test]
    fn subtraction_shuffle_preserves_equivalence() {
        use arrayeq_lang::corpus::KERNEL_SUB_SHUFFLE_B;
        let p = parse_program(KERNEL_SUB_SHUFFLE_B).unwrap();
        let (t, rotated) = shuffle_subtractions(&p, "p1");
        assert_eq!(rotated, 1);
        assert_ne!(p, t);
        assert_equiv(&p, &t);
        assert_not_equiv_basic(&p, &t);
    }

    #[test]
    fn identity_noise_preserves_equivalence_and_is_seed_deterministic() {
        let p = parse_program(&with_size(FIG1_A, 32)).unwrap();
        let (t, inserted) = insert_identity_noise(&p, 5);
        assert!(inserted >= 1, "noise was inserted");
        assert_ne!(p, t);
        assert_equiv(&p, &t);
        assert_not_equiv_basic(&p, &t);
        let (t2, _) = insert_identity_noise(&p, 5);
        assert_eq!(t, t2, "same seed, same noise");
        let (t3, _) = insert_identity_noise(&p, 6);
        assert_ne!(t, t3, "different seed, different noise");
    }

    #[test]
    fn unknown_label_is_a_no_op() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        let (t, n) = commute_statement(&p, "does_not_exist");
        assert_eq!(n, 0);
        assert_eq!(p, t);
    }
}
