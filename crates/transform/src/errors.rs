//! Error injection: the typical slips a designer makes while applying
//! transformations by hand, used to evaluate the diagnostics of Section 6.1.

use crate::{Result, TransformError};
use arrayeq_lang::ast::*;

/// The kinds of bugs the injector can plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// Add a constant offset to the first index of the first read access
    /// (an off-by-one style index error, like `buf[k]` instead of `buf[2*k]`
    /// in Fig. 1(d)).
    IndexOffset(i64),
    /// Scale the first index of the first read access by a constant.
    IndexScale(i64),
    /// Replace the statement's top-level operator by another one.
    WrongOperator,
    /// Swap the first two read accesses of the right-hand side (wrong
    /// operand order for a non-commutative context).
    SwapReads,
}

/// Injects a bug into the statement with the given label and returns the
/// broken program.
///
/// # Errors
///
/// Returns [`TransformError::NoSuchLocation`] if the label does not exist,
/// or [`TransformError::NotApplicable`] if the statement's shape does not
/// admit the requested bug.
pub fn inject(p: &Program, label: &str, bug: Bug) -> Result<Program> {
    let mut out = p.clone();
    let mut found = false;
    let mut applied = false;
    visit(&mut out.body, &mut |a: &mut Assign| {
        if a.label != label {
            return;
        }
        found = true;
        applied = apply_bug(a, bug);
    });
    if !found {
        return Err(TransformError::NoSuchLocation {
            message: format!("no statement labelled `{label}`"),
        });
    }
    if !applied {
        return Err(TransformError::NotApplicable {
            message: format!("bug {bug:?} does not apply to statement `{label}`"),
        });
    }
    Ok(out)
}

fn visit(stmts: &mut [Stmt], f: &mut dyn FnMut(&mut Assign)) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => f(a),
            Stmt::For(l) => visit(&mut l.body, f),
            Stmt::If(i) => {
                visit(&mut i.then_branch, f);
                visit(&mut i.else_branch, f);
            }
        }
    }
}

fn apply_bug(a: &mut Assign, bug: Bug) -> bool {
    match bug {
        Bug::IndexOffset(delta) => modify_first_read(&mut a.rhs, &mut |r| {
            if let Some(first) = r.indices.first_mut() {
                *first = Expr::add(first.clone(), Expr::Const(delta));
                true
            } else {
                false
            }
        }),
        Bug::IndexScale(k) => modify_first_read(&mut a.rhs, &mut |r| {
            if let Some(first) = r.indices.first_mut() {
                *first = Expr::mul(Expr::Const(k), first.clone());
                true
            } else {
                false
            }
        }),
        Bug::WrongOperator => {
            if let Expr::Bin(op, l, r) = a.rhs.clone() {
                let new_op = match op {
                    BinOp::Add => BinOp::Sub,
                    BinOp::Sub => BinOp::Add,
                    BinOp::Mul => BinOp::Add,
                    BinOp::Div => BinOp::Mul,
                };
                a.rhs = Expr::Bin(new_op, l, r);
                true
            } else {
                false
            }
        }
        Bug::SwapReads => {
            let reads: Vec<ArrayRef> = a.rhs.reads().into_iter().cloned().collect();
            if reads.len() < 2 || reads[0] == reads[1] {
                return false;
            }
            // Swap the first two reads by rewriting occurrences.
            let (first, second) = (reads[0].clone(), reads[1].clone());
            let mut state = 0usize;
            a.rhs = swap_reads(a.rhs.clone(), &first, &second, &mut state);
            true
        }
    }
}

fn modify_first_read(e: &mut Expr, f: &mut dyn FnMut(&mut ArrayRef) -> bool) -> bool {
    match e {
        Expr::Access(r) => f(r),
        Expr::Bin(_, l, r) => modify_first_read(l, f) || modify_first_read(r, f),
        Expr::Neg(inner) => modify_first_read(inner, f),
        Expr::Call(_, args) => args.iter_mut().any(|a| modify_first_read(a, f)),
        Expr::Const(_) | Expr::Var(_) => false,
    }
}

fn swap_reads(e: Expr, first: &ArrayRef, second: &ArrayRef, state: &mut usize) -> Expr {
    match e {
        Expr::Access(r) => {
            if r == *first && *state == 0 {
                *state = 1;
                Expr::Access(second.clone())
            } else if r == *second && *state == 1 {
                *state = 2;
                Expr::Access(first.clone())
            } else {
                Expr::Access(r)
            }
        }
        Expr::Bin(op, l, r) => {
            let l = swap_reads(*l, first, second, state);
            let r = swap_reads(*r, first, second, state);
            Expr::Bin(op, Box::new(l), Box::new(r))
        }
        Expr::Neg(inner) => Expr::Neg(Box::new(swap_reads(*inner, first, second, state))),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| swap_reads(a, first, second, state))
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_core::{verify_programs, CheckOptions};
    use arrayeq_lang::corpus::{with_size, FIG1_A, KERNEL_SAD_TREE};
    use arrayeq_lang::parser::parse_program;

    /// A planted bug counts as detected when either the def-use pre-check of
    /// Fig. 6 rejects the transformed program (the read is no longer covered
    /// by a write) or the equivalence check itself reports inequivalence.
    fn not_equiv(a: &Program, b: &Program) -> Option<arrayeq_core::Report> {
        match verify_programs(a, b, &CheckOptions::default()) {
            Ok(r) => {
                assert!(!r.is_equivalent(), "bug was not detected: {}", r.summary());
                Some(r)
            }
            Err(arrayeq_core::CoreError::Lang(arrayeq_lang::LangError::DefUse { .. })) => None,
            Err(other) => panic!("unexpected pipeline error: {other}"),
        }
    }

    #[test]
    fn index_offset_bug_is_detected_and_diagnosed() {
        let p = parse_program(&with_size(FIG1_A, 64)).unwrap();
        // Offsetting the `buf[2*k]` read of s2 keeps every read covered, so
        // the bug must be found by the equivalence check proper.
        let broken = inject(&p, "s2", Bug::IndexOffset(2)).unwrap();
        let r = not_equiv(&p, &broken).expect("caught by the checker, not def-use");
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.transformed_statements.iter().any(|s| s == "s2")));
        // Offsetting the `tmp[k]` read of s3 instead breaks def-use coverage,
        // which the Fig. 6 pre-check reports.
        let broken = inject(&p, "s3", Bug::IndexOffset(1)).unwrap();
        assert!(not_equiv(&p, &broken).is_none());
    }

    #[test]
    fn index_scale_and_wrong_operator_bugs_are_detected() {
        let p = parse_program(&with_size(FIG1_A, 64)).unwrap();
        let broken = inject(&p, "s1", Bug::IndexScale(3)).unwrap();
        not_equiv(&p, &broken);
        let broken = inject(&p, "s2", Bug::WrongOperator).unwrap();
        not_equiv(&p, &broken);
    }

    #[test]
    fn swapping_arguments_of_a_noncommutative_call_is_detected() {
        let p = parse_program(KERNEL_SAD_TREE).unwrap();
        let broken = inject(&p, "m1", Bug::SwapReads).unwrap();
        // `absd` is uninterpreted (not declared commutative), so swapping its
        // arguments must be flagged.
        not_equiv(&p, &broken);
    }

    #[test]
    fn injector_reports_bad_locations() {
        let p = parse_program(&with_size(FIG1_A, 16)).unwrap();
        assert!(matches!(
            inject(&p, "zz", Bug::WrongOperator),
            Err(TransformError::NoSuchLocation { .. })
        ));
    }
}
