//! Affine linear expressions with integer coefficients.

use crate::arith::{narrow, ArithOverflow};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};

/// Number of coefficients stored inline before spilling to the heap.
///
/// The checker's relations are small: input dims + output dims + parameters +
/// a couple of existentials rarely exceeds six columns, so almost every
/// expression the hot paths (Fourier–Motzkin, equality elimination,
/// composition) clone and mutate fits inline and costs no allocation.
const INLINE: usize = 6;

/// Coefficient storage: inline array for up to [`INLINE`] columns, spilling
/// to a heap vector beyond that.  Comparisons, hashing and iteration always
/// go through the logical slice, so the two representations are
/// indistinguishable to callers.
#[derive(Clone)]
enum Coeffs {
    Inline { len: u8, buf: [i64; INLINE] },
    Heap(Vec<i64>),
}

impl Coeffs {
    #[inline]
    fn zeros(n: usize) -> Coeffs {
        if n <= INLINE {
            Coeffs::Inline {
                len: n as u8,
                buf: [0; INLINE],
            }
        } else {
            Coeffs::Heap(vec![0; n])
        }
    }

    #[inline]
    fn from_vec(v: Vec<i64>) -> Coeffs {
        if v.len() <= INLINE {
            let mut buf = [0; INLINE];
            buf[..v.len()].copy_from_slice(&v);
            Coeffs::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            Coeffs::Heap(v)
        }
    }

    #[inline]
    fn as_slice(&self) -> &[i64] {
        match self {
            Coeffs::Inline { len, buf } => &buf[..*len as usize],
            Coeffs::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [i64] {
        match self {
            Coeffs::Inline { len, buf } => &mut buf[..*len as usize],
            Coeffs::Heap(v) => v,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Coeffs::Inline { len, .. } => *len as usize,
            Coeffs::Heap(v) => v.len(),
        }
    }

    /// Appends `extra` zero columns in place.
    fn grow(&mut self, extra: usize) {
        let new_len = self.len() + extra;
        match self {
            Coeffs::Inline { len, .. } if new_len <= INLINE => *len = new_len as u8,
            Coeffs::Inline { len, buf } => {
                let mut v = Vec::with_capacity(new_len);
                v.extend_from_slice(&buf[..*len as usize]);
                v.resize(new_len, 0);
                *self = Coeffs::Heap(v);
            }
            Coeffs::Heap(v) => v.resize(new_len, 0),
        }
    }

    /// Removes the column at `idx` in place.
    fn remove(&mut self, idx: usize) {
        match self {
            Coeffs::Inline { len, buf } => {
                let n = *len as usize;
                assert!(idx < n);
                buf.copy_within(idx + 1..n, idx);
                buf[n - 1] = 0;
                *len = (n - 1) as u8;
            }
            Coeffs::Heap(v) => {
                v.remove(idx);
            }
        }
    }
}

/// An affine expression `a₀·x₀ + a₁·x₁ + … + c` over the columns of a
/// [`Conjunct`](crate::Conjunct).
///
/// The expression stores one `i64` coefficient per variable column plus a
/// trailing constant term.  The meaning of each column (input dim, output
/// dim, parameter or existential) is determined by the conjunct that owns the
/// expression; `LinExpr` itself is just the coefficient vector.
///
/// Up to six coefficients are stored inline (no heap allocation); the
/// in-place operations ([`add_scaled_assign`](LinExpr::add_scaled_assign),
/// [`scale_assign`](LinExpr::scale_assign),
/// [`substitute_assign`](LinExpr::substitute_assign), …) let the elimination
/// loops of the Omega test mutate expressions without the clone-then-rebuild
/// pattern.
///
/// ```
/// use arrayeq_omega::LinExpr;
///
/// // 2*x0 - x1 + 3   over two variables
/// let e = LinExpr::from_coeffs(vec![2, -1], 3);
/// assert_eq!(e.coeff(0), 2);
/// assert_eq!(e.constant(), 3);
/// assert_eq!(e.eval(&[5, 7]), 2 * 5 - 7 + 3);
/// ```
#[derive(Clone)]
pub struct LinExpr {
    /// Coefficients, one per variable column.
    coeffs: Coeffs,
    /// The constant term.
    constant: i64,
}

impl PartialEq for LinExpr {
    fn eq(&self, other: &Self) -> bool {
        self.constant == other.constant && self.coeffs.as_slice() == other.coeffs.as_slice()
    }
}

impl Eq for LinExpr {}

impl Hash for LinExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.coeffs.as_slice().hash(state);
        self.constant.hash(state);
    }
}

impl PartialOrd for LinExpr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LinExpr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.coeffs
            .as_slice()
            .cmp(other.coeffs.as_slice())
            .then(self.constant.cmp(&other.constant))
    }
}

impl std::fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinExpr")
            .field("coeffs", &self.coeffs.as_slice())
            .field("constant", &self.constant)
            .finish()
    }
}

impl LinExpr {
    /// The zero expression over `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        LinExpr {
            coeffs: Coeffs::zeros(n_vars),
            constant: 0,
        }
    }

    /// A constant expression over `n_vars` variables.
    pub fn constant_expr(n_vars: usize, c: i64) -> Self {
        LinExpr {
            coeffs: Coeffs::zeros(n_vars),
            constant: c,
        }
    }

    /// The expression `1·x_col` over `n_vars` variables.
    pub fn var(n_vars: usize, col: usize) -> Self {
        let mut e = LinExpr::zero(n_vars);
        e.coeffs.as_mut_slice()[col] = 1;
        e
    }

    /// Builds an expression from an explicit coefficient vector and constant.
    pub fn from_coeffs(coeffs: Vec<i64>, constant: i64) -> Self {
        LinExpr {
            coeffs: Coeffs::from_vec(coeffs),
            constant,
        }
    }

    /// Number of variable columns this expression ranges over.
    pub fn n_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable column `col`.
    pub fn coeff(&self, col: usize) -> i64 {
        self.coeffs.as_slice()[col]
    }

    /// Mutable access to the coefficient of column `col`.
    pub fn set_coeff(&mut self, col: usize, value: i64) {
        self.coeffs.as_mut_slice()[col] = value;
    }

    /// The constant term.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, value: i64) {
        self.constant = value;
    }

    /// All coefficients as a slice (excluding the constant term).
    pub fn coeffs(&self) -> &[i64] {
        self.coeffs.as_slice()
    }

    /// Whether every coefficient is zero (the expression is a constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.as_slice().iter().all(|&c| c == 0)
    }

    /// Whether the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.is_constant()
    }

    /// Evaluates the expression for a concrete assignment of the variables.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n_vars()`.
    pub fn eval(&self, values: &[i64]) -> i64 {
        assert_eq!(values.len(), self.n_vars(), "wrong number of values");
        self.coeffs
            .as_slice()
            .iter()
            .zip(values)
            .map(|(a, v)| a * v)
            .sum::<i64>()
            + self.constant
    }

    /// Evaluates the first `prefix.len()` columns only, returning the partial
    /// sum `Σ_{i < prefix.len()} aᵢ·prefixᵢ + c`.  Used to residualise an
    /// expression onto its trailing (existential) columns without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `prefix.len() > self.n_vars()`.
    pub fn eval_prefix(&self, prefix: &[i64]) -> i64 {
        assert!(prefix.len() <= self.n_vars(), "prefix too long");
        self.coeffs
            .as_slice()
            .iter()
            .zip(prefix)
            .map(|(a, v)| a * v)
            .sum::<i64>()
            + self.constant
    }

    /// Greatest common divisor of the variable coefficients (0 if all zero).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.as_slice().iter().fold(0i64, |g, &c| gcd(g, c))
    }

    /// Divides every coefficient and the constant by `d`.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient or the constant is not divisible by `d`.
    pub fn exact_div(&self, d: i64) -> LinExpr {
        let mut out = self.clone();
        out.exact_div_assign(d);
        out
    }

    /// In-place version of [`exact_div`](LinExpr::exact_div).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient or the constant is not divisible by `d`.
    pub fn exact_div_assign(&mut self, d: i64) {
        assert!(d != 0);
        assert!(
            self.coeffs.as_slice().iter().all(|c| c % d == 0) && self.constant % d == 0,
            "exact_div: not divisible"
        );
        for c in self.coeffs.as_mut_slice() {
            *c /= d;
        }
        self.constant /= d;
    }

    /// Divides the coefficients by `d` exactly and the constant rounded
    /// towards −∞ — the integer tightening used when normalising `e ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient is not divisible by `d` or `d <= 0`.
    pub fn tighten_div_assign(&mut self, d: i64) {
        assert!(d > 0);
        for c in self.coeffs.as_mut_slice() {
            assert!(*c % d == 0, "tighten_div: coefficient not divisible");
            *c /= d;
        }
        self.constant = floor_div(self.constant, d);
    }

    /// Multiplies the whole expression by a scalar.
    pub fn scale(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.scale_assign(k);
        out
    }

    /// In-place version of [`scale`](LinExpr::scale).
    pub fn scale_assign(&mut self, k: i64) {
        for c in self.coeffs.as_mut_slice() {
            *c *= k;
        }
        self.constant *= k;
    }

    /// Adds `k * other` to this expression, in place.
    ///
    /// # Panics
    ///
    /// Panics if the two expressions have different numbers of variables.
    pub fn add_scaled_assign(&mut self, other: &LinExpr, k: i64) {
        assert_eq!(self.n_vars(), other.n_vars());
        for (a, b) in self
            .coeffs
            .as_mut_slice()
            .iter_mut()
            .zip(other.coeffs.as_slice())
        {
            *a += k * b;
        }
        self.constant += k * other.constant;
    }

    /// Reduces every coefficient and the constant into `[0, m)`, in place
    /// (the canonical form of a congruence `e ≡ 0 (mod m)`).
    ///
    /// # Panics
    ///
    /// Panics if `m <= 0`.
    pub fn rem_euclid_assign(&mut self, m: i64) {
        assert!(m > 0);
        for c in self.coeffs.as_mut_slice() {
            *c = c.rem_euclid(m);
        }
        self.constant = self.constant.rem_euclid(m);
    }

    /// The first non-zero coefficient, or the constant when all coefficients
    /// are zero.  The sign of this value is what sign-canonicalisation of
    /// equalities pivots on.
    pub(crate) fn leading_value(&self) -> i64 {
        self.coeffs
            .as_slice()
            .iter()
            .copied()
            .find(|&c| c != 0)
            .unwrap_or(self.constant)
    }

    /// Returns a copy with `extra` zero columns appended (new existentials).
    pub fn extended(&self, extra: usize) -> LinExpr {
        let mut out = self.clone();
        out.extend_assign(extra);
        out
    }

    /// Appends `extra` zero columns in place.
    pub fn extend_assign(&mut self, extra: usize) {
        self.coeffs.grow(extra);
    }

    /// Returns a copy whose columns are permuted/embedded according to `map`:
    /// new column `map[i]` receives old column `i`'s coefficient.  The new
    /// expression has `new_len` columns.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.n_vars()` or any target is out of range.
    pub fn remapped(&self, map: &[usize], new_len: usize) -> LinExpr {
        assert_eq!(map.len(), self.n_vars());
        let mut out = LinExpr::zero(new_len);
        let coeffs = out.coeffs.as_mut_slice();
        for (i, &target) in map.iter().enumerate() {
            assert!(target < new_len, "remap target out of range");
            coeffs[target] += self.coeffs.as_slice()[i];
        }
        out.constant = self.constant;
        out
    }

    /// Returns a copy with column `col` removed (its coefficient must be 0).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `col` is non-zero.
    pub fn without_col(&self, col: usize) -> LinExpr {
        let mut out = self.clone();
        out.remove_col_assign(col);
        out
    }

    /// Removes column `col` in place (its coefficient must be 0).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `col` is non-zero.
    pub fn remove_col_assign(&mut self, col: usize) {
        assert_eq!(self.coeffs.as_slice()[col], 0, "cannot drop a used column");
        self.coeffs.remove(col);
    }

    /// Overflow-checked [`eval`](LinExpr::eval): the products and the running
    /// sum are computed in `i128` and the result narrowed back to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n_vars()`.
    pub fn try_eval(&self, values: &[i64]) -> Result<i64, ArithOverflow> {
        narrow(self.try_eval_wide(values)?)
    }

    /// Overflow-checked evaluation keeping the `i128` widened result.
    ///
    /// Each `aᵢ·vᵢ` product of two `i64`s always fits `i128`; only the
    /// running sum is checked.  Callers that merely need the *sign* of the
    /// value (constraint satisfaction) use this to avoid the final
    /// narrowing.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n_vars()`.
    pub fn try_eval_wide(&self, values: &[i64]) -> Result<i128, ArithOverflow> {
        assert_eq!(values.len(), self.n_vars(), "wrong number of values");
        let mut acc = self.constant as i128;
        for (a, v) in self.coeffs.as_slice().iter().zip(values) {
            acc = acc
                .checked_add(*a as i128 * *v as i128)
                .ok_or(ArithOverflow)?;
        }
        Ok(acc)
    }

    /// Overflow-checked [`eval_prefix`](LinExpr::eval_prefix).
    ///
    /// # Panics
    ///
    /// Panics if `prefix.len() > self.n_vars()`.
    pub fn try_eval_prefix(&self, prefix: &[i64]) -> Result<i64, ArithOverflow> {
        assert!(prefix.len() <= self.n_vars(), "prefix too long");
        let mut acc = self.constant as i128;
        for (a, v) in self.coeffs.as_slice().iter().zip(prefix) {
            acc = acc
                .checked_add(*a as i128 * *v as i128)
                .ok_or(ArithOverflow)?;
        }
        narrow(acc)
    }

    /// Overflow-checked [`scale`](LinExpr::scale).
    pub fn try_scale(&self, k: i64) -> Result<LinExpr, ArithOverflow> {
        let mut out = self.clone();
        out.try_scale_assign(k)?;
        Ok(out)
    }

    /// Overflow-checked [`scale_assign`](LinExpr::scale_assign): every
    /// product is computed in `i128` and narrowed.  On `Err` the expression
    /// is left **unmodified** (the checks run before any store), so a failed
    /// attempt never leaves a half-scaled expression behind.
    pub fn try_scale_assign(&mut self, k: i64) -> Result<(), ArithOverflow> {
        let kw = k as i128;
        for c in self.coeffs.as_slice() {
            narrow(*c as i128 * kw)?;
        }
        narrow(self.constant as i128 * kw)?;
        for c in self.coeffs.as_mut_slice() {
            *c *= k;
        }
        self.constant *= k;
        Ok(())
    }

    /// Overflow-checked [`add_scaled_assign`](LinExpr::add_scaled_assign):
    /// each `aᵢ + k·bᵢ` is computed in `i128` and narrowed.  On `Err` the
    /// expression is left **unmodified**.
    ///
    /// # Panics
    ///
    /// Panics if the two expressions have different numbers of variables.
    pub fn try_add_scaled_assign(&mut self, other: &LinExpr, k: i64) -> Result<(), ArithOverflow> {
        assert_eq!(self.n_vars(), other.n_vars());
        let kw = k as i128;
        for (a, b) in self.coeffs.as_slice().iter().zip(other.coeffs.as_slice()) {
            narrow(*a as i128 + kw * *b as i128)?;
        }
        narrow(self.constant as i128 + kw * other.constant as i128)?;
        for (a, b) in self
            .coeffs
            .as_mut_slice()
            .iter_mut()
            .zip(other.coeffs.as_slice())
        {
            *a = (*a as i128 + kw * *b as i128) as i64;
        }
        self.constant = (self.constant as i128 + kw * other.constant as i128) as i64;
        Ok(())
    }

    /// Overflow-checked [`substitute_assign`](LinExpr::substitute_assign).
    /// On `Err` the expression is left **unmodified**.
    ///
    /// # Panics
    ///
    /// Panics if `value` uses column `col` or sizes differ.
    pub fn try_substitute_assign(
        &mut self,
        col: usize,
        value: &LinExpr,
    ) -> Result<(), ArithOverflow> {
        assert_eq!(self.n_vars(), value.n_vars());
        assert_eq!(value.coeff(col), 0, "substitution value uses the variable");
        let k = self.coeffs.as_slice()[col];
        if k == 0 {
            return Ok(());
        }
        // Validate every resulting entry before storing anything: the `col`
        // entry becomes 0 first in the real substitution, so its check uses
        // 0 + k·value[col] = 0 and is trivially fine; all other entries are
        // aᵢ + k·bᵢ.
        let kw = k as i128;
        for (i, (a, b)) in self
            .coeffs
            .as_slice()
            .iter()
            .zip(value.coeffs.as_slice())
            .enumerate()
        {
            let base = if i == col { 0 } else { *a as i128 };
            narrow(base + kw * *b as i128)?;
        }
        narrow(self.constant as i128 + kw * value.constant as i128)?;
        self.coeffs.as_mut_slice()[col] = 0;
        self.add_scaled_assign(value, k);
        Ok(())
    }

    /// Substitutes variable `col` with the expression `value` (which must not
    /// itself use `col`); i.e. rewrites `self` under `x_col := value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` uses column `col` or sizes differ.
    pub fn substitute(&self, col: usize, value: &LinExpr) -> LinExpr {
        let mut result = self.clone();
        result.substitute_assign(col, value);
        result
    }

    /// In-place version of [`substitute`](LinExpr::substitute).
    ///
    /// # Panics
    ///
    /// Panics if `value` uses column `col` or sizes differ.
    pub fn substitute_assign(&mut self, col: usize, value: &LinExpr) {
        assert_eq!(self.n_vars(), value.n_vars());
        assert_eq!(value.coeff(col), 0, "substitution value uses the variable");
        let k = self.coeffs.as_slice()[col];
        if k == 0 {
            return;
        }
        self.coeffs.as_mut_slice()[col] = 0;
        self.add_scaled_assign(value, k);
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.add_scaled_assign(&rhs, 1);
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.add_scaled_assign(&rhs, -1);
        out
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        let mut out = self;
        out.scale_assign(-1);
        out
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        let mut out = self;
        out.scale_assign(rhs);
        out
    }
}

/// Greatest common divisor of two non-negative integers (`gcd(0, x) = x`).
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    // Magnitudes are taken as u64 so `i64::MIN` inputs cannot overflow.  The
    // result only exceeds `i64` when every input is 0 or `i64::MIN`; that
    // 2^63 gcd is clamped to 1 ("no common factor usable for division"),
    // which merely skips a canonicalising division — never changes a verdict.
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i64::try_from(a).unwrap_or(1)
}

/// Floor division (rounds towards negative infinity).
pub(crate) fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// `a mod̂ b`: the symmetric remainder in `(-b/2, b/2]` used by the Omega
/// test's equality elimination.
pub(crate) fn mod_hat(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let r = a.rem_euclid(b);
    // `2r > b` phrased as `r > b/2` so huge moduli cannot overflow the
    // doubling (for integers with 0 <= r < b the two are equivalent).
    if r > b / 2 {
        r - b
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let e = LinExpr::from_coeffs(vec![2, -1, 0], 3);
        assert_eq!(e.n_vars(), 3);
        assert_eq!(e.eval(&[1, 2, 100]), 3); // 2·1 − 1·2 + 3
        assert!(!e.is_constant());
        assert!(LinExpr::constant_expr(3, 5).is_constant());
        assert!(LinExpr::zero(2).is_zero());
        assert_eq!(LinExpr::var(3, 1).eval(&[9, 7, 5]), 7);
    }

    #[test]
    fn arithmetic_ops() {
        let a = LinExpr::from_coeffs(vec![1, 2], 3);
        let b = LinExpr::from_coeffs(vec![4, -1], 1);
        assert_eq!((a.clone() + b.clone()).coeffs(), &[5, 1]);
        assert_eq!((a.clone() - b.clone()).constant(), 2);
        assert_eq!((-a.clone()).coeff(0), -1);
        assert_eq!((a.clone() * 3).coeff(1), 6);
        let mut c = a.clone();
        c.add_scaled_assign(&b, 2);
        assert_eq!(c.coeffs(), &[9, 0]);
        assert_eq!(c.constant(), 5);
        let mut d = a.clone();
        d.add_scaled_assign(&b, -1);
        assert_eq!(d.coeffs(), &[-3, 3]);
        assert_eq!(d.constant(), 2);
    }

    #[test]
    fn gcd_and_exact_div() {
        let e = LinExpr::from_coeffs(vec![4, -6, 0], 8);
        assert_eq!(e.coeff_gcd(), 2);
        let d = e.exact_div(2);
        assert_eq!(d.coeffs(), &[2, -3, 0]);
        assert_eq!(d.constant(), 4);
    }

    #[test]
    #[should_panic]
    fn exact_div_requires_divisibility() {
        LinExpr::from_coeffs(vec![3], 1).exact_div(2);
    }

    #[test]
    fn tighten_div_rounds_constant_down() {
        let mut e = LinExpr::from_coeffs(vec![2, -4], -3);
        e.tighten_div_assign(2);
        assert_eq!(e.coeffs(), &[1, -2]);
        assert_eq!(e.constant(), -2);
    }

    #[test]
    fn remap_and_extend() {
        let e = LinExpr::from_coeffs(vec![1, 2], 7);
        let ext = e.extended(2);
        assert_eq!(ext.n_vars(), 4);
        assert_eq!(ext.coeff(3), 0);
        let remapped = e.remapped(&[2, 0], 3);
        assert_eq!(remapped.coeffs(), &[2, 0, 1]);
        assert_eq!(remapped.constant(), 7);
    }

    #[test]
    fn substitution() {
        // e = 3x + y + 1, substitute x := 2y - 1  =>  3(2y-1) + y + 1 = 7y - 2
        let e = LinExpr::from_coeffs(vec![3, 1], 1);
        let v = LinExpr::from_coeffs(vec![0, 2], -1);
        let s = e.substitute(0, &v);
        assert_eq!(s.coeffs(), &[0, 7]);
        assert_eq!(s.constant(), -2);
    }

    #[test]
    fn helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(mod_hat(7, 3), 1);
        assert_eq!(mod_hat(8, 3), -1);
        assert_eq!(mod_hat(-1, 5), -1);
        assert_eq!(mod_hat(3, 6), 3);
        assert_eq!(mod_hat(4, 6), -2);
    }

    #[test]
    fn without_col_drops_unused_column() {
        let e = LinExpr::from_coeffs(vec![1, 0, 5], 2);
        let d = e.without_col(1);
        assert_eq!(d.coeffs(), &[1, 5]);
    }

    #[test]
    fn inline_and_heap_representations_agree() {
        // Straddle the inline/heap boundary in both directions.
        for n in [0usize, 1, INLINE - 1, INLINE, INLINE + 1, 2 * INLINE] {
            let coeffs: Vec<i64> = (0..n as i64).map(|i| i - 2).collect();
            let e = LinExpr::from_coeffs(coeffs.clone(), 9);
            assert_eq!(e.coeffs(), &coeffs[..]);
            assert_eq!(e.n_vars(), n);
            let grown = e.extended(3);
            assert_eq!(grown.n_vars(), n + 3);
            assert_eq!(&grown.coeffs()[..n], &coeffs[..]);
            assert_eq!(&grown.coeffs()[n..], &[0, 0, 0]);
            // Equality and hashing see through the representation.
            let same = LinExpr::from_coeffs(coeffs.clone(), 9);
            assert_eq!(e, same);
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |x: &LinExpr| {
                let mut s = DefaultHasher::new();
                x.hash(&mut s);
                s.finish()
            };
            assert_eq!(h(&e), h(&same));
        }
    }

    #[test]
    fn growing_across_the_inline_boundary_preserves_content() {
        let mut e = LinExpr::from_coeffs(vec![1, 2, 3, 4, 5, 6], 7);
        e.extend_assign(2); // spills to the heap
        assert_eq!(e.coeffs(), &[1, 2, 3, 4, 5, 6, 0, 0]);
        e.set_coeff(7, -1);
        e.remove_col_assign(6);
        assert_eq!(e.coeffs(), &[1, 2, 3, 4, 5, 6, -1]);
    }

    #[test]
    fn ordering_is_lexicographic_on_coeffs_then_constant() {
        let a = LinExpr::from_coeffs(vec![1, 2], 0);
        let b = LinExpr::from_coeffs(vec![1, 3], -5);
        let c = LinExpr::from_coeffs(vec![1, 2], 1);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }
}
