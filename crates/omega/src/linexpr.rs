//! Affine linear expressions with integer coefficients.

use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `a₀·x₀ + a₁·x₁ + … + c` over the columns of a
/// [`Conjunct`](crate::Conjunct).
///
/// The expression stores one `i64` coefficient per variable column plus a
/// trailing constant term.  The meaning of each column (input dim, output
/// dim, parameter or existential) is determined by the conjunct that owns the
/// expression; `LinExpr` itself is just the coefficient vector.
///
/// ```
/// use arrayeq_omega::LinExpr;
///
/// // 2*x0 - x1 + 3   over two variables
/// let e = LinExpr::from_coeffs(vec![2, -1], 3);
/// assert_eq!(e.coeff(0), 2);
/// assert_eq!(e.constant(), 3);
/// assert_eq!(e.eval(&[5, 7]), 2 * 5 - 7 + 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Coefficients, one per variable column.
    coeffs: Vec<i64>,
    /// The constant term.
    constant: i64,
}

impl LinExpr {
    /// The zero expression over `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        LinExpr {
            coeffs: vec![0; n_vars],
            constant: 0,
        }
    }

    /// A constant expression over `n_vars` variables.
    pub fn constant_expr(n_vars: usize, c: i64) -> Self {
        LinExpr {
            coeffs: vec![0; n_vars],
            constant: c,
        }
    }

    /// The expression `1·x_col` over `n_vars` variables.
    pub fn var(n_vars: usize, col: usize) -> Self {
        let mut e = LinExpr::zero(n_vars);
        e.coeffs[col] = 1;
        e
    }

    /// Builds an expression from an explicit coefficient vector and constant.
    pub fn from_coeffs(coeffs: Vec<i64>, constant: i64) -> Self {
        LinExpr { coeffs, constant }
    }

    /// Number of variable columns this expression ranges over.
    pub fn n_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable column `col`.
    pub fn coeff(&self, col: usize) -> i64 {
        self.coeffs[col]
    }

    /// Mutable access to the coefficient of column `col`.
    pub fn set_coeff(&mut self, col: usize, value: i64) {
        self.coeffs[col] = value;
    }

    /// The constant term.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, value: i64) {
        self.constant = value;
    }

    /// All coefficients as a slice (excluding the constant term).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Whether every coefficient is zero (the expression is a constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Whether the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.is_constant()
    }

    /// Evaluates the expression for a concrete assignment of the variables.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n_vars()`.
    pub fn eval(&self, values: &[i64]) -> i64 {
        assert_eq!(values.len(), self.n_vars(), "wrong number of values");
        self.coeffs
            .iter()
            .zip(values)
            .map(|(a, v)| a * v)
            .sum::<i64>()
            + self.constant
    }

    /// Greatest common divisor of the variable coefficients (0 if all zero).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.iter().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Divides every coefficient and the constant by `d`.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient or the constant is not divisible by `d`.
    pub fn exact_div(&self, d: i64) -> LinExpr {
        assert!(d != 0);
        assert!(
            self.coeffs.iter().all(|c| c % d == 0) && self.constant % d == 0,
            "exact_div: not divisible"
        );
        LinExpr {
            coeffs: self.coeffs.iter().map(|c| c / d).collect(),
            constant: self.constant / d,
        }
    }

    /// Multiplies the whole expression by a scalar.
    pub fn scale(&self, k: i64) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Adds `k * other` to this expression, in place.
    ///
    /// # Panics
    ///
    /// Panics if the two expressions have different numbers of variables.
    pub fn add_scaled(&mut self, other: &LinExpr, k: i64) {
        assert_eq!(self.n_vars(), other.n_vars());
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += k * b;
        }
        self.constant += k * other.constant;
    }

    /// Returns a copy with `extra` zero columns appended (new existentials).
    pub fn extended(&self, extra: usize) -> LinExpr {
        let mut coeffs = self.coeffs.clone();
        coeffs.extend(std::iter::repeat(0).take(extra));
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Returns a copy whose columns are permuted/embedded according to `map`:
    /// new column `map[i]` receives old column `i`'s coefficient.  The new
    /// expression has `new_len` columns.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.n_vars()` or any target is out of range.
    pub fn remapped(&self, map: &[usize], new_len: usize) -> LinExpr {
        assert_eq!(map.len(), self.n_vars());
        let mut coeffs = vec![0i64; new_len];
        for (i, &target) in map.iter().enumerate() {
            assert!(target < new_len, "remap target out of range");
            coeffs[target] += self.coeffs[i];
        }
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Returns a copy with column `col` removed (its coefficient must be 0).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `col` is non-zero.
    pub fn without_col(&self, col: usize) -> LinExpr {
        assert_eq!(self.coeffs[col], 0, "cannot drop a used column");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(col);
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Substitutes variable `col` with the expression `value` (which must not
    /// itself use `col`); i.e. rewrites `self` under `x_col := value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` uses column `col` or sizes differ.
    pub fn substitute(&self, col: usize, value: &LinExpr) -> LinExpr {
        assert_eq!(self.n_vars(), value.n_vars());
        assert_eq!(value.coeff(col), 0, "substitution value uses the variable");
        let k = self.coeffs[col];
        let mut result = self.clone();
        result.coeffs[col] = 0;
        result.add_scaled(value, k);
        result
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.add_scaled(&rhs, 1);
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.add_scaled(&rhs, -1);
        out
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        self.scale(rhs)
    }
}

/// Greatest common divisor of two non-negative integers (`gcd(0, x) = x`).
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Floor division (rounds towards negative infinity).
pub(crate) fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// `a mod̂ b`: the symmetric remainder in `(-b/2, b/2]` used by the Omega
/// test's equality elimination.
pub(crate) fn mod_hat(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let r = a.rem_euclid(b);
    if 2 * r > b {
        r - b
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let e = LinExpr::from_coeffs(vec![2, -1, 0], 3);
        assert_eq!(e.n_vars(), 3);
        assert_eq!(e.eval(&[1, 2, 100]), 2 - 2 + 3);
        assert!(!e.is_constant());
        assert!(LinExpr::constant_expr(3, 5).is_constant());
        assert!(LinExpr::zero(2).is_zero());
        assert_eq!(LinExpr::var(3, 1).eval(&[9, 7, 5]), 7);
    }

    #[test]
    fn arithmetic_ops() {
        let a = LinExpr::from_coeffs(vec![1, 2], 3);
        let b = LinExpr::from_coeffs(vec![4, -1], 1);
        assert_eq!((a.clone() + b.clone()).coeffs(), &[5, 1]);
        assert_eq!((a.clone() - b.clone()).constant(), 2);
        assert_eq!((-a.clone()).coeff(0), -1);
        assert_eq!((a.clone() * 3).coeff(1), 6);
        let mut c = a.clone();
        c.add_scaled(&b, 2);
        assert_eq!(c.coeffs(), &[9, 0]);
        assert_eq!(c.constant(), 5);
    }

    #[test]
    fn gcd_and_exact_div() {
        let e = LinExpr::from_coeffs(vec![4, -6, 0], 8);
        assert_eq!(e.coeff_gcd(), 2);
        let d = e.exact_div(2);
        assert_eq!(d.coeffs(), &[2, -3, 0]);
        assert_eq!(d.constant(), 4);
    }

    #[test]
    #[should_panic]
    fn exact_div_requires_divisibility() {
        LinExpr::from_coeffs(vec![3], 1).exact_div(2);
    }

    #[test]
    fn remap_and_extend() {
        let e = LinExpr::from_coeffs(vec![1, 2], 7);
        let ext = e.extended(2);
        assert_eq!(ext.n_vars(), 4);
        assert_eq!(ext.coeff(3), 0);
        let remapped = e.remapped(&[2, 0], 3);
        assert_eq!(remapped.coeffs(), &[2, 0, 1]);
        assert_eq!(remapped.constant(), 7);
    }

    #[test]
    fn substitution() {
        // e = 3x + y + 1, substitute x := 2y - 1  =>  3(2y-1) + y + 1 = 7y - 2
        let e = LinExpr::from_coeffs(vec![3, 1], 1);
        let v = LinExpr::from_coeffs(vec![0, 2], -1);
        let s = e.substitute(0, &v);
        assert_eq!(s.coeffs(), &[0, 7]);
        assert_eq!(s.constant(), -2);
    }

    #[test]
    fn helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(mod_hat(7, 3), 1);
        assert_eq!(mod_hat(8, 3), -1);
        assert_eq!(mod_hat(-1, 5), -1);
        assert_eq!(mod_hat(3, 6), 3);
        assert_eq!(mod_hat(4, 6), -2);
    }

    #[test]
    fn without_col_drops_unused_column() {
        let e = LinExpr::from_coeffs(vec![1, 0, 5], 2);
        let d = e.without_col(1);
        assert_eq!(d.coeffs(), &[1, 5]);
    }
}
