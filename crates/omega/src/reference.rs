//! Slow big-integer reference implementation of the Omega test.
//!
//! The production solver in [`crate::Conjunct::is_feasible`] runs on `i64`
//! coefficients with `i128`-widened checked arithmetic and degrades to a
//! typed overflow condition when even the widened result does not fit.  To
//! *prove* that degradation is the only effect of large coefficients — never
//! a wrapped, wrong verdict — the fault-injection test-suite cross-checks it
//! against this oracle: the same decision procedure (equality elimination
//! with Pugh's mod-reduction, Fourier–Motzkin with real/dark shadows and
//! splinters) executed over [`BigInt`], where overflow is impossible by
//! construction.
//!
//! This module trades every performance trick of the production path for
//! obvious correctness: plain `Vec<BigInt>` rows, clones everywhere, no
//! memoisation.  It is compiled into the library (so integration tests and
//! the overflow corpus can call it) but is not used on any production path.

use crate::bigint::BigInt;
use crate::constraint::{Constraint, ConstraintKind};

/// Work limit of the reference solver, counted like the production solver's
/// (per elimination step).  When exceeded the oracle returns `None` — the
/// cross-check skips the case rather than mis-reporting it.
const WORK_LIMIT: usize = 400_000;

/// Decides integer feasibility of `constraints` over `n_vars` variables with
/// arbitrary-precision arithmetic.
///
/// Returns `Some(true)` / `Some(false)` for a decided system and `None` when
/// the work limit was exceeded.  Agreement contract with the production
/// solver: whenever both this oracle and
/// [`is_feasible`](crate::Conjunct::is_feasible) decide (no work-limit hit,
/// no overflow degradation), the verdicts must be equal.
pub fn reference_is_feasible(constraints: &[Constraint], n_vars: usize) -> Option<bool> {
    let mut p = Problem::new(n_vars);
    for c in constraints {
        if !p.add_constraint(c) {
            return Some(false);
        }
    }
    let mut work = 0usize;
    match p.solve(&mut work) {
        Outcome::Sat => Some(true),
        Outcome::Unsat => Some(false),
        Outcome::Unknown => None,
    }
}

enum Outcome {
    Sat,
    Unsat,
    Unknown,
}

/// A row `Σ coeffs[i]·xᵢ + k  (= 0 | ≥ 0)` over big integers.
#[derive(Clone)]
struct Row {
    coeffs: Vec<BigInt>,
    k: BigInt,
}

impl Row {
    fn zero(n: usize) -> Row {
        Row {
            coeffs: (0..n).map(|_| BigInt::zero()).collect(),
            k: BigInt::zero(),
        }
    }

    fn from_expr(e: &crate::LinExpr, n: usize) -> Row {
        let mut r = Row::zero(n);
        for (i, &c) in e.coeffs().iter().enumerate() {
            r.coeffs[i] = BigInt::from(c);
        }
        r.k = BigInt::from(e.constant());
        r
    }

    fn pad_to(&mut self, n: usize) {
        while self.coeffs.len() < n {
            self.coeffs.push(BigInt::zero());
        }
    }

    /// gcd of the variable coefficients.
    fn coeff_gcd(&self) -> BigInt {
        self.coeffs.iter().fold(BigInt::zero(), |g, c| g.gcd(c))
    }

    /// `self += m·other` (same width).
    fn add_scaled(&mut self, other: &Row, m: &BigInt) {
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = a.add(&b.mul(m));
        }
        self.k = self.k.add(&other.k.mul(m));
    }

    fn scale(&mut self, m: &BigInt) {
        for c in self.coeffs.iter_mut() {
            *c = c.mul(m);
        }
        self.k = self.k.mul(m);
    }

    /// Substitutes `xcol := value` (where `value.coeffs[col]` is zero).
    fn substitute(&mut self, col: usize, value: &Row) {
        let b = std::mem::replace(&mut self.coeffs[col], BigInt::zero());
        if !b.is_zero() {
            self.add_scaled(value, &b);
        }
    }

    /// Divides everything by `d` exactly (equalities).
    fn exact_div(&mut self, d: &BigInt) {
        for c in self.coeffs.iter_mut() {
            *c = c.div_euclid(d);
        }
        self.k = self.k.div_euclid(d);
    }

    /// Divides the coefficients exactly and the constant rounding down
    /// (inequality tightening).
    fn tighten_div(&mut self, d: &BigInt) {
        for c in self.coeffs.iter_mut() {
            *c = c.div_euclid(d);
        }
        self.k = self.k.div_euclid(d);
    }
}

/// Pugh's symmetric residue: `mod̂(a, b) ∈ (−b/2, b/2]` with
/// `mod̂(a, b) ≡ a (mod b)`.
fn mod_hat(a: &BigInt, b: &BigInt) -> BigInt {
    let r = a.rem_euclid(b);
    if r.add(&r) > *b {
        r.sub(b)
    } else {
        r
    }
}

struct Problem {
    n_vars: usize,
    eqs: Vec<Row>,
    geqs: Vec<Row>,
}

impl Problem {
    fn new(n_vars: usize) -> Self {
        Problem {
            n_vars,
            eqs: Vec::new(),
            geqs: Vec::new(),
        }
    }

    fn sub(&self) -> Self {
        Problem::new(self.n_vars)
    }

    fn add_constraint(&mut self, c: &Constraint) -> bool {
        match c.kind() {
            ConstraintKind::Eq => {
                let r = Row::from_expr(c.expr(), self.n_vars);
                self.eqs.push(r);
            }
            ConstraintKind::Geq => {
                let r = Row::from_expr(c.expr(), self.n_vars);
                self.geqs.push(r);
            }
            ConstraintKind::Mod => {
                // f ≡ 0 (mod m)  ⇔  ∃ w : f − m·w = 0
                let w = self.add_var();
                let mut r = Row::from_expr(c.expr(), self.n_vars);
                r.pad_to(self.n_vars);
                r.coeffs[w] = BigInt::from(-c.modulus());
                self.eqs.push(r);
            }
        }
        true
    }

    fn add_var(&mut self) -> usize {
        let col = self.n_vars;
        self.n_vars += 1;
        for r in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            r.pad_to(col + 1);
        }
        col
    }

    /// Normalises rows; `false` on a trivially unsatisfiable constraint.
    fn normalize(&mut self) -> bool {
        let mut i = 0;
        while i < self.eqs.len() {
            let g = self.eqs[i].coeff_gcd();
            if g.is_zero() {
                if !self.eqs[i].k.is_zero() {
                    return false;
                }
                self.eqs.swap_remove(i);
                continue;
            }
            if !self.eqs[i].k.rem_euclid(&g).is_zero() {
                return false;
            }
            if g > BigInt::one() {
                self.eqs[i].exact_div(&g);
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.geqs.len() {
            let g = self.geqs[i].coeff_gcd();
            if g.is_zero() {
                if self.geqs[i].k.signum() < 0 {
                    return false;
                }
                self.geqs.swap_remove(i);
                continue;
            }
            if g > BigInt::one() {
                self.geqs[i].tighten_div(&g);
            }
            i += 1;
        }
        true
    }

    fn solve(&mut self, work: &mut usize) -> Outcome {
        loop {
            *work += 1;
            if *work > WORK_LIMIT {
                return Outcome::Unknown;
            }
            if !self.normalize() {
                return Outcome::Unsat;
            }
            if !self.eqs.is_empty() {
                // Prefer an equality with a unit coefficient (cheapest).
                let idx = self
                    .eqs
                    .iter()
                    .position(|e| e.coeffs.iter().any(|c| c.abs() == BigInt::one()))
                    .unwrap_or(0);
                if !self.eliminate_equality(idx) {
                    return Outcome::Unsat;
                }
                continue;
            }
            return self.solve_inequalities(work);
        }
    }

    /// Eliminates one equality (unit substitution or mod-reduction); always
    /// succeeds — big integers cannot overflow.
    fn eliminate_equality(&mut self, idx: usize) -> bool {
        let e = self.eqs.swap_remove(idx);
        if let Some(col) = e.coeffs.iter().position(|c| c.abs() == BigInt::one()) {
            let a = e.coeffs[col].clone();
            // a·x + rest = 0  ⇒  x = −a·rest  (a = ±1 so 1/a = a)
            let mut value = e.clone();
            value.coeffs[col] = BigInt::zero();
            value.scale(&a.neg());
            for r in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
                r.substitute(col, &value);
            }
            return true;
        }
        // Mod-reduction with m = |a_k| + 1 on the smallest coefficient.
        let col = (0..self.n_vars)
            .filter(|&c| !e.coeffs[c].is_zero())
            .min_by_key(|&c| e.coeffs[c].abs())
            .expect("non-trivial equality");
        let m = e.coeffs[col].abs().add(&BigInt::one());
        let sigma = self.add_var();
        let mut e = e;
        e.pad_to(self.n_vars);
        let mut aux = Row::zero(self.n_vars);
        for c in 0..self.n_vars - 1 {
            aux.coeffs[c] = mod_hat(&e.coeffs[c], &m);
        }
        aux.coeffs[sigma] = m.neg();
        aux.k = mod_hat(&e.k, &m);
        debug_assert!(aux.coeffs[col].abs() == BigInt::one());
        self.eqs.push(e);
        self.eqs.push(aux);
        true
    }

    fn solve_inequalities(&mut self, work: &mut usize) -> Outcome {
        let used: Vec<usize> = (0..self.n_vars)
            .filter(|&c| self.geqs.iter().any(|r| !r.coeffs[c].is_zero()))
            .collect();
        if used.is_empty() {
            return if self.geqs.iter().all(|r| r.k.signum() >= 0) {
                Outcome::Sat
            } else {
                Outcome::Unsat
            };
        }

        // Same variable-choice heuristic as the production solver: prefer an
        // exact elimination, then the fewest bound pairs; drop one-sided
        // columns immediately.
        let one = BigInt::one();
        let minus_one = one.neg();
        let mut best: Option<(bool, usize, usize)> = None;
        for &col in &used {
            let lowers = self
                .geqs
                .iter()
                .filter(|r| r.coeffs[col].signum() > 0)
                .count();
            let uppers = self
                .geqs
                .iter()
                .filter(|r| r.coeffs[col].signum() < 0)
                .count();
            if lowers == 0 || uppers == 0 {
                self.geqs.retain(|r| r.coeffs[col].is_zero());
                return self.solve_inequalities(work);
            }
            let exact = self.geqs.iter().all(|r| r.coeffs[col] >= minus_one)
                || self.geqs.iter().all(|r| r.coeffs[col] <= one);
            let cost = lowers * uppers;
            let candidate = (exact, cost, col);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    if (candidate.0 && !b.0) || (candidate.0 == b.0 && candidate.1 < b.1) {
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
        let (exact, _cost, col) = best.expect("at least one used variable");

        let lowers: Vec<Row> = self
            .geqs
            .iter()
            .filter(|r| r.coeffs[col].signum() > 0)
            .cloned()
            .collect();
        let uppers: Vec<Row> = self
            .geqs
            .iter()
            .filter(|r| r.coeffs[col].signum() < 0)
            .cloned()
            .collect();
        let rest: Vec<Row> = self
            .geqs
            .iter()
            .filter(|r| r.coeffs[col].is_zero())
            .cloned()
            .collect();

        let mut real = self.sub();
        let mut dark = self.sub();
        real.geqs.extend(rest.iter().cloned());
        dark.geqs.extend(rest.iter().cloned());
        for lo in &lowers {
            let a = lo.coeffs[col].clone();
            for up in &uppers {
                let b = up.coeffs[col].neg();
                // a·x + f ≥ 0  ∧  −b·x + g ≥ 0   ⇒ (reals)  a·g + b·f ≥ 0
                let mut combined = up.clone();
                combined.scale(&a);
                combined.add_scaled(lo, &b);
                debug_assert!(combined.coeffs[col].is_zero());
                real.geqs.push(combined.clone());
                let mut darkc = combined;
                let margin = a.sub(&one).mul(&b.sub(&one));
                darkc.k = darkc.k.sub(&margin);
                dark.geqs.push(darkc);
            }
        }

        *work += lowers.len() * uppers.len();
        match real.solve(work) {
            Outcome::Unsat => return Outcome::Unsat,
            Outcome::Unknown => return Outcome::Unknown,
            Outcome::Sat => {}
        }
        if exact {
            return Outcome::Sat;
        }
        match dark.solve(work) {
            Outcome::Sat => return Outcome::Sat,
            Outcome::Unknown => return Outcome::Unknown,
            Outcome::Unsat => {}
        }

        // Splinters close the real/dark gap: a·x + f = j for each lower
        // bound, 0 ≤ j ≤ (a·bmax − a − bmax)/bmax.
        let bmax = uppers
            .iter()
            .map(|r| r.coeffs[col].neg())
            .max()
            .unwrap_or_else(BigInt::one);
        for lo in &lowers {
            let a = lo.coeffs[col].clone();
            let max_j = a.mul(&bmax).sub(&a).sub(&bmax).div_euclid(&bmax);
            let mut j = BigInt::zero();
            while j <= max_j {
                *work += 1;
                if *work > WORK_LIMIT {
                    return Outcome::Unknown;
                }
                let mut sub = self.sub();
                sub.geqs = self.geqs.clone();
                let mut eq = lo.clone();
                eq.k = eq.k.sub(&j);
                sub.eqs.push(eq);
                match sub.solve(work) {
                    Outcome::Sat => return Outcome::Sat,
                    Outcome::Unknown => return Outcome::Unknown,
                    Outcome::Unsat => {}
                }
                j = j.add(&BigInt::one());
            }
        }
        Outcome::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn le(coeffs: &[i64], c: i64) -> LinExpr {
        LinExpr::from_coeffs(coeffs.to_vec(), c)
    }

    #[test]
    fn agrees_on_small_classics() {
        // 5 <= x <= 3 is empty; 0 <= x <= 10 is not.
        let empty = vec![Constraint::geq(le(&[1], -5)), Constraint::geq(le(&[-1], 3))];
        assert_eq!(reference_is_feasible(&empty, 1), Some(false));
        let ok = vec![Constraint::geq(le(&[1], 0)), Constraint::geq(le(&[-1], 10))];
        assert_eq!(reference_is_feasible(&ok, 1), Some(true));
        // 2x = 5 has no integer solution.
        assert_eq!(
            reference_is_feasible(&[Constraint::eq(le(&[2], -5))], 1),
            Some(false)
        );
        // Pugh's dark-shadow gap example.
        let gap = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 45)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 4)),
        ];
        assert_eq!(reference_is_feasible(&gap, 2), Some(false));
        // Congruences: x even, 5 <= x <= 5.
        let cong = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::geq(le(&[1], -5)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert_eq!(reference_is_feasible(&cong, 1), Some(false));
    }

    #[test]
    fn decides_systems_the_narrow_solver_overflows_on() {
        // Coefficients near i64::MAX: the production solver degrades to a
        // typed overflow; this oracle must still decide exactly.
        let m = i64::MAX / 2;
        // m·x ≥ m  ∧  −m·x ≥ −m  ⇒  x = 1: feasible.
        let cs = vec![Constraint::geq(le(&[m], -m)), Constraint::geq(le(&[-m], m))];
        assert_eq!(reference_is_feasible(&cs, 1), Some(true));
        // m·x = m − 1 with m > 2: no integer solution.
        let cs = vec![Constraint::eq(le(&[m], -(m - 1)))];
        assert_eq!(reference_is_feasible(&cs, 1), Some(false));
    }
}
