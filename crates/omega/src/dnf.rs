//! DNF constraint-set engine: conjunct coalescing and its controls.
//!
//! A [`Relation`](crate::Relation) is a finite union (disjunctive normal
//! form) of [`Conjunct`](crate::Conjunct)s, and the relation algebra grows
//! that union multiplicatively: composition and intersection cross-multiply
//! the operand disjuncts, and set difference replaces every conjunct by one
//! piece per negated constraint of the subtrahend.  Piecewise kernels and
//! the sample-and-subtract enumeration loop both hit this blow-up head on —
//! and most of the generated disjuncts are duplicates of or strict subsets
//! of disjuncts already present.
//!
//! This module provides the *coalescing* pass that keeps the union small:
//!
//! * **Dedup** — structurally identical conjuncts (same canonical form, as
//!   keyed by [`Conjunct::structural_hash`]) are collapsed to one.
//! * **Subsumption** — a conjunct that provably contains another (decided
//!   syntactically by [`Conjunct::subsumes`], no solver call) absorbs it.
//!
//! Coalescing is applied in two regimes.  The *canonicalising* uses —
//! [`Relation::simplified`](crate::Relation::simplified) and the tail of
//! [`Relation::subtract`](crate::Relation::subtract) — always coalesce, so
//! a relation's simplified form does not depend on any mode switch.  The
//! *eager* uses — at every `union` / `intersect` / `compose` construction
//! site and between the rounds of `subtract` — are gated by the thread-local
//! toggle below, which exists so the measurement harness can A/B the eager
//! pass inside one binary.  Turning it off never changes a verdict, only how
//! much intermediate-disjunct work the algebra performs.

use crate::conjunct::Conjunct;
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

thread_local! {
    /// Whether the eager coalescing sites are active on this thread.
    static EAGER: Cell<bool> = const { Cell::new(true) };

    /// Conjuncts dropped by coalescing on this thread (monotonic).
    static CONJUNCTS_SUBSUMED: Cell<u64> = const { Cell::new(0) };

    /// Overflow-degraded feasibility queries re-decided exactly by the
    /// big-integer reference solver on this thread (monotonic).
    static BIGINT_FALLBACKS: Cell<u64> = const { Cell::new(0) };
}

/// Enables or disables the *eager* coalescing sites on this thread and
/// returns the previous setting.  Defaults to enabled.
///
/// **Measurement escape hatch.**  With `false`, `union` / `intersect` /
/// `compose` and the intermediate rounds of `subtract` keep every disjunct
/// they generate, as the algebra did before the DNF engine existed; the
/// canonicalising coalesce inside [`Relation::simplified`](crate::Relation::simplified)
/// still runs, so verdicts and simplified forms are identical in both
/// modes — only the amount of intermediate work differs.
pub fn set_eager_simplification(on: bool) -> bool {
    EAGER.with(|e| e.replace(on))
}

/// Whether the eager coalescing sites are active on this thread.
pub fn eager_simplification() -> bool {
    EAGER.with(|e| e.get())
}

/// Total conjuncts dropped by coalescing (dedup + subsumption) on this
/// thread (never reset).
pub fn conjuncts_subsumed_events() -> u64 {
    CONJUNCTS_SUBSUMED.with(|c| c.get())
}

/// Total overflow-degraded feasibility queries re-decided exactly by the
/// big-integer fallback on this thread (never reset).
pub fn bigint_fallback_events() -> u64 {
    BIGINT_FALLBACKS.with(|c| c.get())
}

pub(crate) fn note_conjuncts_subsumed(n: u64) {
    if n > 0 {
        CONJUNCTS_SUBSUMED.with(|c| c.set(c.get() + n));
    }
}

pub(crate) fn note_bigint_fallback() {
    BIGINT_FALLBACKS.with(|c| c.set(c.get() + 1));
}

/// Coalesces a disjunct list: drops structural duplicates, then drops every
/// conjunct subsumed by another ([`Conjunct::subsumes`]).  Keeps the first
/// occurrence and the given order of the survivors, so the pass is
/// deterministic and idempotent.  Purely syntactic — no solver calls — and
/// set-preserving: the union of the result equals the union of the input.
pub(crate) fn coalesce(conjuncts: Vec<Conjunct>) -> Vec<Conjunct> {
    if conjuncts.len() <= 1 {
        return conjuncts;
    }
    let _span = arrayeq_trace::span_with("simplify", || {
        vec![arrayeq_trace::u("conjuncts", conjuncts.len() as u64)]
    });
    let t0 = arrayeq_trace::metrics_timer();
    let before = conjuncts.len();

    // Pass 1: structural dedup.  The hash absorbs constraint permutation,
    // duplication, gcd scaling and existential renaming, so presentation
    // variants of one disjunct collapse; debug builds cross-check the
    // canonical forms so a 64-bit collision fails loudly (the same guard the
    // feasibility memo uses).
    let mut seen: HashMap<u64, usize> = HashMap::with_capacity(conjuncts.len());
    let mut kept: Vec<Conjunct> = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        match seen.entry(c.structural_hash()) {
            Entry::Occupied(_e) => {
                #[cfg(debug_assertions)]
                {
                    let twin = &kept[*_e.get()];
                    debug_assert_eq!(
                        (twin.canonical_constraints(), twin.n_exists()),
                        (c.canonical_constraints(), c.n_exists()),
                        "structural_hash collision while coalescing conjuncts"
                    );
                }
            }
            Entry::Vacant(v) => {
                v.insert(kept.len());
                kept.push(c);
            }
        }
    }

    // Pass 2: pairwise subsumption.  Earlier disjuncts win ties; a dropped
    // disjunct never gets to drop others (its subsumer — a superset — keeps
    // doing that job).
    let mut alive = vec![true; kept.len()];
    for i in 0..kept.len() {
        if !alive[i] {
            continue;
        }
        for j in 0..kept.len() {
            if i != j && alive[j] && kept[i].subsumes(&kept[j]) {
                alive[j] = false;
            }
        }
    }
    let mut alive_iter = alive.iter();
    kept.retain(|_| *alive_iter.next().expect("alive mask length"));

    note_conjuncts_subsumed((before - kept.len()) as u64);
    arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Simplify, t0);
    kept
}

/// Structural dedup only (no subsumption): the cheap always-on pass used at
/// relation construction time.
pub(crate) fn dedup(conjuncts: Vec<Conjunct>) -> Vec<Conjunct> {
    if conjuncts.len() <= 1 {
        return conjuncts;
    }
    let before = conjuncts.len();
    let mut seen: HashMap<u64, ()> = HashMap::with_capacity(conjuncts.len());
    let mut kept: Vec<Conjunct> = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        if let Entry::Vacant(v) = seen.entry(c.structural_hash()) {
            v.insert(());
            kept.push(c);
        }
    }
    note_conjuncts_subsumed((before - kept.len()) as u64);
    kept
}
