//! Overflow-checked arithmetic support for the Omega test.
//!
//! Every verdict of the equivalence checker bottoms out in integer
//! feasibility, and the elimination steps of the Omega test multiply and
//! combine `i64` coefficients.  On large-coefficient systems those products
//! can exceed `i64` — and a silent wrap would change a *verdict*, not crash.
//! The solver therefore computes every potentially-growing operation in
//! `i128` and, when even the widened result does not fit back into the `i64`
//! representation, raises the typed [`ArithOverflow`] condition instead of
//! wrapping or panicking.
//!
//! Overflow propagates out-of-band: the solver records it in a sticky
//! per-thread flag ([`note_arith_overflow`]) and conservatively reports the
//! affected query as "feasible" (the same direction as the work limit — it
//! can only cause a spurious *inequivalence*, never a spurious equivalence).
//! The checker polls the flag via [`take_arith_overflow`] and downgrades the
//! whole verdict to `Inconclusive` with a typed reason, so an overflow can
//! never be mistaken for a real decision.

use std::cell::Cell;

/// Typed arithmetic-overflow condition raised by the checked solver paths.
///
/// Carried as the `Err` of the `try_*` operations on
/// [`LinExpr`](crate::LinExpr); the solver converts it into the sticky
/// per-thread flag read by [`take_arith_overflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArithOverflow;

impl std::fmt::Display for ArithOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("arithmetic overflow beyond i128 widening")
    }
}

impl std::error::Error for ArithOverflow {}

thread_local! {
    /// Sticky flag: an overflow occurred in a feasibility query on this
    /// thread since the last [`take_arith_overflow`].
    static OVERFLOW_PENDING: Cell<bool> = const { Cell::new(false) };

    /// Total overflow events on this thread (monotonic; for stats/tests).
    static OVERFLOW_EVENTS: Cell<u64> = const { Cell::new(0) };

    /// When set, the solver skips the checked paths (raw `i64` ops).  Bench
    /// harness escape hatch only — see [`set_unchecked_solver_arithmetic`].
    static UNCHECKED: Cell<bool> = const { Cell::new(false) };
}

/// Records an arithmetic overflow: sets the sticky per-thread flag.
pub(crate) fn note_arith_overflow() {
    OVERFLOW_PENDING.with(|p| p.set(true));
    OVERFLOW_EVENTS.with(|e| e.set(e.get() + 1));
}

/// Whether an overflow is pending on this thread (does not clear the flag).
pub fn arith_overflow_pending() -> bool {
    OVERFLOW_PENDING.with(|p| p.get())
}

/// Records one synthetic overflow event on this thread, exactly as a real
/// checked-arithmetic overflow would.  Fault-injection hook for tests of
/// the degradation plumbing above the solver; real overflows are covered
/// by the omega-level oracle corpus.
#[doc(hidden)]
pub fn inject_arith_overflow() {
    note_arith_overflow();
}

/// Reads *and clears* this thread's sticky overflow flag.
///
/// The checker calls this at its budget-poll points and at the end of every
/// run: a `true` means some feasibility verdict since the previous call was
/// degraded by overflow (conservatively reported "feasible") and the
/// enclosing verdict must become `Inconclusive`.  Callers starting a fresh
/// verification also call it once up front to discard any stale flag left by
/// unrelated work on the same thread.
pub fn take_arith_overflow() -> bool {
    OVERFLOW_PENDING.with(|p| p.replace(false))
}

/// Total overflow events recorded on this thread (never reset).
pub fn arith_overflow_events() -> u64 {
    OVERFLOW_EVENTS.with(|e| e.get())
}

/// Disables (or re-enables) the checked arithmetic paths on this thread.
///
/// **Benchmark escape hatch only.**  With `true`, the solver runs the raw
/// `i64` operations it used before overflow checking existed, so the
/// per-release overhead of the checked paths can be measured A/B inside one
/// binary.  Verdicts on overflow-afflicted inputs are *unsound* in this
/// mode; never enable it outside a measurement harness.
#[doc(hidden)]
pub fn set_unchecked_solver_arithmetic(on: bool) {
    UNCHECKED.with(|u| u.set(on));
}

/// Whether the bench-only unchecked mode is active on this thread.
pub(crate) fn unchecked_arith() -> bool {
    UNCHECKED.with(|u| u.get())
}

/// Narrows a widened intermediate back into `i64`.
#[inline]
pub(crate) fn narrow(v: i128) -> Result<i64, ArithOverflow> {
    i64::try_from(v).map_err(|_| ArithOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_sticky_and_take_clears() {
        assert!(!arith_overflow_pending());
        note_arith_overflow();
        note_arith_overflow();
        assert!(arith_overflow_pending());
        assert!(arith_overflow_pending(), "peek does not clear");
        assert!(take_arith_overflow());
        assert!(!take_arith_overflow(), "take clears");
        assert!(arith_overflow_events() >= 2);
    }

    #[test]
    fn narrow_checks_i64_range() {
        assert_eq!(narrow(42), Ok(42));
        assert_eq!(narrow(i64::MAX as i128), Ok(i64::MAX));
        assert_eq!(narrow(i64::MIN as i128), Ok(i64::MIN));
        assert_eq!(narrow(i64::MAX as i128 + 1), Err(ArithOverflow));
        assert_eq!(narrow(i64::MIN as i128 - 1), Err(ArithOverflow));
    }
}
