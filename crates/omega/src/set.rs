//! Integer tuple sets — relations without output dimensions.

use crate::conjunct::Conjunct;
use crate::constraint::Constraint;
use crate::relation::Relation;
use crate::space::{Space, VarKind};
use crate::Result;

/// A set of integer tuples described by (piecewise-)affine constraints.
///
/// `Set` is a thin wrapper around a [`Relation`] with zero output dimensions;
/// it exists so that domains, ranges and iteration domains have their own
/// type and cannot be confused with mappings.
///
/// ```
/// use arrayeq_omega::Set;
///
/// # fn main() -> Result<(), arrayeq_omega::OmegaError> {
/// let evens = Set::parse("{ [k] : k % 2 = 0 and 0 <= k < 10 }")?;
/// assert!(evens.contains(&[4], &[]));
/// assert!(!evens.contains(&[5], &[]));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Set {
    inner: Relation,
}

impl Set {
    /// The empty set over `space`.
    ///
    /// # Panics
    ///
    /// Panics if `space` has output dimensions.
    pub fn empty(space: Space) -> Self {
        assert_eq!(space.n_out(), 0, "set space must have no output dims");
        Set {
            inner: Relation::empty(space),
        }
    }

    /// The universe set over `space`.
    ///
    /// # Panics
    ///
    /// Panics if `space` has output dimensions.
    pub fn universe(space: Space) -> Self {
        assert_eq!(space.n_out(), 0, "set space must have no output dims");
        Set {
            inner: Relation::universe(space),
        }
    }

    /// Parses the textual notation, e.g. `"[N] -> { [i] : 0 <= i < N }"`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OmegaError::Parse`] on malformed input or if the text
    /// denotes a relation rather than a set.
    pub fn parse(text: &str) -> Result<Set> {
        crate::parse::parse_set(text)
    }

    /// Wraps a relation with no output dims as a set.
    ///
    /// # Panics
    ///
    /// Panics if the relation has output dimensions.
    pub fn from_relation(r: Relation) -> Self {
        assert_eq!(r.space().n_out(), 0, "set must have no output dims");
        Set { inner: r }
    }

    /// The underlying relation (zero output dims).
    pub fn as_relation(&self) -> &Relation {
        &self.inner
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        self.inner.space()
    }

    /// The conjuncts of this set.
    pub fn conjuncts(&self) -> &[Conjunct] {
        self.inner.conjuncts()
    }

    /// Whether the set contains `point` for the given parameter values.
    pub fn contains(&self, point: &[i64], params: &[i64]) -> bool {
        self.inner.contains(point, &[], params)
    }

    /// Whether the set is empty for all parameter values.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Union of two sets.
    ///
    /// # Errors
    ///
    /// Returns a space-mismatch error if the spaces are incompatible.
    pub fn union(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            inner: self.inner.union(&other.inner)?,
        })
    }

    /// Intersection of two sets.
    ///
    /// # Errors
    ///
    /// Returns a space-mismatch error if the spaces are incompatible.
    pub fn intersect(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            inner: self.inner.intersect(&other.inner)?,
        })
    }

    /// Difference `self \ other`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::subtract`].
    pub fn subtract(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            inner: self.inner.subtract(&other.inner)?,
        })
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::subtract`].
    pub fn is_subset(&self, other: &Set) -> Result<bool> {
        self.inner.is_subset(&other.inner)
    }

    /// Whether the two sets are equal.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::subtract`].
    pub fn is_equal(&self, other: &Set) -> Result<bool> {
        self.inner.is_equal(&other.inner)
    }

    /// Simplified copy (drops empty conjuncts, coalesces duplicated and
    /// subsumed disjuncts).
    pub fn simplified(&self) -> Set {
        Set {
            inner: self.inner.simplified(true),
        }
    }

    /// Minimal-rendering copy for diagnostics (see [`Relation::minimized`]):
    /// simplified, with constraints implied by each conjunct's remaining
    /// constraints dropped.  Set-preserving, so sampling from the result is
    /// exactly as sound as sampling from the original.
    pub fn minimized(&self) -> Set {
        Set {
            inner: self.inner.minimized(),
        }
    }

    /// Gist-style simplification: drops from `self` every constraint implied
    /// by `context` (together with the conjunct's remaining constraints),
    /// so that `self.gist(c) ∧ c == self ∧ c`.  Failing-domain reports use
    /// this to show only what the context does *not* already imply.
    ///
    /// The reduction runs per conjunct against a single quantifier-free
    /// context conjunct; a disjunctive or quantified context falls back to
    /// [`Set::simplified`] (still sound, just no gisting).
    ///
    /// # Errors
    ///
    /// Returns a space-mismatch error if the spaces are incompatible.
    pub fn gist(&self, context: &Set) -> Result<Set> {
        self.space().check_compatible(context.space(), "gist")?;
        let ctx = context.inner.simplified(true);
        let [ctx_conjunct] = ctx.conjuncts() else {
            return Ok(self.simplified());
        };
        if !ctx_conjunct.is_quantifier_free() {
            return Ok(self.simplified());
        }
        let ctx_conjunct = ctx_conjunct.clone().with_space(self.space().clone());
        let mut out = Vec::with_capacity(self.conjuncts().len());
        for c in self.inner.simplified(true).conjuncts() {
            let mut c = c.clone();
            c.gist_against(&ctx_conjunct);
            out.push(c);
        }
        Ok(Set {
            inner: Relation::from_conjuncts(self.space().clone(), out),
        })
    }

    /// Splits the set on a parameter threshold: returns
    /// `(self ∧ param ≤ c, self ∧ param ≥ c + 1)` — the parameter-context
    /// split used to branch a parametric verification into `N ≤ c` and
    /// `N > c` regimes.  The two halves partition `self` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a valid parameter index of this set's space.
    pub fn split_at_param(&self, p: usize, c: i64) -> (Set, Set) {
        assert!(
            p < self.space().n_param(),
            "parameter index {p} out of range"
        );
        let mut le = Vec::with_capacity(self.conjuncts().len());
        let mut gt = Vec::with_capacity(self.conjuncts().len());
        for conj in self.conjuncts() {
            let col = conj.col(VarKind::Param, p);
            // param ≤ c  ⇔  −param + c ≥ 0
            let mut a = conj.clone();
            let mut e = a.zero_expr();
            e.set_coeff(col, -1);
            e.set_constant(c);
            a.add(Constraint::geq(e));
            le.push(a);
            // param ≥ c + 1  ⇔  param − (c + 1) ≥ 0; at c = i64::MAX the
            // upper branch is empty and is simply not generated.
            if let Some(neg) = c.checked_add(1).and_then(i64::checked_neg) {
                let mut b = conj.clone();
                let mut e = b.zero_expr();
                e.set_coeff(col, 1);
                e.set_constant(neg);
                b.add(Constraint::geq(e));
                gt.push(b);
            }
        }
        (
            Set {
                inner: Relation::from_conjuncts(self.space().clone(), le),
            },
            Set {
                inner: Relation::from_conjuncts(self.space().clone(), gt),
            },
        )
    }

    /// Returns a concrete member of the set as `(point, params)`, or `None`
    /// when the set is empty (see [`Relation::sample_point`]).
    pub fn sample_point(&self) -> Option<(Vec<i64>, Vec<i64>)> {
        self.inner.sample_point().map(|s| (s.input, s.params))
    }

    /// The singleton set `{ point }` over this set's space (the parameters
    /// stay unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the set's dimension count.
    pub fn singleton(&self, point: &[i64]) -> Set {
        assert_eq!(point.len(), self.space().n_in(), "wrong point arity");
        let mut c = Conjunct::universe(self.space().clone());
        for (d, &v) in point.iter().enumerate() {
            let mut e = c.var_expr(VarKind::In, d);
            e.set_constant(-v);
            c.add(Constraint::eq(e));
        }
        Set {
            inner: Relation::from_conjuncts(self.space().clone(), vec![c]),
        }
    }

    /// The set with the single tuple `point` removed (for *all* parameter
    /// values).  Used to enumerate several distinct members:
    /// sample, subtract, sample again.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the set's dimension count.
    pub fn without_point(&self, point: &[i64]) -> Result<Set> {
        self.subtract(&self.singleton(point))
    }

    /// Enumerates up to `max` distinct members by repeated
    /// sample-and-subtract, returning each point with the parameter values
    /// it was sampled under.  Stops early when the set is exhausted (so for
    /// finite sets smaller than `max` this is an exact enumeration).
    pub fn sample_points(&self, max: usize) -> Vec<(Vec<i64>, Vec<i64>)> {
        let mut out = Vec::new();
        let mut remaining = self.simplified();
        while out.len() < max {
            let Some((point, params)) = remaining.sample_point() else {
                break;
            };
            let Ok(next) = remaining.without_point(&point) else {
                break;
            };
            remaining = next;
            out.push((point, params));
        }
        out
    }

    /// Embeds the set's constraints into a relation space, constraining the
    /// relation's *input* tuple to lie in this set (used by
    /// [`Relation::restrict_domain`]).
    pub(crate) fn embed_as_domain_constraint(&self, rel_space: &Space) -> Relation {
        self.embed(rel_space, VarKind::In)
    }

    /// Embeds the set's constraints into a relation space, constraining the
    /// relation's *output* tuple to lie in this set (used by
    /// [`Relation::restrict_range`]).
    pub(crate) fn embed_as_range_constraint(&self, rel_space: &Space) -> Relation {
        self.embed(rel_space, VarKind::Out)
    }

    fn embed(&self, rel_space: &Space, target: VarKind) -> Relation {
        let n_dims = self.space().n_in();
        let n_param = self.space().n_param();
        let mut conjuncts = Vec::with_capacity(self.conjuncts().len());
        for c in self.conjuncts() {
            let n_ex = c.n_exists();
            let mut out = Conjunct::universe(rel_space.clone());
            let ex_base = out.add_exists(n_ex);
            let n_total = out.n_vars();
            let mut map = Vec::with_capacity(c.n_vars());
            for d in 0..n_dims {
                map.push(rel_space.col(target, d, 0));
            }
            for p in 0..n_param {
                map.push(rel_space.col(VarKind::Param, p, 0));
            }
            for e in 0..n_ex {
                map.push(ex_base + e);
            }
            for cons in c.constraints() {
                out.add(cons.remapped(&map, n_total));
            }
            conjuncts.push(out);
        }
        Relation::from_conjuncts(rel_space.clone(), conjuncts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_and_empty() {
        let space = Space::set(&["i"], &[]);
        assert!(Set::empty(space.clone()).is_empty());
        let u = Set::universe(space);
        assert!(u.contains(&[1234], &[]));
        assert!(!u.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = Set::parse("{ [i] : 0 <= i < 10 }").unwrap();
        let b = Set::parse("{ [i] : 5 <= i < 20 }").unwrap();
        assert!(a.union(&b).unwrap().contains(&[15], &[]));
        assert!(a.intersect(&b).unwrap().contains(&[7], &[]));
        assert!(!a.intersect(&b).unwrap().contains(&[2], &[]));
        assert!(a.subtract(&b).unwrap().contains(&[2], &[]));
        assert!(!a.subtract(&b).unwrap().contains(&[7], &[]));
        assert!(a.intersect(&b).unwrap().is_subset(&a).unwrap());
        assert!(!a.is_subset(&b).unwrap());
        assert!(a.is_equal(&a).unwrap());
    }

    #[test]
    fn strided_sets() {
        let evens = Set::parse("{ [k] : exists j : k = 2j and 0 <= k < 100 }").unwrap();
        let via_mod = Set::parse("{ [k] : k % 2 = 0 and 0 <= k < 100 }").unwrap();
        assert!(evens.is_equal(&via_mod).unwrap());
        let all = Set::parse("{ [k] : 0 <= k < 100 }").unwrap();
        let odds = all.subtract(&evens).unwrap();
        assert!(odds.contains(&[3], &[]));
        assert!(!odds.contains(&[4], &[]));
        assert!(odds
            .is_equal(&Set::parse("{ [k] : k % 2 = 1 and 0 <= k < 100 }").unwrap())
            .unwrap());
    }

    #[test]
    fn parameterised_set() {
        let s = Set::parse("[N] -> { [i] : 0 <= i < N }").unwrap();
        assert!(s.contains(&[5], &[10]));
        assert!(!s.contains(&[5], &[5]));
    }

    #[test]
    fn multi_dim_set() {
        let s = Set::parse("{ [i, j] : 0 <= i < 4 and 0 <= j <= i }").unwrap();
        assert!(s.contains(&[3, 2], &[]));
        assert!(!s.contains(&[2, 3], &[]));
    }
}
