//! Exact integer feasibility of a conjunction of affine constraints.
//!
//! This module implements the decision procedure of the Omega test
//! (W. Pugh, *The Omega test: a fast and practical integer programming
//! algorithm for dependence analysis*, 1991) specialised to what the
//! equivalence checker needs: given a list of equalities and inequalities
//! over `n` integer variables (all existentially quantified), decide whether
//! an integer solution exists.
//!
//! The procedure:
//!
//! 1. **Equality elimination.**  Equalities are normalised by their gcd (a
//!    non-divisible constant proves infeasibility) and eliminated one by one:
//!    a variable with a unit coefficient is substituted away; otherwise
//!    Pugh's *mod-reduction* introduces a fresh variable `σ` and an auxiliary
//!    equality with a guaranteed unit coefficient, shrinking coefficients
//!    until substitution applies.
//! 2. **Inequality elimination (Fourier–Motzkin with shadows).**  Variables
//!    are eliminated pairwise.  When either side of every bound pair has a
//!    unit coefficient the elimination is exact.  Otherwise the *real shadow*
//!    (unsatisfiable ⇒ unsatisfiable) and the *dark shadow*
//!    (satisfiable ⇒ satisfiable) are tried, and the remaining gap is closed
//!    by *splinters*: a finite case split on `a·x + f = j` that reduces to the
//!    equality case.
//!
//! The entry points are [`is_feasible`] (a yes/no oracle) and [`find_model`]
//! (model extraction: a concrete integer point satisfying the system).  A
//! work limit bounds the (rare) exponential blow-up; when it is hit the
//! procedure conservatively reports "feasible", which is the sound direction
//! for the equivalence checker (it can only cause a spurious *inequivalence*
//! verdict, never a spurious equivalence).
//!
//! ## Model extraction
//!
//! [`find_model`] runs the same elimination order as the decision procedure
//! and reconstructs a witness point by back-substitution:
//!
//! * every equality eliminated by substitution records `x := value(rest)`;
//!   once the fully-eliminated system is solved the recorded substitutions
//!   are replayed in reverse to recover the eliminated coordinates;
//! * a Fourier–Motzkin step first solves the projected problem, then places
//!   the eliminated variable inside `[max lower bound, min upper bound]`
//!   evaluated at the sub-model.  For *exact* eliminations the interval is
//!   guaranteed to contain an integer; for inexact ones the *dark shadow* is
//!   used (Pugh's theorem guarantees an integer in the interval at any dark
//!   shadow point), and when only the gap remains, each *splinter* carries
//!   the full original system plus the splintering equality, so a splinter
//!   model is already a model of the original problem;
//! * `Mod` constraints are lowered to equalities with fresh columns up front,
//!   and columns introduced during the run (congruence witnesses, σ variables
//!   of the mod-reduction) are truncated away at the end.

use crate::arith::{narrow, note_arith_overflow, unchecked_arith, ArithOverflow};
use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::{floor_div, mod_hat, LinExpr};

/// Maximum number of elimination steps before giving up and conservatively
/// reporting "feasible".  Generous for the problem sizes the checker builds.
const WORK_LIMIT: usize = 200_000;

/// Outcome of a feasibility query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Feasibility {
    /// An integer solution exists.
    Feasible,
    /// No integer solution exists.
    Infeasible,
    /// The work limit was exceeded; treat as (possibly) feasible.
    Unknown,
    /// Coefficient arithmetic overflowed `i64` even after `i128` widening;
    /// treat as (possibly) feasible.  The sticky per-thread flag
    /// ([`crate::take_arith_overflow`]) is set whenever this is produced, so
    /// the checker downgrades the enclosing verdict to inconclusive.
    Overflow,
}

impl Feasibility {
    /// Collapses `Unknown` and `Overflow` into the conservative `true`.
    pub(crate) fn as_bool(self) -> bool {
        !matches!(self, Feasibility::Infeasible)
    }
}

/// Decides integer feasibility of the conjunction of `constraints` over
/// `n_vars` variables (all of them existential for the purposes of the test).
///
/// `Mod` constraints are lowered to equalities with a fresh variable before
/// the elimination starts.
pub(crate) fn is_feasible(constraints: &[Constraint], n_vars: usize) -> Feasibility {
    let mut p = Problem::new(n_vars);
    for c in constraints {
        if !p.add_constraint(c) {
            return Feasibility::Infeasible;
        }
    }
    let mut work = 0usize;
    match p.solve(&mut work) {
        Outcome::Sat(_) => Feasibility::Feasible,
        Outcome::Unsat => Feasibility::Infeasible,
        Outcome::Unknown => Feasibility::Unknown,
        Outcome::Overflow => {
            note_arith_overflow();
            Feasibility::Overflow
        }
    }
}

/// Outcome of a model-extraction query (see [`find_model`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ModelOutcome {
    /// A satisfying assignment of the first `n_vars` columns.
    Model(Vec<i64>),
    /// No integer solution exists.
    Infeasible,
    /// The work limit was exceeded (or a defensive invariant failed); no
    /// model could be produced.  Treat as "possibly feasible, no witness".
    Unknown,
}

/// Finds a concrete integer point satisfying the conjunction of
/// `constraints` over `n_vars` variables, running the same elimination order
/// as [`is_feasible`] and back-substituting along it (see the module docs).
///
/// The returned vector assigns the original `n_vars` columns; auxiliary
/// columns introduced for congruences and mod-reductions are dropped.
pub(crate) fn find_model(constraints: &[Constraint], n_vars: usize) -> ModelOutcome {
    let mut p = Problem::new(n_vars);
    p.want_model = true;
    for c in constraints {
        if !p.add_constraint(c) {
            return ModelOutcome::Infeasible;
        }
    }
    let mut work = 0usize;
    match p.solve(&mut work) {
        Outcome::Sat(Some(mut m)) => {
            m.truncate(n_vars);
            debug_assert!(
                constraints.iter().all(|c| c.holds(&m)),
                "find_model produced a point violating its constraints"
            );
            ModelOutcome::Model(m)
        }
        Outcome::Sat(None) => ModelOutcome::Unknown,
        Outcome::Unsat => ModelOutcome::Infeasible,
        Outcome::Unknown => ModelOutcome::Unknown,
        Outcome::Overflow => {
            note_arith_overflow();
            ModelOutcome::Unknown
        }
    }
}

/// Result of one (sub-)problem solve: satisfiable (with a model when the
/// problem was asked for one), unsatisfiable, given up, or overflowed.
enum Outcome {
    Sat(Option<Vec<i64>>),
    Unsat,
    Unknown,
    /// Checked arithmetic overflowed `i64` even with `i128` intermediates.
    Overflow,
}

/// Internal solver state: equalities and inequalities as raw linear
/// expressions (`= 0` / `≥ 0`) over a growable set of columns.
struct Problem {
    n_vars: usize,
    eqs: Vec<LinExpr>,
    geqs: Vec<LinExpr>,
    /// Whether `solve` should reconstruct a satisfying point.  Off on the
    /// checker's hot path (`is_feasible`), so the decision procedure pays
    /// nothing for the machinery.
    want_model: bool,
    /// Whether coefficient arithmetic runs through the overflow-checked
    /// (`i128`-widened) paths.  Always on except under the bench harness's
    /// [`crate::set_unchecked_solver_arithmetic`] escape hatch.
    checked: bool,
}

impl Problem {
    fn new(n_vars: usize) -> Self {
        Problem {
            n_vars,
            eqs: Vec::new(),
            geqs: Vec::new(),
            want_model: false,
            checked: !unchecked_arith(),
        }
    }

    fn sub(&self) -> Self {
        let mut p = Problem::new(self.n_vars);
        p.want_model = self.want_model;
        p.checked = self.checked;
        p
    }

    /// `e *= k`, checked when this problem runs in checked mode.
    #[inline]
    fn scale_in_place(&self, e: &mut LinExpr, k: i64) -> Result<(), ArithOverflow> {
        if self.checked {
            e.try_scale_assign(k)
        } else {
            e.scale_assign(k);
            Ok(())
        }
    }

    /// `e += k·other`, checked when this problem runs in checked mode.
    #[inline]
    fn add_scaled_in_place(
        &self,
        e: &mut LinExpr,
        other: &LinExpr,
        k: i64,
    ) -> Result<(), ArithOverflow> {
        if self.checked {
            e.try_add_scaled_assign(other, k)
        } else {
            e.add_scaled_assign(other, k);
            Ok(())
        }
    }

    /// Adds a constraint; returns `false` if it is trivially unsatisfiable.
    fn add_constraint(&mut self, c: &Constraint) -> bool {
        let c = c.normalized();
        match c.trivial() {
            Some(true) => return true,
            Some(false) => return false,
            None => {}
        }
        match c.kind() {
            ConstraintKind::Eq => self.eqs.push(self.fit(c.expr())),
            ConstraintKind::Geq => self.geqs.push(self.fit(c.expr())),
            ConstraintKind::Mod => {
                // f ≡ 0 (mod m)  ⇔  ∃ w : f − m·w = 0
                let w = self.add_var();
                let mut e = self.fit(c.expr());
                e.set_coeff(w, -c.modulus());
                self.eqs.push(e);
            }
        }
        true
    }

    /// Pads an expression with zero columns up to the current variable count.
    fn fit(&self, e: &LinExpr) -> LinExpr {
        if e.n_vars() == self.n_vars {
            e.clone()
        } else {
            assert!(e.n_vars() < self.n_vars);
            e.extended(self.n_vars - e.n_vars())
        }
    }

    /// Adds a fresh variable column, padding all stored expressions.
    fn add_var(&mut self) -> usize {
        let col = self.n_vars;
        self.n_vars += 1;
        for e in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            *e = e.extended(1);
        }
        col
    }

    fn solve(&mut self, work: &mut usize) -> Outcome {
        // Substitutions recorded by the equality elimination, in elimination
        // order: `column := value(other columns)`.  Only filled when a model
        // was requested; replayed in reverse once the residual inequality
        // system has been solved, so every eliminated coordinate is recovered
        // from coordinates eliminated later (or surviving to the end).
        let mut subs: Vec<(usize, LinExpr)> = Vec::new();
        loop {
            *work += 1;
            if *work > WORK_LIMIT {
                return Outcome::Unknown;
            }
            if !self.normalize() {
                return Outcome::Unsat;
            }
            if let Some(eq_idx) = self.pick_equality() {
                match self.eliminate_equality(eq_idx, &mut subs) {
                    Ok(true) => continue,
                    Ok(false) => return Outcome::Unsat,
                    Err(ArithOverflow) => return Outcome::Overflow,
                }
            }
            // Only inequalities remain.
            let mut outcome = self.solve_inequalities(work);
            if let Outcome::Sat(Some(model)) = &mut outcome {
                debug_assert_eq!(model.len(), self.n_vars);
                for (col, value) in subs.iter().rev() {
                    // `value` was recorded before later columns existed; it
                    // cannot use them, so evaluating over its own prefix of
                    // the model is exact.
                    let prefix = &model[..value.n_vars()];
                    model[*col] = if self.checked {
                        match value.try_eval(prefix) {
                            Ok(v) => v,
                            Err(ArithOverflow) => return Outcome::Overflow,
                        }
                    } else {
                        value.eval(prefix)
                    };
                }
            }
            return outcome;
        }
    }

    /// Normalises all stored expressions; returns `false` on a trivially
    /// unsatisfiable constraint.
    fn normalize(&mut self) -> bool {
        let mut i = 0;
        while i < self.eqs.len() {
            let e = &self.eqs[i];
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant() != 0 {
                    return false;
                }
                self.eqs.swap_remove(i);
                continue;
            }
            if e.constant() % g != 0 {
                return false;
            }
            if g > 1 {
                self.eqs[i] = e.exact_div(g);
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.geqs.len() {
            let e = &self.geqs[i];
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant() < 0 {
                    return false;
                }
                self.geqs.swap_remove(i);
                continue;
            }
            if g > 1 {
                let mut coeffs = Vec::with_capacity(e.n_vars());
                for c in 0..e.n_vars() {
                    coeffs.push(e.coeff(c) / g);
                }
                self.geqs[i] = LinExpr::from_coeffs(coeffs, floor_div(e.constant(), g));
            }
            i += 1;
        }
        // Drop duplicate inequalities (cheap syntactic dedup keeps FM small).
        self.geqs
            .sort_by(|a, b| (a.coeffs(), a.constant()).cmp(&(b.coeffs(), b.constant())));
        self.geqs.dedup();
        true
    }

    fn pick_equality(&self) -> Option<usize> {
        if self.eqs.is_empty() {
            None
        } else {
            // Prefer an equality that has a unit coefficient: cheapest.
            for (i, e) in self.eqs.iter().enumerate() {
                if (0..self.n_vars).any(|c| e.coeff(c).unsigned_abs() == 1) {
                    return Some(i);
                }
            }
            Some(0)
        }
    }

    /// Eliminates one equality; returns `Ok(false)` if infeasibility is
    /// detected and `Err` when checked arithmetic overflowed.  When a
    /// variable is substituted away, the substitution is recorded in `subs`
    /// (model reconstruction) if a model was requested.
    fn eliminate_equality(
        &mut self,
        idx: usize,
        subs: &mut Vec<(usize, LinExpr)>,
    ) -> Result<bool, ArithOverflow> {
        let e = self.eqs.swap_remove(idx);
        // Find a unit-coefficient variable.
        if let Some(col) = (0..self.n_vars).find(|&c| e.coeff(c).unsigned_abs() == 1) {
            let a = e.coeff(col);
            // a*x + rest = 0  =>  x = -rest / a  (a = ±1)
            let mut value = e.clone();
            value.set_coeff(col, 0);
            self.scale_in_place(&mut value, -a)?; // since a*a = 1
            if self.checked {
                for f in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
                    f.try_substitute_assign(col, &value)?;
                }
            } else {
                for f in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
                    f.substitute_assign(col, &value);
                }
            }
            if self.want_model {
                subs.push((col, value));
            }
            return Ok(true);
        }
        // No unit coefficient: Pugh's mod-reduction.
        let col = (0..self.n_vars)
            .filter(|&c| e.coeff(c) != 0)
            .min_by_key(|&c| e.coeff(c).unsigned_abs())
            .expect("non-trivial equality");
        let ak = e.coeff(col);
        let m = ak
            .checked_abs()
            .and_then(|a| a.checked_add(1))
            .ok_or(ArithOverflow)?;
        let sigma = self.add_var();
        let e = e.extended(1);
        // Build:  Σ mod̂(aᵢ, m)·xᵢ + mod̂(c, m) − m·σ = 0
        let mut aux = LinExpr::zero(self.n_vars);
        for c in 0..self.n_vars - 1 {
            aux.set_coeff(c, mod_hat(e.coeff(c), m));
        }
        aux.set_coeff(sigma, -m);
        aux.set_constant(mod_hat(e.constant(), m));
        // mod̂(ak, m) is ∓1, so `aux` has a unit coefficient on `col`:
        debug_assert_eq!(aux.coeff(col).unsigned_abs(), 1);
        self.eqs.push(e);
        self.eqs.push(aux);
        Ok(true)
    }

    /// Decides feasibility when only inequalities remain; reconstructs a
    /// model when one was requested.
    fn solve_inequalities(&mut self, work: &mut usize) -> Outcome {
        // Find a variable that is still used.
        let used: Vec<usize> = (0..self.n_vars)
            .filter(|&c| self.geqs.iter().any(|e| e.coeff(c) != 0))
            .collect();
        if used.is_empty() {
            // All constraints are constants; normalize() already removed the
            // satisfied ones and reported the violated ones.
            return if self.geqs.iter().all(|e| e.constant() >= 0) {
                Outcome::Sat(self.want_model.then(|| vec![0; self.n_vars]))
            } else {
                Outcome::Unsat
            };
        }

        // Choose the variable whose elimination is cheapest, preferring exact
        // ones (unit coefficients on one side of every bound pair).
        let mut best: Option<(bool, usize, usize)> = None; // (exact, cost, col)
        for &col in &used {
            let lowers = self.geqs.iter().filter(|e| e.coeff(col) > 0).count();
            let uppers = self.geqs.iter().filter(|e| e.coeff(col) < 0).count();
            if lowers == 0 || uppers == 0 {
                // Unbounded on one side: dropping its constraints is exact and
                // free; do it immediately.  For a model, the dropped one-sided
                // bounds still pin the admissible values of `col`, so they are
                // kept aside and `col` is placed at the tightest bound once
                // the rest of the system has a point.  The clone only happens
                // when a model was requested — `is_feasible` stays free.
                let one_sided: Vec<LinExpr> = if self.want_model {
                    self.geqs
                        .iter()
                        .filter(|e| e.coeff(col) != 0)
                        .cloned()
                        .collect()
                } else {
                    Vec::new()
                };
                self.geqs.retain(|e| e.coeff(col) == 0);
                let mut outcome = self.solve_inequalities(work);
                if let Outcome::Sat(Some(model)) = &mut outcome {
                    let bound = if one_sided.iter().any(|e| e.coeff(col) > 0) {
                        lower_bound(&one_sided, col, model)
                    } else {
                        upper_bound(&one_sided, col, model)
                    };
                    match bound {
                        Ok(v) => model[col] = v,
                        Err(ArithOverflow) => return Outcome::Overflow,
                    }
                }
                return outcome;
            }
            let exact = self.geqs.iter().all(|e| e.coeff(col) >= -1)
                || self.geqs.iter().all(|e| e.coeff(col) <= 1);
            let cost = lowers * uppers;
            let candidate = (exact, cost, col);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    // Prefer exact, then lower cost.
                    if (candidate.0 && !b.0) || (candidate.0 == b.0 && candidate.1 < b.1) {
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
        let (exact, _cost, col) = best.expect("at least one used variable");

        let lowers: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) > 0)
            .cloned()
            .collect();
        let uppers: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) < 0)
            .cloned()
            .collect();
        let rest: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) == 0)
            .cloned()
            .collect();

        // Build the two shadows.
        let mut real = self.sub();
        let mut dark = self.sub();
        real.geqs.extend(rest.iter().cloned());
        dark.geqs.extend(rest.iter().cloned());
        for lo in &lowers {
            let a = lo.coeff(col);
            for up in &uppers {
                // `up.coeff(col)` is negative; its negation only fails for
                // i64::MIN, which the checked path reports as overflow.
                let b = match up.coeff(col).checked_neg() {
                    Some(b) => b,
                    None if self.checked => return Outcome::Overflow,
                    None => up.coeff(col).wrapping_neg(),
                };
                // a·x + f ≥ 0  ∧  −b·x + g ≥ 0   ⇒ (reals)  a·g + b·f ≥ 0
                let mut combined = up.clone();
                if self.scale_in_place(&mut combined, a).is_err()
                    || self.add_scaled_in_place(&mut combined, lo, b).is_err()
                {
                    return Outcome::Overflow;
                }
                debug_assert_eq!(combined.coeff(col), 0);
                real.geqs.push(combined.clone());
                let mut darkc = combined;
                if self.checked {
                    // The dark-shadow margin (a−1)(b−1) is widened to i128;
                    // its subtraction from the constant must narrow to i64.
                    let margin = (a as i128 - 1) * (b as i128 - 1);
                    match narrow(darkc.constant() as i128 - margin) {
                        Ok(c) => darkc.set_constant(c),
                        Err(ArithOverflow) => return Outcome::Overflow,
                    }
                } else {
                    darkc.set_constant(
                        darkc
                            .constant()
                            .wrapping_sub((a.wrapping_sub(1)).wrapping_mul(b.wrapping_sub(1))),
                    );
                }
                dark.geqs.push(darkc);
            }
        }

        // Places `col` inside [max lower, min upper] at the given sub-model.
        // Exact eliminations and dark-shadow points guarantee the interval
        // contains an integer; the defensive fallback covers a violated
        // invariant without producing a wrong model.
        let place = |mut model: Vec<i64>, n_vars: usize| -> Outcome {
            model.truncate(n_vars);
            debug_assert_eq!(model.len(), n_vars);
            let (lo, hi) = match (
                lower_bound(&lowers, col, &model),
                upper_bound(&uppers, col, &model),
            ) {
                (Ok(lo), Ok(hi)) => (lo, hi),
                _ => return Outcome::Overflow,
            };
            if lo > hi {
                debug_assert!(false, "model interval for column {col} is empty");
                return Outcome::Unknown;
            }
            model[col] = lo;
            Outcome::Sat(Some(model))
        };

        *work += lowers.len() * uppers.len();
        let real_result = real.solve(work);
        if matches!(real_result, Outcome::Unsat) {
            return Outcome::Unsat;
        }
        if exact {
            // Real and dark shadow coincide: the elimination is exact.
            return match real_result {
                Outcome::Sat(Some(m)) => place(m, self.n_vars),
                other => other,
            };
        }
        match dark.solve(work) {
            Outcome::Sat(Some(m)) => return place(m, self.n_vars),
            Outcome::Sat(None) => return Outcome::Sat(None),
            Outcome::Unknown => return Outcome::Unknown,
            // An undecided dark shadow leaves the sat direction open; the
            // splinters below only cover the real/dark gap, so give up.
            Outcome::Overflow => return Outcome::Overflow,
            Outcome::Unsat => {}
        }

        // Gap between real and dark shadow: splinter on each lower bound.
        // Every splinter sub-problem carries the complete inequality system
        // plus the splintering equality, so its model (truncated to our
        // column count) is directly a model of this problem.
        // Widened to i128: coefficients can sit near i64::MAX, where both the
        // negation and the a·bmax product would overflow the narrow type.
        let bmax = uppers
            .iter()
            .map(|e| -(e.coeff(col) as i128))
            .max()
            .unwrap_or(1);
        for lo in &lowers {
            let a = lo.coeff(col) as i128;
            let max_j = (a * bmax - a - bmax) / bmax;
            let mut j = 0i64;
            while (j as i128) <= max_j.max(0) {
                *work += 1;
                if *work > WORK_LIMIT {
                    return Outcome::Unknown;
                }
                let mut sub = self.sub();
                sub.geqs = self.geqs.clone();
                // a·x + f = j
                let mut eq = lo.clone();
                match eq.constant().checked_sub(j) {
                    Some(c) => eq.set_constant(c),
                    None => return Outcome::Overflow,
                }
                sub.eqs.push(eq);
                match sub.solve(work) {
                    Outcome::Sat(Some(mut m)) => {
                        m.truncate(self.n_vars);
                        return Outcome::Sat(Some(m));
                    }
                    Outcome::Sat(None) => return Outcome::Sat(None),
                    Outcome::Unknown => return Outcome::Unknown,
                    Outcome::Overflow => return Outcome::Overflow,
                    Outcome::Unsat => {}
                }
                j += 1;
            }
        }
        Outcome::Unsat
    }
}

/// `max_i ⌈−fᵢ(model) / aᵢ⌉` over the lower bounds `aᵢ·x + fᵢ ≥ 0` of
/// column `col` (`i64::MIN` when there are none).  The contribution of `col`
/// itself is excluded from the evaluation.
///
/// Evaluation runs in `i128` (model coordinates reconstructed by
/// back-substitution can be large); only the final bound must narrow.  Model
/// extraction is never on the bench-critical `is_feasible` path, so this is
/// always checked.
fn lower_bound(bounds: &[LinExpr], col: usize, model: &[i64]) -> Result<i64, ArithOverflow> {
    let mut best = i64::MIN;
    for e in bounds.iter().filter(|e| e.coeff(col) > 0) {
        let a = e.coeff(col) as i128;
        let f = e
            .try_eval_wide(model)?
            .checked_sub(a * model[col] as i128)
            .ok_or(ArithOverflow)?;
        // a·x + f ≥ 0  ⇒  x ≥ ⌈−f/a⌉ = −⌊f/a⌋
        best = best.max(narrow(-f.div_euclid(a))?);
    }
    Ok(best)
}

/// `min_i ⌊gᵢ(model) / bᵢ⌋` over the upper bounds `−bᵢ·x + gᵢ ≥ 0` of
/// column `col` (`i64::MAX` when there are none).
fn upper_bound(bounds: &[LinExpr], col: usize, model: &[i64]) -> Result<i64, ArithOverflow> {
    let mut best = i64::MAX;
    for e in bounds.iter().filter(|e| e.coeff(col) < 0) {
        let b = -(e.coeff(col) as i128);
        let g = e
            .try_eval_wide(model)?
            .checked_add(b * model[col] as i128)
            .ok_or(ArithOverflow)?;
        best = best.min(narrow(g.div_euclid(b))?);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: &[i64], c: i64) -> LinExpr {
        LinExpr::from_coeffs(coeffs.to_vec(), c)
    }

    fn feasible(cs: &[Constraint], n: usize) -> bool {
        is_feasible(cs, n).as_bool()
    }

    #[test]
    fn empty_constraint_set_is_feasible() {
        assert!(feasible(&[], 0));
        assert!(feasible(&[], 3));
    }

    #[test]
    fn simple_bounds() {
        // 0 <= x <= 10
        let cs = vec![Constraint::geq(le(&[1], 0)), Constraint::geq(le(&[-1], 10))];
        assert!(feasible(&cs, 1));
        // 5 <= x <= 3  is empty
        let cs = vec![Constraint::geq(le(&[1], -5)), Constraint::geq(le(&[-1], 3))];
        assert!(!feasible(&cs, 1));
    }

    #[test]
    fn equality_with_gcd_violation() {
        // 2x = 5 has no integer solution
        let cs = vec![Constraint::eq(le(&[2], -5))];
        assert!(!feasible(&cs, 1));
        // 2x = 6 does
        let cs = vec![Constraint::eq(le(&[2], -6))];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn two_var_system() {
        // x = 2y, 1 <= x <= 3, y >= 1  =>  x = 2, y = 1
        let cs = vec![
            Constraint::eq(le(&[1, -2], 0)),
            Constraint::geq(le(&[1, 0], -1)),
            Constraint::geq(le(&[-1, 0], 3)),
            Constraint::geq(le(&[0, 1], -1)),
        ];
        assert!(feasible(&cs, 2));
        // x = 2y, 3 <= x <= 3  =>  x=3 odd, infeasible
        let cs = vec![
            Constraint::eq(le(&[1, -2], 0)),
            Constraint::geq(le(&[1, 0], -3)),
            Constraint::geq(le(&[-1, 0], 3)),
        ];
        assert!(!feasible(&cs, 2));
    }

    #[test]
    fn congruence_constraints() {
        // x even and 5 <= x <= 5  => infeasible
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::geq(le(&[1], -5)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(!feasible(&cs, 1));
        // x even and 4 <= x <= 5 => x = 4
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::geq(le(&[1], -4)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn classic_omega_gap_example() {
        // 3 <= 2x <= 5 has no integer solution but a rational one (x = 2 is
        // outside: 2*2=4 is inside! careful) — use 2x = between 3 and 3:
        // 3 <= 2x <= 3 -> infeasible.
        let cs = vec![Constraint::geq(le(&[2], -3)), Constraint::geq(le(&[-2], 3))];
        assert!(!feasible(&cs, 1));
        // Pugh's classic dark-shadow example: the rational region
        // 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4 is non-empty but contains
        // no integer point; only the splinter phase can prove that.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 45)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 4)),
        ];
        assert!(!feasible(&cs, 2));
        // Relaxing the last bound to 7x - 9y <= 10 admits (x, y) = (4, 2):
        // 11*4 + 13*2 = 70 is outside, so widen the first band too.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 70)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 10)),
        ];
        assert!(feasible(&cs, 2));
    }

    #[test]
    fn pugh_dark_shadow_infeasible_example() {
        // x and y such that 2y = x (x even), 2z = x + 1 (x odd): contradiction.
        let cs = vec![
            Constraint::eq(le(&[1, -2, 0], 0)),
            Constraint::eq(le(&[1, 0, -2], 1)),
        ];
        assert!(!feasible(&cs, 3));
    }

    #[test]
    fn strided_intersection() {
        // x ≡ 0 mod 2, x ≡ 0 mod 3, 1 <= x <= 5  => infeasible (lcm 6)
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::congruent(le(&[1], 0), 3),
            Constraint::geq(le(&[1], -1)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(!feasible(&cs, 1));
        // ... 1 <= x <= 6 => x = 6 works
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::congruent(le(&[1], 0), 3),
            Constraint::geq(le(&[1], -1)),
            Constraint::geq(le(&[-1], 6)),
        ];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn larger_chain_of_equalities() {
        // x0 = x1 + 1, x1 = x2 + 1, ..., x9 = 0, x0 = 9 : feasible
        let n = 10;
        let mut cs = Vec::new();
        for i in 0..n - 1 {
            let mut e = LinExpr::zero(n);
            e.set_coeff(i, 1);
            e.set_coeff(i + 1, -1);
            e.set_constant(-1);
            cs.push(Constraint::eq(e));
        }
        let mut last = LinExpr::zero(n);
        last.set_coeff(n - 1, 1);
        cs.push(Constraint::eq(last));
        let mut first = LinExpr::zero(n);
        first.set_coeff(0, 1);
        first.set_constant(-(n as i64 - 1));
        cs.push(Constraint::eq(first));
        assert!(feasible(&cs, n));
        // Make it contradictory: x0 = 5
        let mut wrong = LinExpr::zero(n);
        wrong.set_coeff(0, 1);
        wrong.set_constant(-5);
        cs.push(Constraint::eq(wrong));
        assert!(!feasible(&cs, n));
    }

    #[test]
    fn unbounded_direction_is_feasible() {
        // x >= 100 and y <= -100 (no interaction): feasible.
        let cs = vec![
            Constraint::geq(le(&[1, 0], -100)),
            Constraint::geq(le(&[0, -1], -100)),
        ];
        assert!(feasible(&cs, 2));
    }

    /// `find_model` on a feasible system must return a point satisfying every
    /// constraint; on an infeasible one it must agree with `is_feasible`.
    fn check_model(cs: &[Constraint], n: usize) -> Option<Vec<i64>> {
        match find_model(cs, n) {
            ModelOutcome::Model(m) => {
                assert_eq!(m.len(), n);
                for c in cs {
                    assert!(c.holds(&m), "model {m:?} violates {c:?}");
                }
                assert!(feasible(cs, n));
                Some(m)
            }
            ModelOutcome::Infeasible => {
                assert!(!feasible(cs, n));
                None
            }
            ModelOutcome::Unknown => panic!("work limit hit on a tiny system"),
        }
    }

    #[test]
    fn model_for_simple_bounds() {
        let cs = vec![Constraint::geq(le(&[1], -5)), Constraint::geq(le(&[-1], 9))];
        let m = check_model(&cs, 1).expect("5 <= x <= 9 has a model");
        assert!((5..=9).contains(&m[0]));
        // Empty interval.
        let cs = vec![Constraint::geq(le(&[1], -5)), Constraint::geq(le(&[-1], 3))];
        assert!(check_model(&cs, 1).is_none());
    }

    #[test]
    fn model_for_equalities_and_congruences() {
        // x = 2y, 3 <= x <= 7, y >= 2  =>  (x, y) in {(4,2),(6,3)}
        let cs = vec![
            Constraint::eq(le(&[1, -2], 0)),
            Constraint::geq(le(&[1, 0], -3)),
            Constraint::geq(le(&[-1, 0], 7)),
            Constraint::geq(le(&[0, 1], -2)),
        ];
        check_model(&cs, 2).expect("feasible");
        // x ≡ 3 (mod 5) and 10 <= x <= 20  =>  x ∈ {13, 18}
        let cs = vec![
            Constraint::congruent(le(&[1], -3), 5),
            Constraint::geq(le(&[1], -10)),
            Constraint::geq(le(&[-1], 20)),
        ];
        let m = check_model(&cs, 1).expect("feasible");
        assert!(m[0] == 13 || m[0] == 18);
    }

    #[test]
    fn model_for_dark_shadow_and_splinter_regions() {
        // Pugh's gap example is infeasible; model extraction must agree.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 45)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 4)),
        ];
        assert!(check_model(&cs, 2).is_none());
        // The widened variant is feasible only via non-exact elimination.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 70)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 10)),
        ];
        check_model(&cs, 2).expect("feasible via dark shadow / splinters");
        // A system whose only integer point sits in the splinter region:
        // 2 <= 3x <= 4 has exactly x = 1... (3x in {3}), keep coefficients
        // non-unit on both sides so the elimination is inexact.
        let cs = vec![
            Constraint::geq(le(&[3, -2], 0)),  // 3x >= 2y
            Constraint::geq(le(&[-3, 2], 1)),  // 3x <= 2y + 1
            Constraint::geq(le(&[0, 1], -4)),  // y >= 4
            Constraint::geq(le(&[0, -1], 10)), // y <= 10
        ];
        check_model(&cs, 2).expect("feasible");
    }

    #[test]
    fn model_for_unbounded_directions() {
        // Only lower bounds: x >= 100, y <= -7 (one-sided drops).
        let cs = vec![
            Constraint::geq(le(&[1, 0], -100)),
            Constraint::geq(le(&[0, -1], -7)),
        ];
        let m = check_model(&cs, 2).expect("feasible");
        assert!(m[0] >= 100 && m[1] <= -7);
    }

    #[test]
    fn model_for_equality_chain() {
        // x0 = x1 + 1, ..., x4 = 0  => unique model (4, 3, 2, 1, 0).
        let n = 5;
        let mut cs = Vec::new();
        for i in 0..n - 1 {
            let mut e = LinExpr::zero(n);
            e.set_coeff(i, 1);
            e.set_coeff(i + 1, -1);
            e.set_constant(-1);
            cs.push(Constraint::eq(e));
        }
        let mut last = LinExpr::zero(n);
        last.set_coeff(n - 1, 1);
        cs.push(Constraint::eq(last));
        let m = check_model(&cs, n).expect("feasible");
        assert_eq!(m, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn model_with_non_unit_equality_coefficients() {
        // 6x + 4y = 2 with bounds; mod-reduction path.
        let cs = vec![
            Constraint::eq(le(&[6, 4], -2)),
            Constraint::geq(le(&[1, 0], 5)),
            Constraint::geq(le(&[-1, 0], 5)),
            Constraint::geq(le(&[0, 1], 20)),
            Constraint::geq(le(&[0, -1], 20)),
        ];
        check_model(&cs, 2).expect("feasible");
    }

    #[test]
    fn non_unit_coefficient_system() {
        // 6x + 4y = 3 : gcd 2 does not divide 3 -> infeasible.
        let cs = vec![Constraint::eq(le(&[6, 4], -3))];
        assert!(!feasible(&cs, 2));
        // 6x + 4y = 2 : feasible (x=1, y=-1).
        let cs = vec![Constraint::eq(le(&[6, 4], -2))];
        assert!(feasible(&cs, 2));
    }
}
