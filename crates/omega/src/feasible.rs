//! Exact integer feasibility of a conjunction of affine constraints.
//!
//! This module implements the decision procedure of the Omega test
//! (W. Pugh, *The Omega test: a fast and practical integer programming
//! algorithm for dependence analysis*, 1991) specialised to what the
//! equivalence checker needs: given a list of equalities and inequalities
//! over `n` integer variables (all existentially quantified), decide whether
//! an integer solution exists.
//!
//! The procedure:
//!
//! 1. **Equality elimination.**  Equalities are normalised by their gcd (a
//!    non-divisible constant proves infeasibility) and eliminated one by one:
//!    a variable with a unit coefficient is substituted away; otherwise
//!    Pugh's *mod-reduction* introduces a fresh variable `σ` and an auxiliary
//!    equality with a guaranteed unit coefficient, shrinking coefficients
//!    until substitution applies.
//! 2. **Inequality elimination (Fourier–Motzkin with shadows).**  Variables
//!    are eliminated pairwise.  When either side of every bound pair has a
//!    unit coefficient the elimination is exact.  Otherwise the *real shadow*
//!    (unsatisfiable ⇒ unsatisfiable) and the *dark shadow*
//!    (satisfiable ⇒ satisfiable) are tried, and the remaining gap is closed
//!    by *splinters*: a finite case split on `a·x + f = j` that reduces to the
//!    equality case.
//!
//! The entry point is [`is_feasible`].  A work limit bounds the (rare)
//! exponential blow-up; when it is hit the procedure conservatively reports
//! "feasible", which is the sound direction for the equivalence checker
//! (it can only cause a spurious *inequivalence* verdict, never a spurious
//! equivalence).

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::{floor_div, mod_hat, LinExpr};

/// Maximum number of elimination steps before giving up and conservatively
/// reporting "feasible".  Generous for the problem sizes the checker builds.
const WORK_LIMIT: usize = 200_000;

/// Outcome of a feasibility query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Feasibility {
    /// An integer solution exists.
    Feasible,
    /// No integer solution exists.
    Infeasible,
    /// The work limit was exceeded; treat as (possibly) feasible.
    Unknown,
}

impl Feasibility {
    /// Collapses `Unknown` into the conservative `true`.
    pub(crate) fn as_bool(self) -> bool {
        !matches!(self, Feasibility::Infeasible)
    }
}

/// Decides integer feasibility of the conjunction of `constraints` over
/// `n_vars` variables (all of them existential for the purposes of the test).
///
/// `Mod` constraints are lowered to equalities with a fresh variable before
/// the elimination starts.
pub(crate) fn is_feasible(constraints: &[Constraint], n_vars: usize) -> Feasibility {
    let mut p = Problem::new(n_vars);
    for c in constraints {
        if !p.add_constraint(c) {
            return Feasibility::Infeasible;
        }
    }
    let mut work = 0usize;
    p.solve(&mut work)
}

/// Internal solver state: equalities and inequalities as raw linear
/// expressions (`= 0` / `≥ 0`) over a growable set of columns.
struct Problem {
    n_vars: usize,
    eqs: Vec<LinExpr>,
    geqs: Vec<LinExpr>,
}

impl Problem {
    fn new(n_vars: usize) -> Self {
        Problem {
            n_vars,
            eqs: Vec::new(),
            geqs: Vec::new(),
        }
    }

    /// Adds a constraint; returns `false` if it is trivially unsatisfiable.
    fn add_constraint(&mut self, c: &Constraint) -> bool {
        let c = c.normalized();
        match c.trivial() {
            Some(true) => return true,
            Some(false) => return false,
            None => {}
        }
        match c.kind() {
            ConstraintKind::Eq => self.eqs.push(self.fit(c.expr())),
            ConstraintKind::Geq => self.geqs.push(self.fit(c.expr())),
            ConstraintKind::Mod => {
                // f ≡ 0 (mod m)  ⇔  ∃ w : f − m·w = 0
                let w = self.add_var();
                let mut e = self.fit(c.expr());
                e.set_coeff(w, -c.modulus());
                self.eqs.push(e);
            }
        }
        true
    }

    /// Pads an expression with zero columns up to the current variable count.
    fn fit(&self, e: &LinExpr) -> LinExpr {
        if e.n_vars() == self.n_vars {
            e.clone()
        } else {
            assert!(e.n_vars() < self.n_vars);
            e.extended(self.n_vars - e.n_vars())
        }
    }

    /// Adds a fresh variable column, padding all stored expressions.
    fn add_var(&mut self) -> usize {
        let col = self.n_vars;
        self.n_vars += 1;
        for e in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            *e = e.extended(1);
        }
        col
    }

    fn solve(&mut self, work: &mut usize) -> Feasibility {
        loop {
            *work += 1;
            if *work > WORK_LIMIT {
                return Feasibility::Unknown;
            }
            if !self.normalize() {
                return Feasibility::Infeasible;
            }
            if let Some(eq_idx) = self.pick_equality() {
                if !self.eliminate_equality(eq_idx) {
                    return Feasibility::Infeasible;
                }
                continue;
            }
            // Only inequalities remain.
            return self.solve_inequalities(work);
        }
    }

    /// Normalises all stored expressions; returns `false` on a trivially
    /// unsatisfiable constraint.
    fn normalize(&mut self) -> bool {
        let mut i = 0;
        while i < self.eqs.len() {
            let e = &self.eqs[i];
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant() != 0 {
                    return false;
                }
                self.eqs.swap_remove(i);
                continue;
            }
            if e.constant() % g != 0 {
                return false;
            }
            if g > 1 {
                self.eqs[i] = e.exact_div(g);
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.geqs.len() {
            let e = &self.geqs[i];
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant() < 0 {
                    return false;
                }
                self.geqs.swap_remove(i);
                continue;
            }
            if g > 1 {
                let mut coeffs = Vec::with_capacity(e.n_vars());
                for c in 0..e.n_vars() {
                    coeffs.push(e.coeff(c) / g);
                }
                self.geqs[i] = LinExpr::from_coeffs(coeffs, floor_div(e.constant(), g));
            }
            i += 1;
        }
        // Drop duplicate inequalities (cheap syntactic dedup keeps FM small).
        self.geqs
            .sort_by(|a, b| (a.coeffs(), a.constant()).cmp(&(b.coeffs(), b.constant())));
        self.geqs.dedup();
        true
    }

    fn pick_equality(&self) -> Option<usize> {
        if self.eqs.is_empty() {
            None
        } else {
            // Prefer an equality that has a unit coefficient: cheapest.
            for (i, e) in self.eqs.iter().enumerate() {
                if (0..self.n_vars).any(|c| e.coeff(c).abs() == 1) {
                    return Some(i);
                }
            }
            Some(0)
        }
    }

    /// Eliminates one equality; returns `false` if infeasibility is detected.
    fn eliminate_equality(&mut self, idx: usize) -> bool {
        let e = self.eqs.swap_remove(idx);
        // Find a unit-coefficient variable.
        if let Some(col) = (0..self.n_vars).find(|&c| e.coeff(c).abs() == 1) {
            let a = e.coeff(col);
            // a*x + rest = 0  =>  x = -rest / a  (a = ±1)
            let mut value = e.clone();
            value.set_coeff(col, 0);
            let value = value.scale(-a); // since a*a = 1
            for f in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
                *f = f.substitute(col, &value);
            }
            return true;
        }
        // No unit coefficient: Pugh's mod-reduction.
        let col = (0..self.n_vars)
            .filter(|&c| e.coeff(c) != 0)
            .min_by_key(|&c| e.coeff(c).abs())
            .expect("non-trivial equality");
        let ak = e.coeff(col);
        let m = ak.abs() + 1;
        let sigma = self.add_var();
        let e = e.extended(1);
        // Build:  Σ mod̂(aᵢ, m)·xᵢ + mod̂(c, m) − m·σ = 0
        let mut aux = LinExpr::zero(self.n_vars);
        for c in 0..self.n_vars - 1 {
            aux.set_coeff(c, mod_hat(e.coeff(c), m));
        }
        aux.set_coeff(sigma, -m);
        aux.set_constant(mod_hat(e.constant(), m));
        // mod̂(ak, m) is ∓1, so `aux` has a unit coefficient on `col`:
        debug_assert_eq!(aux.coeff(col).abs(), 1);
        self.eqs.push(e);
        self.eqs.push(aux);
        true
    }

    /// Decides feasibility when only inequalities remain.
    fn solve_inequalities(&mut self, work: &mut usize) -> Feasibility {
        // Find a variable that is still used.
        let used: Vec<usize> = (0..self.n_vars)
            .filter(|&c| self.geqs.iter().any(|e| e.coeff(c) != 0))
            .collect();
        if used.is_empty() {
            // All constraints are constants; normalize() already removed the
            // satisfied ones and reported the violated ones.
            return if self.geqs.iter().all(|e| e.constant() >= 0) {
                Feasibility::Feasible
            } else {
                Feasibility::Infeasible
            };
        }

        // Choose the variable whose elimination is cheapest, preferring exact
        // ones (unit coefficients on one side of every bound pair).
        let mut best: Option<(bool, usize, usize)> = None; // (exact, cost, col)
        for &col in &used {
            let lowers = self.geqs.iter().filter(|e| e.coeff(col) > 0).count();
            let uppers = self.geqs.iter().filter(|e| e.coeff(col) < 0).count();
            if lowers == 0 || uppers == 0 {
                // Unbounded on one side: dropping its constraints is exact and
                // free; do it immediately.
                self.geqs.retain(|e| e.coeff(col) == 0);
                return self.solve_inequalities(work);
            }
            let exact = self.geqs.iter().all(|e| e.coeff(col) >= -1)
                || self.geqs.iter().all(|e| e.coeff(col) <= 1);
            let cost = lowers * uppers;
            let candidate = (exact, cost, col);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    // Prefer exact, then lower cost.
                    if (candidate.0 && !b.0) || (candidate.0 == b.0 && candidate.1 < b.1) {
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
        let (exact, _cost, col) = best.expect("at least one used variable");

        let lowers: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) > 0)
            .cloned()
            .collect();
        let uppers: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) < 0)
            .cloned()
            .collect();
        let rest: Vec<LinExpr> = self
            .geqs
            .iter()
            .filter(|e| e.coeff(col) == 0)
            .cloned()
            .collect();

        // Build the two shadows.
        let mut real = Problem::new(self.n_vars);
        let mut dark = Problem::new(self.n_vars);
        real.geqs.extend(rest.iter().cloned());
        dark.geqs.extend(rest.iter().cloned());
        for lo in &lowers {
            let a = lo.coeff(col);
            for up in &uppers {
                let b = -up.coeff(col);
                // a·x + f ≥ 0  ∧  −b·x + g ≥ 0   ⇒ (reals)  a·g + b·f ≥ 0
                let mut combined = up.scale(a);
                combined.add_scaled_assign(lo, b);
                debug_assert_eq!(combined.coeff(col), 0);
                real.geqs.push(combined.clone());
                let mut darkc = combined;
                darkc.set_constant(darkc.constant() - (a - 1) * (b - 1));
                dark.geqs.push(darkc);
            }
        }

        *work += lowers.len() * uppers.len();
        let real_result = real.solve(work);
        if real_result == Feasibility::Infeasible {
            return Feasibility::Infeasible;
        }
        if exact {
            // Real and dark shadow coincide: the elimination is exact.
            return real_result;
        }
        match dark.solve(work) {
            Feasibility::Feasible => return Feasibility::Feasible,
            Feasibility::Unknown => return Feasibility::Unknown,
            Feasibility::Infeasible => {}
        }

        // Gap between real and dark shadow: splinter on each lower bound.
        let bmax = uppers.iter().map(|e| -e.coeff(col)).max().unwrap_or(1);
        for lo in &lowers {
            let a = lo.coeff(col);
            let max_j = (a * bmax - a - bmax) / bmax;
            for j in 0..=max_j.max(0) {
                *work += 1;
                if *work > WORK_LIMIT {
                    return Feasibility::Unknown;
                }
                let mut sub = Problem::new(self.n_vars);
                sub.geqs = self.geqs.clone();
                // a·x + f = j
                let mut eq = lo.clone();
                eq.set_constant(eq.constant() - j);
                sub.eqs.push(eq);
                match sub.solve(work) {
                    Feasibility::Feasible => return Feasibility::Feasible,
                    Feasibility::Unknown => return Feasibility::Unknown,
                    Feasibility::Infeasible => {}
                }
            }
        }
        Feasibility::Infeasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: &[i64], c: i64) -> LinExpr {
        LinExpr::from_coeffs(coeffs.to_vec(), c)
    }

    fn feasible(cs: &[Constraint], n: usize) -> bool {
        is_feasible(cs, n).as_bool()
    }

    #[test]
    fn empty_constraint_set_is_feasible() {
        assert!(feasible(&[], 0));
        assert!(feasible(&[], 3));
    }

    #[test]
    fn simple_bounds() {
        // 0 <= x <= 10
        let cs = vec![Constraint::geq(le(&[1], 0)), Constraint::geq(le(&[-1], 10))];
        assert!(feasible(&cs, 1));
        // 5 <= x <= 3  is empty
        let cs = vec![Constraint::geq(le(&[1], -5)), Constraint::geq(le(&[-1], 3))];
        assert!(!feasible(&cs, 1));
    }

    #[test]
    fn equality_with_gcd_violation() {
        // 2x = 5 has no integer solution
        let cs = vec![Constraint::eq(le(&[2], -5))];
        assert!(!feasible(&cs, 1));
        // 2x = 6 does
        let cs = vec![Constraint::eq(le(&[2], -6))];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn two_var_system() {
        // x = 2y, 1 <= x <= 3, y >= 1  =>  x = 2, y = 1
        let cs = vec![
            Constraint::eq(le(&[1, -2], 0)),
            Constraint::geq(le(&[1, 0], -1)),
            Constraint::geq(le(&[-1, 0], 3)),
            Constraint::geq(le(&[0, 1], -1)),
        ];
        assert!(feasible(&cs, 2));
        // x = 2y, 3 <= x <= 3  =>  x=3 odd, infeasible
        let cs = vec![
            Constraint::eq(le(&[1, -2], 0)),
            Constraint::geq(le(&[1, 0], -3)),
            Constraint::geq(le(&[-1, 0], 3)),
        ];
        assert!(!feasible(&cs, 2));
    }

    #[test]
    fn congruence_constraints() {
        // x even and 5 <= x <= 5  => infeasible
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::geq(le(&[1], -5)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(!feasible(&cs, 1));
        // x even and 4 <= x <= 5 => x = 4
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::geq(le(&[1], -4)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn classic_omega_gap_example() {
        // 3 <= 2x <= 5 has no integer solution but a rational one (x = 2 is
        // outside: 2*2=4 is inside! careful) — use 2x = between 3 and 3:
        // 3 <= 2x <= 3 -> infeasible.
        let cs = vec![Constraint::geq(le(&[2], -3)), Constraint::geq(le(&[-2], 3))];
        assert!(!feasible(&cs, 1));
        // Pugh's classic dark-shadow example: the rational region
        // 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4 is non-empty but contains
        // no integer point; only the splinter phase can prove that.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 45)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 4)),
        ];
        assert!(!feasible(&cs, 2));
        // Relaxing the last bound to 7x - 9y <= 10 admits (x, y) = (4, 2):
        // 11*4 + 13*2 = 70 is outside, so widen the first band too.
        let cs = vec![
            Constraint::geq(le(&[11, 13], -27)),
            Constraint::geq(le(&[-11, -13], 70)),
            Constraint::geq(le(&[7, -9], 10)),
            Constraint::geq(le(&[-7, 9], 10)),
        ];
        assert!(feasible(&cs, 2));
    }

    #[test]
    fn pugh_dark_shadow_infeasible_example() {
        // x and y such that 2y = x (x even), 2z = x + 1 (x odd): contradiction.
        let cs = vec![
            Constraint::eq(le(&[1, -2, 0], 0)),
            Constraint::eq(le(&[1, 0, -2], 1)),
        ];
        assert!(!feasible(&cs, 3));
    }

    #[test]
    fn strided_intersection() {
        // x ≡ 0 mod 2, x ≡ 0 mod 3, 1 <= x <= 5  => infeasible (lcm 6)
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::congruent(le(&[1], 0), 3),
            Constraint::geq(le(&[1], -1)),
            Constraint::geq(le(&[-1], 5)),
        ];
        assert!(!feasible(&cs, 1));
        // ... 1 <= x <= 6 => x = 6 works
        let cs = vec![
            Constraint::congruent(le(&[1], 0), 2),
            Constraint::congruent(le(&[1], 0), 3),
            Constraint::geq(le(&[1], -1)),
            Constraint::geq(le(&[-1], 6)),
        ];
        assert!(feasible(&cs, 1));
    }

    #[test]
    fn larger_chain_of_equalities() {
        // x0 = x1 + 1, x1 = x2 + 1, ..., x9 = 0, x0 = 9 : feasible
        let n = 10;
        let mut cs = Vec::new();
        for i in 0..n - 1 {
            let mut e = LinExpr::zero(n);
            e.set_coeff(i, 1);
            e.set_coeff(i + 1, -1);
            e.set_constant(-1);
            cs.push(Constraint::eq(e));
        }
        let mut last = LinExpr::zero(n);
        last.set_coeff(n - 1, 1);
        cs.push(Constraint::eq(last));
        let mut first = LinExpr::zero(n);
        first.set_coeff(0, 1);
        first.set_constant(-(n as i64 - 1));
        cs.push(Constraint::eq(first));
        assert!(feasible(&cs, n));
        // Make it contradictory: x0 = 5
        let mut wrong = LinExpr::zero(n);
        wrong.set_coeff(0, 1);
        wrong.set_constant(-5);
        cs.push(Constraint::eq(wrong));
        assert!(!feasible(&cs, n));
    }

    #[test]
    fn unbounded_direction_is_feasible() {
        // x >= 100 and y <= -100 (no interaction): feasible.
        let cs = vec![
            Constraint::geq(le(&[1, 0], -100)),
            Constraint::geq(le(&[0, -1], -100)),
        ];
        assert!(feasible(&cs, 2));
    }

    #[test]
    fn non_unit_coefficient_system() {
        // 6x + 4y = 3 : gcd 2 does not divide 3 -> infeasible.
        let cs = vec![Constraint::eq(le(&[6, 4], -3))];
        assert!(!feasible(&cs, 2));
        // 6x + 4y = 2 : feasible (x=1, y=-1).
        let cs = vec![Constraint::eq(le(&[6, 4], -2))];
        assert!(feasible(&cs, 2));
    }
}
