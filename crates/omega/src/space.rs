//! Tuple spaces: the named dimensions a set or relation is defined over.

use crate::{OmegaError, Result};
use std::sync::Arc;

/// The role a column plays inside a [`Conjunct`](crate::Conjunct).
///
/// Columns of every linear expression of a conjunct are laid out in the fixed
/// order *input dims, output dims, parameters, existentials, constant*; a
/// `VarKind` plus an index inside that kind identifies one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarKind {
    /// A dimension of the input tuple (the `[x]` in `{ [x] -> [y] }`).
    In,
    /// A dimension of the output tuple (the `[y]` in `{ [x] -> [y] }`).
    Out,
    /// A symbolic parameter (e.g. a loop bound `N`), shared by all conjuncts.
    Param,
    /// A local existentially quantified variable of a single conjunct.
    Exists,
}

/// Describes the dimensions of a [`Relation`](crate::Relation) or
/// [`Set`](crate::Set): how many input dims, output dims and symbolic
/// parameters there are, and what they are called.
///
/// Two relations can only be combined (intersected, united, compared, ...)
/// when their spaces are *compatible*: same arities and same parameter names.
/// Dimension names themselves are cosmetic — they matter for printing and
/// parsing but not for the algebra.
///
/// ```
/// use arrayeq_omega::Space;
///
/// let s = Space::relation(&["x"], &["y"], &["N"]);
/// assert_eq!(s.n_in(), 1);
/// assert_eq!(s.n_out(), 1);
/// assert_eq!(s.n_param(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Space {
    /// The three name lists, shared behind one `Arc` so that cloning a space
    /// (which every conjunct of every relation carries) is a reference-count
    /// bump instead of three `Vec<String>` deep copies.
    names: Arc<SpaceNames>,
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct SpaceNames {
    in_vars: Vec<String>,
    out_vars: Vec<String>,
    params: Vec<String>,
}

impl Space {
    fn from_names(in_vars: Vec<String>, out_vars: Vec<String>, params: Vec<String>) -> Self {
        Space {
            names: Arc::new(SpaceNames {
                in_vars,
                out_vars,
                params,
            }),
        }
    }

    /// Creates the space of a relation with the given input dims, output dims
    /// and parameters.
    pub fn relation<S: AsRef<str>>(in_vars: &[S], out_vars: &[S], params: &[S]) -> Self {
        Space::from_names(
            in_vars.iter().map(|s| s.as_ref().to_owned()).collect(),
            out_vars.iter().map(|s| s.as_ref().to_owned()).collect(),
            params.iter().map(|s| s.as_ref().to_owned()).collect(),
        )
    }

    /// Creates the space of a set (no output dims).
    pub fn set<S: AsRef<str>>(vars: &[S], params: &[S]) -> Self {
        Space::relation(vars, &[], params)
    }

    /// Creates an anonymous relation space of the given arities; dimension
    /// names are synthesised (`i0, i1, ... / o0, o1, ...`).
    pub fn anonymous(n_in: usize, n_out: usize) -> Self {
        Space::from_names(
            (0..n_in).map(|i| format!("i{i}")).collect(),
            (0..n_out).map(|i| format!("o{i}")).collect(),
            Vec::new(),
        )
    }

    /// Number of input-tuple dimensions.
    pub fn n_in(&self) -> usize {
        self.names.in_vars.len()
    }

    /// Number of output-tuple dimensions.
    pub fn n_out(&self) -> usize {
        self.names.out_vars.len()
    }

    /// Number of symbolic parameters.
    pub fn n_param(&self) -> usize {
        self.names.params.len()
    }

    /// Names of the input-tuple dimensions.
    pub fn in_vars(&self) -> &[String] {
        &self.names.in_vars
    }

    /// Names of the output-tuple dimensions.
    pub fn out_vars(&self) -> &[String] {
        &self.names.out_vars
    }

    /// Names of the symbolic parameters.
    pub fn params(&self) -> &[String] {
        &self.names.params
    }

    /// The space of the inverse relation (input and output dims swapped).
    pub fn reversed(&self) -> Space {
        Space::from_names(
            self.names.out_vars.clone(),
            self.names.in_vars.clone(),
            self.names.params.clone(),
        )
    }

    /// The space of the domain set of a relation over this space.
    pub fn domain_space(&self) -> Space {
        if self.n_out() == 0 {
            return self.clone(); // a set is its own domain space
        }
        Space::from_names(
            self.names.in_vars.clone(),
            Vec::new(),
            self.names.params.clone(),
        )
    }

    /// The space of the range set of a relation over this space.
    pub fn range_space(&self) -> Space {
        Space::from_names(
            self.names.out_vars.clone(),
            Vec::new(),
            self.names.params.clone(),
        )
    }

    /// Whether `self` and `other` have the same arities and parameter names.
    ///
    /// Dimension names are ignored: `{ [x] -> [y] }` and `{ [i] -> [j] }` are
    /// compatible.
    pub fn is_compatible(&self, other: &Space) -> bool {
        Arc::ptr_eq(&self.names, &other.names)
            || (self.n_in() == other.n_in()
                && self.n_out() == other.n_out()
                && self.names.params == other.names.params)
    }

    /// Checks compatibility and returns a descriptive error when it fails.
    pub fn check_compatible(&self, other: &Space, op: &'static str) -> Result<()> {
        if self.is_compatible(other) {
            Ok(())
        } else {
            Err(OmegaError::SpaceMismatch {
                op,
                lhs: self.describe(),
                rhs: other.describe(),
            })
        }
    }

    /// A compact human-readable description, used in error messages.
    pub fn describe(&self) -> String {
        format!(
            "[{}] -> [{}] (params [{}])",
            self.names.in_vars.join(", "),
            self.names.out_vars.join(", "),
            self.names.params.join(", ")
        )
    }

    /// The total number of *global* columns (inputs + outputs + params); the
    /// per-conjunct existential columns and the constant come after these.
    pub(crate) fn n_global(&self) -> usize {
        self.n_in() + self.n_out() + self.n_param()
    }

    /// Column index of dimension `idx` of the given kind, for a conjunct with
    /// `n_exists` existential variables.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the kind.
    pub(crate) fn col(&self, kind: VarKind, idx: usize, n_exists: usize) -> usize {
        match kind {
            VarKind::In => {
                assert!(idx < self.n_in(), "input dim {idx} out of range");
                idx
            }
            VarKind::Out => {
                assert!(idx < self.n_out(), "output dim {idx} out of range");
                self.n_in() + idx
            }
            VarKind::Param => {
                assert!(idx < self.n_param(), "param {idx} out of range");
                self.n_in() + self.n_out() + idx
            }
            VarKind::Exists => {
                assert!(idx < n_exists, "existential {idx} out of range");
                self.n_global() + idx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_and_names() {
        let s = Space::relation(&["i", "j"], &["k"], &["N"]);
        assert_eq!(s.n_in(), 2);
        assert_eq!(s.n_out(), 1);
        assert_eq!(s.n_param(), 1);
        assert_eq!(s.in_vars(), &["i".to_string(), "j".to_string()]);
        assert_eq!(s.out_vars(), &["k".to_string()]);
        assert_eq!(s.params(), &["N".to_string()]);
        assert_eq!(s.n_global(), 4);
    }

    #[test]
    fn set_space_has_no_outputs() {
        let s = Space::set(&["i"], &["N"]);
        assert_eq!(s.n_out(), 0);
        assert_eq!(s.n_in(), 1);
    }

    #[test]
    fn reversed_swaps_in_out() {
        let s = Space::relation(&["a"], &["b", "c"], &["N"]);
        let r = s.reversed();
        assert_eq!(r.n_in(), 2);
        assert_eq!(r.n_out(), 1);
        assert_eq!(r.in_vars(), &["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn domain_and_range_spaces() {
        let s = Space::relation(&["a"], &["b", "c"], &["N"]);
        assert_eq!(s.domain_space().n_in(), 1);
        assert_eq!(s.domain_space().n_out(), 0);
        assert_eq!(s.range_space().n_in(), 2);
        assert_eq!(s.range_space().n_out(), 0);
    }

    #[test]
    fn compatibility_ignores_names_but_not_params() {
        let a = Space::relation(&["x"], &["y"], &["N"]);
        let b = Space::relation(&["i"], &["j"], &["N"]);
        let c = Space::relation(&["i"], &["j"], &["M"]);
        assert!(a.is_compatible(&b));
        assert!(!a.is_compatible(&c));
        assert!(a.check_compatible(&c, "test").is_err());
    }

    #[test]
    fn column_layout() {
        let s = Space::relation(&["i", "j"], &["k"], &["N"]);
        assert_eq!(s.col(VarKind::In, 0, 2), 0);
        assert_eq!(s.col(VarKind::In, 1, 2), 1);
        assert_eq!(s.col(VarKind::Out, 0, 2), 2);
        assert_eq!(s.col(VarKind::Param, 0, 2), 3);
        assert_eq!(s.col(VarKind::Exists, 1, 2), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_column_panics() {
        let s = Space::relation(&["i"], &["k"], &["N"]);
        s.col(VarKind::In, 1, 0);
    }

    #[test]
    fn anonymous_space_names() {
        let s = Space::anonymous(2, 1);
        assert_eq!(s.in_vars(), &["i0".to_string(), "i1".to_string()]);
        assert_eq!(s.out_vars(), &["o0".to_string()]);
    }
}
