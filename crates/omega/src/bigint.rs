//! A minimal arbitrary-precision signed integer.
//!
//! This exists for one purpose: the slow reference implementation of the
//! Omega test in [`crate::reference`], which cross-checks the production
//! solver's overflow behaviour on large-coefficient systems.  The production
//! solver must *never* wrap; proving that requires an oracle whose
//! arithmetic cannot overflow at all.  No external big-integer crate is
//! available in this build environment, so the handful of operations the
//! reference solver needs are implemented here: add, subtract, multiply,
//! Euclidean division, gcd and comparisons.  Simplicity over speed —
//! division is binary long division — which is fine for a test oracle.

use std::cmp::Ordering;
use std::fmt;

/// Sign-and-magnitude arbitrary-precision integer.
///
/// The magnitude is little-endian base-2³² limbs with no trailing zero
/// limbs; zero is the empty magnitude with a positive sign, so every value
/// has exactly one representation (which `Eq`/`Ord` rely on).
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    /// True for strictly negative values; zero is always `false`.
    neg: bool,
    /// Little-endian base-2³² magnitude, no trailing zeros.
    mag: Vec<u32>,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            neg: false,
            mag: Vec::new(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    fn from_mag(neg: bool, mut mag: Vec<u32>) -> Self {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        let neg = neg && !mag.is_empty();
        BigInt { neg, mag }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// −1, 0 or 1.
    pub fn signum(&self) -> i32 {
        if self.mag.is_empty() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    /// The negation.
    pub fn neg(&self) -> BigInt {
        BigInt::from_mag(!self.neg, self.mag.clone())
    }

    /// Converts back to `i64` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mut v: i128 = 0;
        if self.mag.len() > 2 {
            return None;
        }
        for (i, &limb) in self.mag.iter().enumerate() {
            v += (limb as i128) << (32 * i);
        }
        if self.neg {
            v = -v;
        }
        i64::try_from(v).ok()
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let s = carry + *a.get(i).unwrap_or(&0) as u64 + *b.get(i).unwrap_or(&0) as u64;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `a − b`, requires `a ≥ b` (as magnitudes).
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &limb) in a.iter().enumerate() {
            let d = limb as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        out
    }

    fn bit(mag: &[u32], i: usize) -> bool {
        (mag[i / 32] >> (i % 32)) & 1 == 1
    }

    fn set_bit(mag: &mut [u32], i: usize) {
        mag[i / 32] |= 1 << (i % 32);
    }

    /// Truncated `(quotient, remainder)` of the magnitudes (`b` non-zero):
    /// binary long division, most significant bit first.
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        let bits = a.len() * 32;
        let mut q = vec![0u32; a.len()];
        let mut r: Vec<u32> = Vec::new();
        for i in (0..bits).rev() {
            // r = (r << 1) | bit(a, i)
            let mut carry = u32::from(Self::bit(a, i));
            for limb in r.iter_mut() {
                let t = ((*limb as u64) << 1) | carry as u64;
                *limb = t as u32;
                carry = (t >> 32) as u32;
            }
            if carry != 0 {
                r.push(carry);
            }
            if Self::cmp_mag(&r, b) != Ordering::Less {
                r = Self::sub_mag(&r, b);
                while r.last() == Some(&0) {
                    r.pop();
                }
                Self::set_bit(&mut q, i);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, r)
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.neg == other.neg {
            BigInt::from_mag(self.neg, Self::add_mag(&self.mag, &other.mag))
        } else {
            match Self::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_mag(self.neg, Self::sub_mag(&self.mag, &other.mag))
                }
                Ordering::Less => BigInt::from_mag(other.neg, Self::sub_mag(&other.mag, &self.mag)),
            }
        }
    }

    /// `self − other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self · other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt::from_mag(self.neg != other.neg, Self::mul_mag(&self.mag, &other.mag))
    }

    /// Euclidean `(quotient, remainder)`: `self = q·d + r` with
    /// `0 ≤ r < |d|`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem_euclid(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = Self::divrem_mag(&self.mag, &d.mag);
        let q = BigInt::from_mag(self.neg != d.neg, q_mag);
        let r = BigInt::from_mag(self.neg, r_mag);
        if r.is_zero() || !self.neg {
            (q, r)
        } else {
            // Truncated remainder is negative: shift into [0, |d|).
            let one = BigInt::one();
            let q = if d.neg { q.add(&one) } else { q.sub(&one) };
            (q, r.add(&d.abs()))
        }
    }

    /// Euclidean quotient (`⌊self / d⌋` for positive `d`).
    pub fn div_euclid(&self, d: &BigInt) -> BigInt {
        self.divrem_euclid(d).0
    }

    /// Euclidean remainder, always in `[0, |d|)`.
    pub fn rem_euclid(&self, d: &BigInt) -> BigInt {
        self.divrem_euclid(d).1
    }

    /// Greatest common divisor (non-negative; `gcd(0, 0) = 0`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.rem_euclid(&b);
            a = b;
            b = r;
        }
        a
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let neg = v < 0;
        let mut m = v.unsigned_abs();
        let mut mag = Vec::new();
        while m != 0 {
            mag.push(m as u32);
            m >>= 32;
        }
        BigInt { neg, mag }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.mag, &other.mag),
            (true, true) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

/// Shared decimal rendering for `Debug` and `Display` (repeated division by
/// 10⁹; fine for an oracle's error messages).
macro_rules! fmt_decimal {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.is_zero() {
                return f.write_str("0");
            }
            let mut digits = Vec::new();
            let chunk = BigInt::from(1_000_000_000i64);
            let mut v = self.abs();
            while !v.is_zero() {
                let (q, r) = v.divrem_euclid(&chunk);
                digits.push(r.to_i64().unwrap_or(0));
                v = q;
            }
            if self.neg {
                f.write_str("-")?;
            }
            let mut it = digits.iter().rev();
            if let Some(first) = it.next() {
                write!(f, "{first}")?;
            }
            for d in it {
                write!(f, "{d:09}")?;
            }
            Ok(())
        }
    };
}

impl fmt::Debug for BigInt {
    fmt_decimal!();
}

impl fmt::Display for BigInt {
    fmt_decimal!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn roundtrip_and_ordering() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 40] {
            assert_eq!(b(v).to_i64(), Some(v), "roundtrip {v}");
        }
        assert!(b(3) > b(2));
        assert!(b(-3) < b(-2));
        assert!(b(-1) < b(0));
        assert!(b(0) < b(1));
        assert_eq!(b(0).signum(), 0);
        assert_eq!(b(i64::MIN).signum(), -1);
    }

    #[test]
    fn add_sub_mul_match_i128() {
        let samples = [
            0i64,
            1,
            -1,
            7,
            -13,
            1 << 31,
            -(1 << 33),
            i64::MAX,
            i64::MIN,
            i64::MAX - 1,
        ];
        for &x in &samples {
            for &y in &samples {
                assert_eq!(
                    b(x).add(&b(y)).to_i64(),
                    i64::try_from(x as i128 + y as i128).ok(),
                    "{x} + {y}"
                );
                assert_eq!(
                    b(x).sub(&b(y)).to_i64(),
                    i64::try_from(x as i128 - y as i128).ok(),
                    "{x} - {y}"
                );
                let prod = x as i128 * y as i128;
                if let Ok(p) = i64::try_from(prod) {
                    assert_eq!(b(x).mul(&b(y)).to_i64(), Some(p), "{x} * {y}");
                }
            }
        }
        // A product far beyond i64 stays exact.
        let big = b(i64::MAX).mul(&b(i64::MAX));
        let (q, r) = big.divrem_euclid(&b(i64::MAX));
        assert_eq!(q.to_i64(), Some(i64::MAX));
        assert!(r.is_zero());
    }

    #[test]
    fn euclidean_division_matches_std() {
        let samples = [1i64, -1, 2, -2, 3, -3, 7, -7, 1 << 35, i64::MAX, -97];
        let nums = [0i64, 1, -1, 17, -17, 100, -100, i64::MAX, i64::MIN + 1];
        for &n in &nums {
            for &d in &samples {
                let (q, r) = b(n).divrem_euclid(&b(d));
                assert_eq!(q.to_i64(), Some(n.div_euclid(d)), "{n} div_euclid {d}");
                assert_eq!(r.to_i64(), Some(n.rem_euclid(d)), "{n} rem_euclid {d}");
            }
        }
    }

    #[test]
    fn gcd_matches_naive() {
        assert_eq!(b(12).gcd(&b(18)).to_i64(), Some(6));
        assert_eq!(b(-12).gcd(&b(18)).to_i64(), Some(6));
        assert_eq!(b(0).gcd(&b(5)).to_i64(), Some(5));
        assert_eq!(b(0).gcd(&b(0)).to_i64(), Some(0));
        assert_eq!(b(i64::MIN).gcd(&b(2)).to_i64(), Some(2));
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(format!("{}", b(0)), "0");
        assert_eq!(format!("{}", b(-42)), "-42");
        assert_eq!(format!("{}", b(i64::MAX)), i64::MAX.to_string(),);
        assert_eq!(
            format!("{}", b(i64::MAX).mul(&b(10)).add(&b(7))),
            format!("{}7", i64::MAX),
        );
    }
}
