//! Conjunctions of affine constraints with local existential variables.

use crate::arith::note_arith_overflow;
use crate::constraint::{Constraint, ConstraintKind};
use crate::feasible::{find_model, is_feasible, Feasibility, ModelOutcome};
use crate::hash::{combine_unordered, structural_hash_of, StructuralHasher};
use crate::linexpr::{gcd, LinExpr};
use crate::space::{Space, VarKind};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Upper bound on the conjunct-level feasibility memo; when reached the memo
/// is cleared wholesale (an epoch eviction — cheap, and the working set of a
/// single checker run refills quickly).
const FEASIBILITY_MEMO_CAP: usize = 1 << 15;

thread_local! {
    /// Memo of exact feasibility verdicts keyed by structural hash.
    ///
    /// The `simplified` / `subtract` / `is_subset` chains of the relation
    /// algebra re-derive structurally identical conjuncts over and over (the
    /// same bounds re-emerge after every compose/restrict), and each used to
    /// pay for a full Omega-test run.  The canonical structural hash makes
    /// those repeats a single map probe.  In debug builds the canonical
    /// constraint system is stored alongside the verdict and compared on
    /// every hit, so a 64-bit collision would be caught by tests instead of
    /// silently corrupting a verdict.
    static FEASIBILITY_MEMO: RefCell<HashMap<u64, MemoEntry>> = RefCell::new(HashMap::new());
}

#[cfg(debug_assertions)]
type MemoEntry = (Feasibility, Vec<Constraint>, usize);
#[cfg(not(debug_assertions))]
type MemoEntry = Feasibility;

/// Running counters for the feasibility memo of this thread:
/// `(hits, misses)`.  Exposed for benchmarks and the perf experiments.
pub fn feasibility_memo_stats() -> (u64, u64) {
    FEASIBILITY_MEMO_STATS.with(|s| *s.borrow())
}

thread_local! {
    static FEASIBILITY_MEMO_STATS: RefCell<(u64, u64)> = const { RefCell::new((0, 0)) };
}

/// A shareable store of feasibility verdicts keyed by
/// [`Conjunct::structural_hash`].
///
/// The default memo behind [`Conjunct::is_feasible`] is thread-local: verdicts
/// die with the thread and are never seen by other threads or later queries.
/// A long-lived verification engine can do better — the same canonical
/// conjuncts (loop-bound boxes, strides, composed dependency mappings)
/// recur across queries — so the memo is also available *behind a handle*:
/// install an implementation of this trait with [`with_feasibility_cache`]
/// and the memo becomes two-level.  The thread-local map stays in front (a
/// hit never touches the handle, so the hot path stays lock-free); on a
/// local miss the shared store is consulted, hits are copied down into the
/// thread-local map, and freshly computed verdicts are published to both.
///
/// Implementations must collapse the Omega test's "work limit hit" outcome
/// into `true` before storing (the conservative direction, exactly what the
/// thread-local memo's `as_bool` does on every hit).
pub trait FeasibilityCache: Send + Sync {
    /// Looks up the verdict for a canonical-form hash.
    fn get(&self, key: u64) -> Option<bool>;
    /// Stores a verdict for a canonical-form hash.
    fn put(&self, key: u64, feasible: bool);
}

thread_local! {
    /// The per-thread override installed by [`with_feasibility_cache`]; when
    /// present it becomes the second level behind the thread-local memo.
    static FEASIBILITY_CACHE_OVERRIDE: RefCell<Option<Arc<dyn FeasibilityCache>>> =
        const { RefCell::new(None) };

    /// Identity (allocation address) of the cache the thread-local memo was
    /// last used under; 0 when no cache was installed.  [`Conjunct::is_feasible`]
    /// clears the memo whenever this changes, so entries computed under a
    /// *different* (or no) shared store never mask the one currently
    /// installed: without the scoping, a verdict computed before the store
    /// existed would be served from the first level forever and never be
    /// published, leaving other threads of the same session to recompute it.
    static FEASIBILITY_MEMO_SCOPE: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with `cache` installed as this thread's second-level
/// feasibility store (see [`FeasibilityCache`] for the two-level protocol).
///
/// While installed, verdicts computed by [`Conjunct::is_feasible`] on this
/// thread are published to `cache` and thread-local misses consult it, so
/// verdicts survive the call and are visible to every other thread sharing
/// the same handle.  The previous handle (if any) is restored when `f`
/// returns or panics, so installations nest.
pub fn with_feasibility_cache<R>(cache: Arc<dyn FeasibilityCache>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn FeasibilityCache>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FEASIBILITY_CACHE_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = FEASIBILITY_CACHE_OVERRIDE.with(|c| c.borrow_mut().replace(cache));
    let _restore = Restore(previous);
    f()
}

/// The feasibility store currently installed on this thread, if any.
///
/// Worker pools that fan one verification run across scoped threads use this
/// to capture the caller's store and re-install it (via
/// [`with_feasibility_cache`]) inside every worker, so all workers publish
/// to and consult the same session-level memo.
pub fn current_feasibility_cache() -> Option<Arc<dyn FeasibilityCache>> {
    FEASIBILITY_CACHE_OVERRIDE.with(|c| c.borrow().clone())
}

/// Identity of the currently-installed cache (0 when none) — cheap to read
/// on every [`Conjunct::is_feasible`] call, no `Arc` clone involved.
fn installed_cache_identity() -> usize {
    FEASIBILITY_CACHE_OVERRIDE.with(|c| {
        c.borrow()
            .as_ref()
            .map_or(0, |a| Arc::as_ptr(a) as *const () as usize)
    })
}

/// A conjunction of [`Constraint`]s over a [`Space`], possibly with local
/// existentially-quantified variables.
///
/// A conjunct denotes the set of (input-tuple, output-tuple, parameter)
/// points for which *some* assignment of the existential variables satisfies
/// every constraint.  Strided iteration domains (`for (k = 0; k < N; k += 2)`)
/// and the intermediate tuples introduced by relation composition are the two
/// sources of existentials in this crate; the simplifier converts the former
/// into congruence constraints and eliminates the latter whenever the
/// elimination is exact.
///
/// Columns of every constraint are laid out as
/// `[input dims | output dims | parameters | existentials]` followed by the
/// constant term; see [`Space`] for the global part.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Conjunct {
    space: Space,
    n_exists: usize,
    constraints: Vec<Constraint>,
}

impl Conjunct {
    /// The universe conjunct (no constraints) over `space`.
    pub fn universe(space: Space) -> Self {
        Conjunct {
            space,
            n_exists: 0,
            constraints: Vec::new(),
        }
    }

    /// The space this conjunct is defined over.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of local existential variables.
    pub fn n_exists(&self) -> usize {
        self.n_exists
    }

    /// Total number of variable columns (globals plus existentials).
    pub fn n_vars(&self) -> usize {
        self.space.n_global() + self.n_exists
    }

    /// The constraints of this conjunct.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Column index of dimension `idx` of `kind`.
    pub fn col(&self, kind: VarKind, idx: usize) -> usize {
        self.space.col(kind, idx, self.n_exists)
    }

    /// A fresh zero linear expression with this conjunct's column count.
    pub fn zero_expr(&self) -> LinExpr {
        LinExpr::zero(self.n_vars())
    }

    /// A linear expression selecting dimension `idx` of `kind`.
    pub fn var_expr(&self, kind: VarKind, idx: usize) -> LinExpr {
        LinExpr::var(self.n_vars(), self.col(kind, idx))
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint's column count does not match this conjunct.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(
            c.n_vars(),
            self.n_vars(),
            "constraint has wrong number of columns"
        );
        self.constraints.push(c);
    }

    /// Adds `count` existential variables and returns the column index of the
    /// first new one.  Existing constraints are padded with zero columns.
    pub fn add_exists(&mut self, count: usize) -> usize {
        let first = self.n_vars();
        self.n_exists += count;
        for c in &mut self.constraints {
            *c = c.extended(count);
        }
        first
    }

    /// Whether the conjunct contains the given point, where `point` lists the
    /// values of all *global* columns (inputs, then outputs, then parameters).
    ///
    /// Existential variables are handled by the exact feasibility test, so
    /// this is a decision, not a heuristic.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the number of global columns.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.space.n_global(), "wrong point arity");
        if self.n_exists == 0 {
            // Quantifier-free: evaluate each constraint directly against the
            // point — no clones, no allocation, no solver.
            return self.constraints.iter().all(|c| c.holds(point));
        }
        // Residualise every constraint onto the existential columns: the
        // global columns are fixed by `point`, so their contribution folds
        // into the constant.  The resulting system is tiny (existentials
        // only) and goes straight to the feasibility test.
        let mut cs: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        let before_pending = crate::arith::arith_overflow_pending();
        for c in &self.constraints {
            let mut e = LinExpr::zero(self.n_exists);
            let global = self.space.n_global();
            for ex in 0..self.n_exists {
                e.set_coeff(ex, c.expr().coeff(global + ex));
            }
            let folded = match c.expr().try_eval_prefix(point) {
                Ok(v) => v,
                Err(_) => {
                    // The folded constant does not fit i64: report "outside"
                    // conservatively and note the sticky flag so the
                    // enclosing verdict degrades to inconclusive.
                    note_arith_overflow();
                    return false;
                }
            };
            e.set_constant(folded);
            cs.push(match c.kind() {
                ConstraintKind::Eq => Constraint::eq(e),
                ConstraintKind::Geq => Constraint::geq(e),
                ConstraintKind::Mod => Constraint::congruent(e, c.modulus()),
            });
        }
        decide_with_fallback(&cs, self.n_exists, before_pending).as_bool()
    }

    /// Whether the conjunct has at least one integer point (for some value of
    /// the parameters).
    ///
    /// Verdicts are memoised per thread, keyed by the conjunct's
    /// [`structural_hash`](Conjunct::structural_hash): the relation algebra
    /// (`simplified(true)`, `subtract`, `is_subset`) issues the same
    /// emptiness queries for structurally identical conjuncts many times per
    /// traversal, and only the first run pays for the Omega test.
    pub fn is_feasible(&self) -> bool {
        let key = self.structural_hash();
        // Scope the thread-local level to the installed shared store: when a
        // different store (or none) was active the last time this thread
        // memoised, the first level is cleared so every verdict the current
        // session needs flows through the shared store at least once per
        // thread — consulted on the miss, published on the compute.  Without
        // this, entries memoised outside the session mask the shared level
        // ("dead weight": lookups never reach it, verdicts never get
        // published for the session's other threads).
        let scope = installed_cache_identity();
        FEASIBILITY_MEMO_SCOPE.with(|s| {
            if s.get() != scope {
                s.set(scope);
                FEASIBILITY_MEMO.with(|m| m.borrow_mut().clear());
            }
        });
        // Level 1: the thread-local memo, always — a hit stays lock-free
        // even inside an engine session, keeping the hot path as cheap as
        // before the shared store existed.
        let cached = FEASIBILITY_MEMO.with(|m| {
            #[cfg(debug_assertions)]
            {
                m.borrow().get(&key).map(|(f, canon, n)| {
                    assert_eq!(
                        (canon, *n),
                        (&self.canonical_constraints(), self.n_vars()),
                        "structural_hash collision in the feasibility memo"
                    );
                    *f
                })
            }
            #[cfg(not(debug_assertions))]
            {
                m.borrow().get(&key).copied()
            }
        });
        if let Some(f) = cached {
            FEASIBILITY_MEMO_STATS.with(|s| s.borrow_mut().0 += 1);
            return f.as_bool();
        }
        // Level 2: the cross-thread store installed by
        // `with_feasibility_cache`, consulted on a thread-local miss only.
        // A hit is copied down into the thread-local memo so repeats on this
        // thread never touch the shared store's locks again.
        let shared = current_feasibility_cache();
        if let Some(cache) = &shared {
            if let Some(feasible) = cache.get(key) {
                FEASIBILITY_MEMO_STATS.with(|s| s.borrow_mut().0 += 1);
                let f = if feasible {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible
                };
                self.memoize_locally(key, f);
                return feasible;
            }
        }
        FEASIBILITY_MEMO_STATS.with(|s| s.borrow_mut().1 += 1);
        // Memo hits deliberately get no span: they are nanosecond-scale and
        // would flood the trace. Only the actual Omega-test compute is timed.
        let _span = arrayeq_trace::span_with("feasibility", || {
            vec![
                arrayeq_trace::u("constraints", self.constraints.len() as u64),
                arrayeq_trace::u("vars", self.n_vars() as u64),
            ]
        });
        let t0 = arrayeq_trace::metrics_timer();
        let before_pending = crate::arith::arith_overflow_pending();
        let mut f = is_feasible(&self.constraints, self.n_vars());
        arrayeq_trace::record_elapsed(arrayeq_trace::Metric::Feasibility, t0);
        // Overflow fallback: a conjunct whose checked-`i64` run tripped the
        // PR 9 sticky flag is re-decided by the big-integer port of the same
        // procedure, where overflow cannot occur.  On success the exact
        // verdict replaces the conservative one, and the flag raised by this
        // query is consumed (a flag that was already pending before the query
        // belongs to someone else and is left alone) — so the enclosing
        // checker run stays conclusive instead of degrading to
        // `Inconclusive`.
        if f == Feasibility::Overflow {
            f = bigint_refine(&self.constraints, self.n_vars(), before_pending, f);
        }
        // Overflow-degraded verdicts are *never* memoised (locally or in the
        // shared store): the conservative "feasible" stands for "unknown",
        // and caching it would let one overflow-afflicted query poison every
        // structurally identical query for the lifetime of the memo — even
        // ones issued by a checker run that would have reported the overflow
        // as a typed inconclusive verdict.
        if f != Feasibility::Overflow {
            self.memoize_locally(key, f);
            if let Some(cache) = shared {
                cache.put(key, f.as_bool());
            }
        }
        f.as_bool()
    }

    /// Stores a verdict in this thread's memo (with the canonical form for
    /// the debug-build collision cross-check).
    fn memoize_locally(&self, key: u64, f: Feasibility) {
        FEASIBILITY_MEMO.with(|m| {
            let mut m = m.borrow_mut();
            if m.len() >= FEASIBILITY_MEMO_CAP {
                m.clear();
            }
            #[cfg(debug_assertions)]
            m.insert(key, (f, self.canonical_constraints(), self.n_vars()));
            #[cfg(not(debug_assertions))]
            m.insert(key, f);
        });
    }

    /// Returns a concrete integer point of this conjunct — values for every
    /// *global* column (inputs, then outputs, then parameters) — or `None`
    /// when the conjunct is empty (or the solver's work limit was hit).
    ///
    /// The point is produced by the Omega test's model extraction
    /// ([`crate::Relation::sample_point`] documents the semantics): the same
    /// elimination order as the feasibility decision, with the witness
    /// reconstructed by back-substitution, so congruences, existential
    /// variables and dark-shadow/splinter cases are all handled exactly.
    /// Every returned point satisfies [`Conjunct::contains`].
    pub fn sample_point(&self) -> Option<Vec<i64>> {
        match find_model(&self.constraints, self.n_vars()) {
            ModelOutcome::Model(m) => {
                let point = m[..self.space.n_global()].to_vec();
                debug_assert!(
                    self.contains(&point) || crate::arith::arith_overflow_pending(),
                    "sample_point produced a point outside the conjunct"
                );
                Some(point)
            }
            ModelOutcome::Infeasible | ModelOutcome::Unknown => None,
        }
    }

    /// The canonical constraint list: existential columns renamed into their
    /// canonical order (see [`Conjunct::canonical_exists_order`]), every
    /// constraint normalised (gcd-reduced, sign-canonicalised),
    /// trivially-true constraints dropped, sorted and deduplicated.  Two
    /// conjuncts whose constraint lists are permutations, duplications,
    /// gcd-scalings *or existential renamings* of each other share one
    /// canonical list.
    pub fn canonical_constraints(&self) -> Vec<Constraint> {
        let remap = self.canonical_exists_order().filter(|order| {
            // Skip the remap when the canonical order is the given order.
            order.iter().enumerate().any(|(new, &old)| new != old)
        });
        let mut cs: Vec<Constraint> = match remap {
            Some(order) => {
                let global = self.space.n_global();
                let n_vars = self.n_vars();
                let mut map: Vec<usize> = (0..n_vars).collect();
                for (new_pos, &old_e) in order.iter().enumerate() {
                    map[global + old_e] = global + new_pos;
                }
                self.constraints
                    .iter()
                    .map(|c| c.remapped(&map, n_vars).normalized())
                    .filter(|c| c.trivial() != Some(true))
                    .collect()
            }
            None => self
                .constraints
                .iter()
                .map(Constraint::normalized)
                .filter(|c| c.trivial() != Some(true))
                .collect(),
        };
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// The canonical order of the existential columns, as the list of old
    /// existential indices in their new order — or `None` when fewer than
    /// two existentials leave nothing to permute.
    ///
    /// Existential variables are anonymous, so two structurally identical
    /// dependency mappings can reach the checker with their existential
    /// columns in different orders (composition concatenates the
    /// existentials of both operands in operand order; differently-written
    /// iterator nests introduce them in program order).  To make
    /// [`Conjunct::structural_hash`] invariant under that renaming, each
    /// existential gets a *signature* — a digest of the constraints it
    /// appears in, seen through column-order-insensitive lenses, refined
    /// Weisfeiler–Lehman-style so mutually-referencing existentials
    /// separate — and columns are sorted by signature (ties keep the given
    /// order, which can only cost a missed table hit, never a wrong one:
    /// the hash is always computed from one concrete renamed system).
    fn canonical_exists_order(&self) -> Option<Vec<usize>> {
        if self.n_exists < 2 {
            return None;
        }
        let global = self.space.n_global();
        let n = self.n_exists;
        let mut sig = vec![0u64; n];
        let mut next = vec![0u64; n];
        // Round 0 uses no neighbour signatures; each refinement round folds
        // the previous round's signatures of co-occurring existentials in.
        // One refinement separates every chain this crate builds (two for
        // larger existential sets); the multisets of lenses / neighbour
        // digests are folded with wrapping addition — commutative, so
        // order-insensitive without the sort-and-allocate of
        // `combine_unordered` on what is the `is_feasible` hot path.
        let refinements = if n <= 3 { 1 } else { 2 };
        for round in 0..=refinements {
            for (e, slot) in next.iter_mut().enumerate() {
                let col = global + e;
                let mut lens_acc = 0u64;
                let mut lens_count = 0u64;
                for c in &self.constraints {
                    let a = c.expr().coeff(col);
                    if a == 0 {
                        continue;
                    }
                    // Equalities and congruences are sign-symmetric; viewing
                    // each through the sign of this column's coefficient
                    // keeps the lens stable across `e - f = 0` vs
                    // `f - e = 0` presentations.
                    let s = match c.kind() {
                        ConstraintKind::Geq => 1,
                        _ => a.signum(),
                    };
                    let mut h = StructuralHasher::new();
                    let kind_tag = match c.kind() {
                        ConstraintKind::Eq => 0u8,
                        ConstraintKind::Geq => 1,
                        ConstraintKind::Mod => 2,
                    };
                    let modulus = match c.kind() {
                        ConstraintKind::Mod => c.modulus(),
                        _ => 0,
                    };
                    // Hash-only arithmetic: wrapping is fine here (the lens
                    // just needs determinism, `-i64::MIN` included).
                    (kind_tag, modulus, s.wrapping_mul(a)).hash(&mut h);
                    for g in 0..global {
                        s.wrapping_mul(c.expr().coeff(g)).hash(&mut h);
                    }
                    s.wrapping_mul(c.expr().constant()).hash(&mut h);
                    let mut neigh_acc = 0u64;
                    for o in (0..n).filter(|&o| o != e) {
                        let coeff = c.expr().coeff(global + o);
                        if coeff != 0 {
                            let prev = if round == 0 { 0 } else { sig[o] };
                            neigh_acc = neigh_acc
                                .wrapping_add(structural_hash_of(&(s.wrapping_mul(coeff), prev)));
                        }
                    }
                    h.write_u64(neigh_acc);
                    lens_acc = lens_acc.wrapping_add(h.finish());
                    lens_count += 1;
                }
                *slot = structural_hash_of(&(lens_acc, lens_count));
            }
            std::mem::swap(&mut sig, &mut next);
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&e| (sig[e], e));
        Some(order)
    }

    /// A stable 64-bit hash of the canonical structural form.
    ///
    /// Invariant under constraint permutation, duplication, gcd scaling
    /// (everything [`Constraint::normalized`] folds away) *and* renaming of
    /// the existential columns (see [`Conjunct::canonical_exists_order`]);
    /// sensitive to the space arities, the number of existentials and every
    /// surviving canonical constraint.  Equal conjuncts — and conjuncts that
    /// differ only by those cosmetic presentation choices — hash
    /// identically; the converse holds up to 64-bit collisions, which the
    /// debug-build memo checks guard against.
    pub fn structural_hash(&self) -> u64 {
        // With zero or one existential there is nothing to rename, so the
        // cheap per-constraint path (no remapping clone) is exact.
        let per_constraint: Vec<u64> = if self.n_exists >= 2 {
            self.canonical_constraints()
                .iter()
                .map(structural_hash_of)
                .collect()
        } else {
            self.constraints
                .iter()
                .map(Constraint::normalized)
                .filter(|c| c.trivial() != Some(true))
                .map(|c| structural_hash_of(&c))
                .collect()
        };
        let salt = structural_hash_of(&(
            self.space.n_in(),
            self.space.n_out(),
            self.space.n_param(),
            self.n_exists,
        ));
        combine_unordered(per_constraint, salt)
    }

    /// Intersects two conjuncts over compatible spaces.  The result keeps
    /// `self`'s space (dimension names) and concatenates the existentials.
    pub fn intersect(&self, other: &Conjunct) -> Conjunct {
        assert!(
            self.space.is_compatible(other.space()),
            "intersect: incompatible spaces"
        );
        let mut result = self.clone();
        let offset = result.add_exists(other.n_exists);
        let n_new = result.n_vars();
        // Map other's columns into result's columns.
        let mut map = Vec::with_capacity(other.n_vars());
        for col in 0..other.space.n_global() {
            map.push(col);
        }
        for e in 0..other.n_exists {
            map.push(offset + e);
        }
        for c in other.constraints() {
            result.constraints.push(c.remapped(&map, n_new));
        }
        result
    }

    /// Returns the conjunct with input and output dims swapped (inverse).
    pub fn reversed(&self) -> Conjunct {
        let new_space = self.space.reversed();
        let n_in = self.space.n_in();
        let n_out = self.space.n_out();
        let n_param = self.space.n_param();
        let mut map = Vec::with_capacity(self.n_vars());
        // old input i  -> new output i (columns shift by new n_in = old n_out)
        for i in 0..n_in {
            map.push(n_out + i);
        }
        // old output j -> new input j
        for j in 0..n_out {
            map.push(j);
        }
        for p in 0..n_param {
            map.push(n_in + n_out + p);
        }
        for e in 0..self.n_exists {
            map.push(n_in + n_out + n_param + e);
        }
        let constraints = self
            .constraints
            .iter()
            .map(|c| c.remapped(&map, self.n_vars()))
            .collect();
        Conjunct {
            space: new_space,
            n_exists: self.n_exists,
            constraints,
        }
    }

    /// Projects the conjunct onto its input dims (for a relation: the domain;
    /// for a set this is the identity).  Output dims become existentials.
    pub fn domain(&self) -> Conjunct {
        let n_in = self.space.n_in();
        let n_out = self.space.n_out();
        let n_param = self.space.n_param();
        let new_space = self.space.domain_space();
        // New layout: [in | params | old outs (as exists) | old exists]
        let mut map = Vec::with_capacity(self.n_vars());
        for i in 0..n_in {
            map.push(i);
        }
        for j in 0..n_out {
            map.push(n_in + n_param + j);
        }
        for p in 0..n_param {
            map.push(n_in + p);
        }
        for e in 0..self.n_exists {
            map.push(n_in + n_param + n_out + e);
        }
        let constraints = self
            .constraints
            .iter()
            .map(|c| c.remapped(&map, self.n_vars()))
            .collect();
        let mut out = Conjunct {
            space: new_space,
            n_exists: n_out + self.n_exists,
            constraints,
        };
        out.simplify();
        out
    }

    /// Projects the conjunct onto its output dims (the range of a relation).
    pub fn range(&self) -> Conjunct {
        self.reversed().domain()
    }

    /// Simplifies the conjunct in place:
    ///
    /// * normalises every constraint;
    /// * turns matching `e ≥ 0 ∧ −e ≥ 0` pairs into equalities;
    /// * eliminates existential variables when the elimination is exact
    ///   (unit-coefficient equalities, single-occurrence equalities via
    ///   congruences, single-occurrence congruences, variables unconstrained
    ///   or bounded on only one side, unit-coefficient Fourier–Motzkin);
    /// * drops duplicate and trivially-true constraints.
    ///
    /// Returns `false` when a constraint is *syntactically* recognised as
    /// unsatisfiable (e.g. `0 ≥ 1`); the conjunct may still be empty even when
    /// `true` is returned — use [`Conjunct::is_feasible`] for the decision.
    pub fn simplify(&mut self) -> bool {
        loop {
            let mut changed = false;

            // 1. Normalise, drop trivially-true, detect trivially-false.
            let mut new_constraints = Vec::with_capacity(self.constraints.len());
            for c in &self.constraints {
                let n = c.normalized();
                match n.trivial() {
                    Some(true) => {
                        changed = true;
                        continue;
                    }
                    Some(false) => {
                        self.constraints = vec![n];
                        return false;
                    }
                    None => new_constraints.push(n),
                }
            }
            self.constraints = new_constraints;

            // 2. Opposite inequalities -> equality.
            changed |= self.promote_equalities();

            // 3. Try to eliminate each existential column.
            if self.eliminate_one_existential() {
                changed = true;
            }

            // 4. Dedup (structural order — no textual rendering involved).
            let before = self.constraints.len();
            self.constraints.sort_unstable();
            self.constraints.dedup();
            changed |= self.constraints.len() != before;

            // 5. Constraint-level subsumption: among inequalities sharing a
            // coefficient vector only the tightest can bind, and an equality
            // over the same (or negated) vector decides such inequalities
            // outright.
            changed |= self.drop_dominated_inequalities();

            if !changed {
                return true;
            }
        }
    }

    /// Drops inequalities implied by a sibling constraint over the same
    /// coefficient vector: `a·x + c₁ ≥ 0` absorbs `a·x + c₂ ≥ 0` when
    /// `c₂ ≥ c₁`, and `a·x + c₁ = 0` (or its negation) decides both
    /// directions.  Constraints are assumed normalised (step 1 of
    /// [`Conjunct::simplify`] guarantees it), so coefficient vectors are
    /// primitive and directly comparable.  Returns whether anything changed.
    fn drop_dominated_inequalities(&mut self) -> bool {
        let n = self.constraints.len();
        if n < 2 {
            return false;
        }
        let mut drop = vec![false; n];
        for i in 0..n {
            if drop[i] || self.constraints[i].kind() != ConstraintKind::Geq {
                continue;
            }
            for j in 0..n {
                if i == j || drop[j] {
                    continue;
                }
                let (s, o) = (&self.constraints[i], &self.constraints[j]);
                // i128 spreads: constants near i64::MIN/MAX must not wrap.
                let (sc, oc) = (s.expr().constant() as i128, o.expr().constant() as i128);
                let implied = match o.kind() {
                    ConstraintKind::Geq => {
                        same_coeffs(o.expr(), s.expr()) && (oc < sc || (oc == sc && j < i))
                    }
                    ConstraintKind::Eq => {
                        (same_coeffs(o.expr(), s.expr()) && sc - oc >= 0)
                            || (opposite_coeffs(o.expr(), s.expr()) && sc + oc >= 0)
                    }
                    ConstraintKind::Mod => false,
                };
                if implied {
                    drop[i] = true;
                    break;
                }
            }
        }
        if drop.iter().any(|&d| d) {
            let mut it = drop.iter();
            self.constraints
                .retain(|_| !*it.next().expect("mask length"));
            true
        } else {
            false
        }
    }

    /// Whether `other` is provably a subset of `self`, decided syntactically
    /// (no solver call): `self` must be quantifier-free and every canonical
    /// constraint of `self` must be implied by a single constraint of
    /// `other` — verbatim, as a looser inequality over the same coefficient
    /// vector, or via an equality that pins that vector.  False negatives
    /// are allowed (and common); a `true` is always sound.  Used by the DNF
    /// coalescing pass to drop redundant disjuncts.
    pub fn subsumes(&self, other: &Conjunct) -> bool {
        if !self.space.is_compatible(other.space()) || self.n_exists != 0 {
            return false;
        }
        let mine = self.canonical_constraints();
        if mine.is_empty() {
            return true; // the universe subsumes everything
        }
        let theirs: Vec<Constraint> = other
            .constraints
            .iter()
            .map(Constraint::normalized)
            .filter(|c| c.trivial() != Some(true))
            .collect();
        mine.iter().all(|s| {
            // Zero-extend over other's existentials: a constraint without
            // existential columns holds at every point of `other` iff some
            // constraint of `other` implies it.
            let s = s.extended(other.n_exists);
            theirs.iter().any(|o| constraint_implies(o, &s))
        })
    }

    /// Removes constraints implied by the *remaining* constraints of this
    /// conjunct (each candidate is implied iff every negation piece of it is
    /// infeasible against the rest) — the self-gist that renders witnessed
    /// domains minimally.  Set-preserving by construction, so sampling and
    /// membership are unaffected.  Quantifier-free conjuncts only (a no-op
    /// otherwise); congruences with large moduli are skipped (their negation
    /// fans out into `m − 1` pieces).
    ///
    /// The redundancy probes run the solver; any overflow flag they raise is
    /// consumed here (the probes are cosmetic — dropping a constraint never
    /// changes the set — so they must not degrade the enclosing verdict).
    pub fn drop_redundant(&mut self) {
        if self.n_exists != 0 || self.constraints.len() < 2 {
            return;
        }
        let before_pending = crate::arith::arith_overflow_pending();
        let mut i = 0;
        while i < self.constraints.len() && self.constraints.len() >= 2 {
            let c = &self.constraints[i];
            if c.kind() == ConstraintKind::Mod && c.modulus() > 16 {
                i += 1;
                continue;
            }
            let rest: Vec<Constraint> = self
                .constraints
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .collect();
            let implied = self.constraints[i].negated().into_iter().all(|neg| {
                let mut probe = Conjunct::from_parts(
                    self.space.clone(),
                    0,
                    rest.iter().cloned().chain(std::iter::once(neg)).collect(),
                );
                !(probe.simplify() && probe.is_feasible())
            });
            if implied {
                self.constraints.remove(i);
            } else {
                i += 1;
            }
        }
        if !before_pending && crate::arith::arith_overflow_pending() {
            let _ = crate::arith::take_arith_overflow();
        }
    }

    /// Gist of this conjunct against a context conjunct: removes constraints
    /// implied by the *conjunction* of the remaining constraints and the
    /// context, so that `gist ∧ context == self ∧ context`.  Both conjuncts
    /// must be quantifier-free over compatible spaces (a no-op otherwise).
    /// Like [`Conjunct::drop_redundant`], the probes' overflow flags are
    /// consumed — an incomplete gist is cosmetic, never a soundness issue.
    pub(crate) fn gist_against(&mut self, context: &Conjunct) {
        if self.n_exists != 0
            || context.n_exists != 0
            || !self.space.is_compatible(context.space())
            || self.constraints.is_empty()
        {
            return;
        }
        let before_pending = crate::arith::arith_overflow_pending();
        let mut i = 0;
        while i < self.constraints.len() {
            let c = &self.constraints[i];
            if c.kind() == ConstraintKind::Mod && c.modulus() > 16 {
                i += 1;
                continue;
            }
            let rest: Vec<Constraint> = self
                .constraints
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .chain(context.constraints.iter().cloned())
                .collect();
            let implied = self.constraints[i].negated().into_iter().all(|neg| {
                let mut probe = Conjunct::from_parts(
                    self.space.clone(),
                    0,
                    rest.iter().cloned().chain(std::iter::once(neg)).collect(),
                );
                !(probe.simplify() && probe.is_feasible())
            });
            if implied {
                self.constraints.remove(i);
            } else {
                i += 1;
            }
        }
        if !before_pending && crate::arith::arith_overflow_pending() {
            let _ = crate::arith::take_arith_overflow();
        }
    }

    /// Replaces `e ≥ 0 ∧ −e ≥ 0` pairs by `e = 0`.  Returns whether anything
    /// changed.
    fn promote_equalities(&mut self) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < self.constraints.len() {
            if self.constraints[i].kind() != ConstraintKind::Geq {
                i += 1;
                continue;
            }
            // A non-negatable expression (i64::MIN entry) simply keeps its
            // inequality pair un-promoted — a cosmetic miss, not an error.
            let neg = match self.constraints[i].expr().try_scale(-1) {
                Ok(neg) => neg,
                Err(_) => {
                    i += 1;
                    continue;
                }
            };
            if let Some(j) =
                self.constraints.iter().enumerate().position(|(k, c)| {
                    k != i && c.kind() == ConstraintKind::Geq && *c.expr() == neg
                })
            {
                let expr = self.constraints[i].expr().clone();
                let (lo, hi) = (i.min(j), i.max(j));
                self.constraints.remove(hi);
                self.constraints.remove(lo);
                self.constraints.push(Constraint::eq(expr));
                changed = true;
                // restart scan
                i = 0;
            } else {
                i += 1;
            }
        }
        changed
    }

    /// Attempts to eliminate a single existential column exactly; returns
    /// whether one was eliminated.
    fn eliminate_one_existential(&mut self) -> bool {
        let global = self.space.n_global();
        for e in 0..self.n_exists {
            let col = global + e;
            let users: Vec<usize> = (0..self.constraints.len())
                .filter(|&i| self.constraints[i].uses(col))
                .collect();

            // Unused column: just drop it.
            if users.is_empty() {
                self.remove_exists_col(e);
                return true;
            }

            // Unit-coefficient equality: substitute everywhere.  Every
            // rewrite is validated (checked arithmetic) before the system is
            // replaced; if any substitution would overflow the elimination is
            // skipped wholesale, leaving the original — still exact — system.
            if let Some(&i) = users.iter().find(|&&i| {
                self.constraints[i].kind() == ConstraintKind::Eq
                    && self.constraints[i].expr().coeff(col).unsigned_abs() == 1
            }) {
                let eq = self.constraints[i].clone();
                let a = eq.expr().coeff(col);
                let mut value = eq.expr().clone();
                value.set_coeff(col, 0);
                if value.try_scale_assign(-a).is_ok() {
                    let mut next = Vec::with_capacity(self.constraints.len() - 1);
                    let mut ok = true;
                    for (j, c) in self.constraints.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        let mut expr = c.expr().clone();
                        if expr.try_substitute_assign(col, &value).is_err() {
                            ok = false;
                            break;
                        }
                        next.push(match c.kind() {
                            ConstraintKind::Eq => Constraint::eq(expr),
                            ConstraintKind::Geq => Constraint::geq(expr),
                            ConstraintKind::Mod => Constraint::congruent(expr, c.modulus()),
                        });
                    }
                    if ok {
                        self.constraints = next;
                        self.remove_exists_col(e);
                        return true;
                    }
                }
            }

            // Equality with a non-unit coefficient: ∃e: a·e + f = 0 pins
            // e = −f/a, so every other constraint g + b·e (op) 0 can be
            // scaled by |a| > 0 and rewritten as |a|·g − sign(a)·b·f (op) 0
            // (with the modulus also scaled for congruences), plus the
            // divisibility condition f ≡ 0 (mod |a|).  This is exact.
            if let Some(&i) = users.iter().find(|&&i| {
                self.constraints[i].kind() == ConstraintKind::Eq
                    && self.constraints[i].expr().coeff(col) != 0
            }) {
                let eq = self.constraints[i].clone();
                let a = eq.expr().coeff(col);
                let mut f = eq.expr().clone();
                f.set_coeff(col, 0);
                // Checked throughout: scaling by |a| and folding in b·f can
                // overflow on adversarial coefficients, in which case the
                // elimination is abandoned and the exact original kept.
                if let Some(abs_a) = a.checked_abs() {
                    let rewritten = (|| -> Option<Vec<Constraint>> {
                        let mut next = Vec::with_capacity(self.constraints.len());
                        for (j, c) in self.constraints.iter().enumerate() {
                            if j == i {
                                continue;
                            }
                            let b = c.expr().coeff(col);
                            if b == 0 {
                                next.push(c.clone());
                                continue;
                            }
                            // |a|·g  with the b·e term removed, then − sign(a)·b·f.
                            let mut scaled = c.expr().clone();
                            scaled.set_coeff(col, 0);
                            scaled.try_scale_assign(abs_a).ok()?;
                            let k = b.checked_mul(-a.signum())?;
                            scaled.try_add_scaled_assign(&f, k).ok()?;
                            next.push(match c.kind() {
                                ConstraintKind::Eq => Constraint::eq(scaled),
                                ConstraintKind::Geq => Constraint::geq(scaled),
                                ConstraintKind::Mod => {
                                    Constraint::congruent(scaled, c.modulus().checked_mul(abs_a)?)
                                }
                            });
                        }
                        Some(next)
                    })();
                    if let Some(mut next) = rewritten {
                        if abs_a >= 2 {
                            next.push(Constraint::congruent(f, abs_a));
                        }
                        self.constraints = next;
                        self.remove_exists_col(e);
                        return true;
                    }
                }
            }

            // Single occurrence in an equality with coefficient |a| >= 2 and
            // nowhere else: ∃e: f + a·e = 0  ⇔  f ≡ 0 (mod |a|).
            if users.len() == 1 {
                let i = users[0];
                let c = &self.constraints[i];
                let a = c.expr().coeff(col);
                match c.kind() {
                    ConstraintKind::Eq => {
                        let mut f = c.expr().clone();
                        f.set_coeff(col, 0);
                        // checked_abs: an i64::MIN coefficient has no i64
                        // magnitude to use as a modulus — keep the equality.
                        let replacement = match a.checked_abs() {
                            Some(m) if m >= 2 => Some(Constraint::congruent(f, m)),
                            _ => None, // |a| == 1 handled above
                        };
                        if let Some(r) = replacement {
                            self.constraints[i] = r;
                            self.remove_exists_col(e);
                            return true;
                        }
                    }
                    ConstraintKind::Mod => {
                        // ∃e: f + a·e ≡ 0 (mod m)  ⇔  f ≡ 0 (mod gcd(a, m))
                        let m = c.modulus();
                        let g = gcd(a, m);
                        let mut f = c.expr().clone();
                        f.set_coeff(col, 0);
                        if g >= 2 {
                            self.constraints[i] = Constraint::congruent(f, g);
                        } else {
                            self.constraints.remove(i);
                        }
                        self.remove_exists_col(e);
                        return true;
                    }
                    ConstraintKind::Geq => {
                        // Bounded on one side only: the constraint is always
                        // satisfiable by choosing e large/small enough.
                        self.constraints.remove(i);
                        self.remove_exists_col(e);
                        return true;
                    }
                }
            }

            // Only inequalities use it: exact FM elimination when one side has
            // unit coefficients, or drop when bounded on a single side.
            if users
                .iter()
                .all(|&i| self.constraints[i].kind() == ConstraintKind::Geq)
            {
                let lowers: Vec<usize> = users
                    .iter()
                    .copied()
                    .filter(|&i| self.constraints[i].expr().coeff(col) > 0)
                    .collect();
                let uppers: Vec<usize> = users
                    .iter()
                    .copied()
                    .filter(|&i| self.constraints[i].expr().coeff(col) < 0)
                    .collect();
                if lowers.is_empty() || uppers.is_empty() {
                    let keep: Vec<Constraint> = self
                        .constraints
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !users.contains(i))
                        .map(|(_, c)| c.clone())
                        .collect();
                    self.constraints = keep;
                    self.remove_exists_col(e);
                    return true;
                }
                let exact = lowers
                    .iter()
                    .all(|&i| self.constraints[i].expr().coeff(col) == 1)
                    || uppers
                        .iter()
                        .all(|&i| self.constraints[i].expr().coeff(col) == -1);
                if exact {
                    let mut new_cs: Vec<Constraint> = self
                        .constraints
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !users.contains(i))
                        .map(|(_, c)| c.clone())
                        .collect();
                    // Checked: a pair combination that overflows abandons the
                    // elimination of this column (the solver still decides it
                    // exactly later — or reports a typed overflow).
                    let mut ok = true;
                    'pairs: for &li in &lowers {
                        for &ui in &uppers {
                            let lo = self.constraints[li].expr();
                            let up = self.constraints[ui].expr();
                            let a = lo.coeff(col);
                            let Some(b) = up.coeff(col).checked_neg() else {
                                ok = false;
                                break 'pairs;
                            };
                            let mut combined = up.clone();
                            if combined.try_scale_assign(a).is_err()
                                || combined.try_add_scaled_assign(lo, b).is_err()
                            {
                                ok = false;
                                break 'pairs;
                            }
                            new_cs.push(Constraint::geq(combined));
                        }
                    }
                    if ok {
                        self.constraints = new_cs;
                        self.remove_exists_col(e);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Removes existential column `e` (0-based among the existentials).  All
    /// constraints must no longer use it.
    fn remove_exists_col(&mut self, e: usize) {
        let col = self.space.n_global() + e;
        for c in &mut self.constraints {
            c.expr_mut().remove_col_assign(col);
        }
        self.n_exists -= 1;
    }

    /// Whether the conjunct has been fully reduced to constraints over the
    /// global columns only (a requirement for exact set difference).
    pub fn is_quantifier_free(&self) -> bool {
        self.n_exists == 0
    }

    /// Internal constructor used by the relation algebra.
    pub(crate) fn from_parts(
        space: Space,
        n_exists: usize,
        constraints: Vec<Constraint>,
    ) -> Conjunct {
        let c = Conjunct {
            space,
            n_exists,
            constraints,
        };
        for cons in &c.constraints {
            assert_eq!(cons.n_vars(), c.n_vars());
        }
        c
    }

    /// Replaces the space (for renaming dims); arities must match.
    pub(crate) fn with_space(mut self, space: Space) -> Conjunct {
        assert_eq!(space.n_in(), self.space.n_in());
        assert_eq!(space.n_out(), self.space.n_out());
        assert_eq!(space.n_param(), self.space.n_param());
        self.space = space;
        self
    }

    /// If, for output dimension `d`, the constraints force
    /// `out_d = Σ aᵢ·in_i + Σ bⱼ·param_j + c`, returns that affine expression
    /// over `[in dims | param dims]` columns plus constant.  Used by the
    /// transitive-closure code to recognise uniform (translation) relations.
    pub fn out_dim_as_affine_of_inputs(&self, d: usize) -> Option<(Vec<i64>, Vec<i64>, i64)> {
        let n_in = self.space.n_in();
        let n_out = self.space.n_out();
        let n_param = self.space.n_param();
        let out_col = self.col(VarKind::Out, d);
        for c in &self.constraints {
            if c.kind() != ConstraintKind::Eq {
                continue;
            }
            let a = c.expr().coeff(out_col);
            if a.unsigned_abs() != 1 {
                continue;
            }
            // Check no other output dim or existential appears.
            let mut ok = true;
            for other in 0..n_out {
                if other != d && c.expr().coeff(self.col(VarKind::Out, other)) != 0 {
                    ok = false;
                    break;
                }
            }
            for e in 0..self.n_exists {
                if c.expr().coeff(self.col(VarKind::Exists, e)) != 0 {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            // a*out + f = 0  =>  out = -f/a = -a*f (a = ±1).  checked_mul:
            // an i64::MIN coefficient cannot be negated, so the dimension is
            // conservatively not recognised as affine.
            let neg = |v: i64| v.checked_mul(-a);
            let mut ins = Vec::with_capacity(n_in);
            for i in 0..n_in {
                ins.push(neg(c.expr().coeff(self.col(VarKind::In, i)))?);
            }
            let mut pars = Vec::with_capacity(n_param);
            for p in 0..n_param {
                pars.push(neg(c.expr().coeff(self.col(VarKind::Param, p)))?);
            }
            let konst = neg(c.expr().constant())?;
            return Some((ins, pars, konst));
        }
        None
    }
}

/// Whether the coefficient vectors of `a` and `b` are identical.
fn same_coeffs(a: &LinExpr, b: &LinExpr) -> bool {
    debug_assert_eq!(a.n_vars(), b.n_vars());
    (0..a.n_vars()).all(|i| a.coeff(i) == b.coeff(i))
}

/// Whether the coefficient vectors of `a` and `b` are exact negations.
fn opposite_coeffs(a: &LinExpr, b: &LinExpr) -> bool {
    debug_assert_eq!(a.n_vars(), b.n_vars());
    (0..a.n_vars()).all(|i| a.coeff(i).checked_neg() == Some(b.coeff(i)))
}

/// Whether constraint `o` (normalised) single-handedly implies constraint
/// `s` (normalised, same width).  Sound but deliberately incomplete: only
/// verbatim matches, looser inequalities over the same primitive coefficient
/// vector, and equalities pinning that vector are recognised.
fn constraint_implies(o: &Constraint, s: &Constraint) -> bool {
    if o == s {
        return true;
    }
    if s.kind() != ConstraintKind::Geq {
        return false;
    }
    // i128 spreads so constants near i64::MIN/MAX cannot wrap.
    let (sc, oc) = (s.expr().constant() as i128, o.expr().constant() as i128);
    match o.kind() {
        // a·x + c₁ ≥ 0  implies  a·x + c₂ ≥ 0  when c₂ ≥ c₁.
        ConstraintKind::Geq => same_coeffs(o.expr(), s.expr()) && sc >= oc,
        // a·x + c₁ = 0 pins a·x, deciding inequalities over ±a.
        ConstraintKind::Eq => {
            (same_coeffs(o.expr(), s.expr()) && sc - oc >= 0)
                || (opposite_coeffs(o.expr(), s.expr()) && sc + oc >= 0)
        }
        ConstraintKind::Mod => false,
    }
}

/// Runs the production feasibility test and, when it degrades with the
/// typed overflow, re-decides the system exactly with the big-integer
/// reference solver (see [`bigint_refine`]).
fn decide_with_fallback(
    constraints: &[Constraint],
    n_vars: usize,
    before_pending: bool,
) -> Feasibility {
    let f = is_feasible(constraints, n_vars);
    if f == Feasibility::Overflow {
        return bigint_refine(constraints, n_vars, before_pending, f);
    }
    f
}

/// Re-decides an overflow-degraded system with the big-integer port of the
/// decision procedure ([`crate::reference`]).  On success the exact verdict
/// is returned and the overflow flag raised by the degraded run is consumed
/// (unless a flag was already pending before the run — that one belongs to
/// an earlier query and is preserved).  When the reference solver declines
/// (work limit), the degraded verdict stands, flag and all.
fn bigint_refine(
    constraints: &[Constraint],
    n_vars: usize,
    before_pending: bool,
    degraded: Feasibility,
) -> Feasibility {
    match crate::reference::reference_is_feasible(constraints, n_vars) {
        Some(exact) => {
            crate::dnf::note_bigint_fallback();
            if !before_pending {
                let _ = crate::arith::take_arith_overflow();
            }
            if exact {
                Feasibility::Feasible
            } else {
                Feasibility::Infeasible
            }
        }
        None => degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_1_1() -> Space {
        Space::relation(&["x"], &["y"], &[])
    }

    #[test]
    fn universe_is_feasible_and_contains_everything() {
        let c = Conjunct::universe(space_1_1());
        assert!(c.is_feasible());
        assert!(c.contains(&[5, -3]));
        assert!(c.is_quantifier_free());
    }

    #[test]
    fn simple_membership() {
        // { [x] -> [y] : y = 2x and 0 <= x < 10 }
        let mut c = Conjunct::universe(space_1_1());
        let mut eq = c.zero_expr();
        eq.set_coeff(c.col(VarKind::Out, 0), 1);
        eq.set_coeff(c.col(VarKind::In, 0), -2);
        c.add(Constraint::eq(eq));
        let mut lo = c.zero_expr();
        lo.set_coeff(c.col(VarKind::In, 0), 1);
        c.add(Constraint::geq(lo));
        let mut hi = c.zero_expr();
        hi.set_coeff(c.col(VarKind::In, 0), -1);
        hi.set_constant(9);
        c.add(Constraint::geq(hi));

        assert!(c.contains(&[3, 6]));
        assert!(!c.contains(&[3, 7]));
        assert!(!c.contains(&[10, 20]));
        assert!(c.is_feasible());
    }

    #[test]
    fn existential_stride_becomes_congruence() {
        // { [x] -> [y] : exists k : x = 2k } — simplification should turn the
        // existential equality into x ≡ 0 (mod 2) and drop the variable.
        let mut c = Conjunct::universe(space_1_1());
        let k = c.add_exists(1);
        let mut eq = c.zero_expr();
        eq.set_coeff(c.col(VarKind::In, 0), 1);
        eq.set_coeff(k, -2);
        c.add(Constraint::eq(eq));
        assert!(c.simplify());
        assert!(c.is_quantifier_free());
        assert_eq!(c.constraints().len(), 1);
        assert_eq!(c.constraints()[0].kind(), ConstraintKind::Mod);
        assert!(c.contains(&[4, 0]));
        assert!(!c.contains(&[5, 0]));
    }

    #[test]
    fn existential_with_unit_coefficient_is_substituted() {
        // exists k : x = k + 1 and y = 2k  =>  y = 2x - 2
        let mut c = Conjunct::universe(space_1_1());
        let k = c.add_exists(1);
        let mut e1 = c.zero_expr();
        e1.set_coeff(c.col(VarKind::In, 0), 1);
        e1.set_coeff(k, -1);
        e1.set_constant(-1);
        c.add(Constraint::eq(e1));
        let mut e2 = c.zero_expr();
        e2.set_coeff(c.col(VarKind::Out, 0), 1);
        e2.set_coeff(k, -2);
        c.add(Constraint::eq(e2));
        assert!(c.simplify());
        assert!(c.is_quantifier_free());
        assert!(c.contains(&[3, 4]));
        assert!(!c.contains(&[3, 5]));
    }

    #[test]
    fn intersect_concatenates_constraints() {
        let mut a = Conjunct::universe(space_1_1());
        let mut lo = a.zero_expr();
        lo.set_coeff(0, 1);
        a.add(Constraint::geq(lo)); // x >= 0
        let mut b = Conjunct::universe(space_1_1());
        let mut hi = b.zero_expr();
        hi.set_coeff(0, -1);
        hi.set_constant(5);
        b.add(Constraint::geq(hi)); // x <= 5
        let both = a.intersect(&b);
        assert!(both.contains(&[3, 0]));
        assert!(!both.contains(&[-1, 0]));
        assert!(!both.contains(&[6, 0]));
    }

    #[test]
    fn reversed_swaps_roles() {
        // y = x + 1  reversed  becomes  (new in = old out) y' = x' - 1 check
        let mut c = Conjunct::universe(space_1_1());
        let mut eq = c.zero_expr();
        eq.set_coeff(c.col(VarKind::Out, 0), 1);
        eq.set_coeff(c.col(VarKind::In, 0), -1);
        eq.set_constant(-1);
        c.add(Constraint::eq(eq)); // y - x - 1 = 0, i.e. y = x + 1
        assert!(c.contains(&[2, 3]));
        let r = c.reversed();
        assert!(r.contains(&[3, 2]));
        assert!(!r.contains(&[2, 3]));
    }

    #[test]
    fn domain_projects_out_outputs() {
        // { [x] -> [y] : y = 2x and 0 <= x <= 3 }, domain = { [x] : 0<=x<=3 }
        let mut c = Conjunct::universe(space_1_1());
        let mut eq = c.zero_expr();
        eq.set_coeff(1, 1);
        eq.set_coeff(0, -2);
        c.add(Constraint::eq(eq));
        let mut lo = c.zero_expr();
        lo.set_coeff(0, 1);
        c.add(Constraint::geq(lo));
        let mut hi = c.zero_expr();
        hi.set_coeff(0, -1);
        hi.set_constant(3);
        c.add(Constraint::geq(hi));
        let d = c.domain();
        assert_eq!(d.space().n_out(), 0);
        assert!(d.contains(&[0]));
        assert!(d.contains(&[3]));
        assert!(!d.contains(&[4]));
    }

    #[test]
    fn promote_opposite_inequalities_to_equality() {
        let mut c = Conjunct::universe(space_1_1());
        let mut e = c.zero_expr();
        e.set_coeff(0, 1);
        e.set_coeff(1, -1);
        c.add(Constraint::geq(e.clone())); // x - y >= 0
        c.add(Constraint::geq(e.scale(-1))); // y - x >= 0
        c.simplify();
        assert_eq!(c.constraints().len(), 1);
        assert_eq!(c.constraints()[0].kind(), ConstraintKind::Eq);
    }

    #[test]
    fn uniform_out_dim_recognition() {
        // y = x + 3
        let mut c = Conjunct::universe(space_1_1());
        let mut eq = c.zero_expr();
        eq.set_coeff(1, 1);
        eq.set_coeff(0, -1);
        eq.set_constant(-3);
        c.add(Constraint::eq(eq));
        let (ins, pars, k) = c.out_dim_as_affine_of_inputs(0).expect("affine");
        assert_eq!(ins, vec![1]);
        assert!(pars.is_empty());
        assert_eq!(k, 3);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut c = Conjunct::universe(space_1_1());
        let mut lo = c.zero_expr();
        lo.set_coeff(0, 1);
        lo.set_constant(-10); // x >= 10
        c.add(Constraint::geq(lo));
        let mut hi = c.zero_expr();
        hi.set_coeff(0, -1);
        hi.set_constant(5); // x <= 5
        c.add(Constraint::geq(hi));
        assert!(!c.is_feasible());
    }

    #[test]
    fn installed_feasibility_cache_is_consulted_and_filled() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Recording {
            map: Mutex<HashMap<u64, bool>>,
            gets: std::sync::atomic::AtomicU64,
            puts: std::sync::atomic::AtomicU64,
        }
        impl FeasibilityCache for Recording {
            fn get(&self, key: u64) -> Option<bool> {
                self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.map.lock().unwrap().get(&key).copied()
            }
            fn put(&self, key: u64, feasible: bool) {
                self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.map.lock().unwrap().insert(key, feasible);
            }
        }

        let mut c = Conjunct::universe(space_1_1());
        let mut lo = c.zero_expr();
        lo.set_coeff(0, 1);
        lo.set_constant(-10); // x >= 10
        c.add(Constraint::geq(lo));
        let mut hi = c.zero_expr();
        hi.set_coeff(0, -1);
        hi.set_constant(5); // x <= 5
        c.add(Constraint::geq(hi));

        let cache = Arc::new(Recording::default());
        let (first, second) =
            with_feasibility_cache(cache.clone(), || (c.is_feasible(), c.is_feasible()));
        assert!(!first && !second);
        let gets = cache.gets.load(std::sync::atomic::Ordering::Relaxed);
        let puts = cache.puts.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            gets, 1,
            "the repeat hit the thread-local level without touching the shared store"
        );
        assert_eq!(puts, 1, "only the miss computed and stored a verdict");
        // The verdict is visible through the shared handle from another
        // thread installing the same cache.
        let c2 = c.clone();
        let cache2 = cache.clone();
        let handle = std::thread::spawn(move || {
            with_feasibility_cache(cache2.clone(), || {
                let before = cache2.puts.load(std::sync::atomic::Ordering::Relaxed);
                let v = c2.is_feasible();
                let after = cache2.puts.load(std::sync::atomic::Ordering::Relaxed);
                (v, before == after)
            })
        });
        let (verdict, no_recompute) = handle.join().unwrap();
        assert!(!verdict);
        assert!(no_recompute, "cross-thread lookup hit the shared store");
        // Outside the scope the default thread-local memo is back.
        assert!(!c.is_feasible());
    }

    /// Builds `{ [x] -> [y] : x = 2·e_a and y = 3·e_b and e_a >= 0 and
    /// e_b >= 1 }` with the two existentials in the given order.
    fn two_exists_conjunct(swapped: bool) -> Conjunct {
        let mut c = Conjunct::universe(space_1_1());
        let first = c.add_exists(2);
        let (ea, eb) = if swapped {
            (first + 1, first)
        } else {
            (first, first + 1)
        };
        let n = c.n_vars();
        let mk = |pairs: &[(usize, i64)], k: i64| {
            let mut le = LinExpr::zero(n);
            for &(col, coef) in pairs {
                le.set_coeff(col, coef);
            }
            le.set_constant(k);
            le
        };
        let x = c.col(VarKind::In, 0);
        let y = c.col(VarKind::Out, 0);
        c.add(Constraint::eq(mk(&[(x, 1), (ea, -2)], 0)));
        c.add(Constraint::eq(mk(&[(y, 1), (eb, -3)], 0)));
        c.add(Constraint::geq(mk(&[(ea, 1)], 0)));
        c.add(Constraint::geq(mk(&[(eb, 1)], -1)));
        c
    }

    #[test]
    fn structural_hash_is_invariant_under_existential_renaming() {
        let a = two_exists_conjunct(false);
        let b = two_exists_conjunct(true);
        // Same set, existential columns introduced in opposite order.
        assert_ne!(a.constraints(), b.constraints(), "presentations differ");
        assert_eq!(a.canonical_constraints(), b.canonical_constraints());
        assert_eq!(a.structural_hash(), b.structural_hash());
        // The canonical form still separates genuinely different systems.
        let mut c = two_exists_conjunct(false);
        let n = c.n_vars();
        let mut extra = LinExpr::zero(n);
        extra.set_coeff(c.col(VarKind::In, 0), 1);
        extra.set_constant(100);
        c.add(Constraint::geq(extra));
        assert_ne!(a.structural_hash(), c.structural_hash());
    }

    #[test]
    fn feasibility_memo_agrees_across_existential_renamings() {
        // The memo keys on the rename-canonical hash; both presentations
        // must land on the same (correct) verdict.
        let a = two_exists_conjunct(false);
        let b = two_exists_conjunct(true);
        assert!(a.is_feasible());
        assert!(b.is_feasible());
        assert!(a.contains(&[2, 3]));
        assert!(b.contains(&[2, 3]));
        assert!(!a.contains(&[1, 3]));
        assert!(!b.contains(&[1, 3]));
    }

    #[test]
    fn fm_elimination_of_inequality_only_existential() {
        // exists e : x <= e <= x + 1 and 0 <= e <= 10   projects to
        // x <= 10 and x + 1 >= 0.
        let mut c = Conjunct::universe(space_1_1());
        let e = c.add_exists(1);
        let x = c.col(VarKind::In, 0);
        let mk = |pairs: &[(usize, i64)], k: i64, n: usize| {
            let mut le = LinExpr::zero(n);
            for &(col, coef) in pairs {
                le.set_coeff(col, coef);
            }
            le.set_constant(k);
            le
        };
        let n = c.n_vars();
        c.add(Constraint::geq(mk(&[(e, 1), (x, -1)], 0, n))); // e >= x
        c.add(Constraint::geq(mk(&[(e, -1), (x, 1)], 1, n))); // e <= x+1
        c.add(Constraint::geq(mk(&[(e, 1)], 0, n))); // e >= 0
        c.add(Constraint::geq(mk(&[(e, -1)], 10, n))); // e <= 10
        c.simplify();
        assert!(c.is_quantifier_free());
        assert!(c.contains(&[10, 0]));
        assert!(c.contains(&[-1, 0]));
        assert!(!c.contains(&[11, 0]));
        assert!(!c.contains(&[-2, 0]));
    }
}
