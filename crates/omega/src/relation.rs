//! Relations between integer tuples: finite unions of affine conjuncts.

use crate::conjunct::Conjunct;
use crate::constraint::Constraint;
use crate::hash::combine_unordered;
use crate::linexpr::LinExpr;
use crate::set::Set;
use crate::space::{Space, VarKind};
use crate::{OmegaError, Result};
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// A relation between integer tuples, represented as a finite union of
/// [`Conjunct`]s over one [`Space`].
///
/// This is the "dependency mapping" type of the paper: e.g. the mapping from
/// the elements of `buf[]` defined by statement `s2` of Fig. 1(a) to the
/// elements of the second occurrence of `A[]` it reads is
///
/// ```text
/// { [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }
/// ```
///
/// The algebra needed by the equivalence checker is provided as methods:
/// [`compose`](Relation::compose) (the paper's natural join `⋈` used for
/// intermediate-variable reduction), [`inverse`](Relation::inverse),
/// [`union`](Relation::union), [`intersect`](Relation::intersect),
/// [`domain`](Relation::domain) / [`range`](Relation::range),
/// [`subtract`](Relation::subtract), [`is_subset`](Relation::is_subset),
/// [`is_equal`](Relation::is_equal), [`is_empty`](Relation::is_empty),
/// [`is_function`](Relation::is_function) and
/// [`transitive_closure`](Relation::transitive_closure).
#[derive(Debug, Clone)]
pub struct Relation {
    space: Space,
    conjuncts: Vec<Conjunct>,
    /// Lazily-computed [`structural_hash`](Relation::structural_hash).
    ///
    /// Relations are immutable after construction except for
    /// [`add_conjunct`](Relation::add_conjunct), which resets this cell, so
    /// the hash is computed at most once per relation.  Cloning carries an
    /// already-computed hash along.
    hash_cache: OnceLock<u64>,
}

// `hash_cache` is a derived quantity: equality, ordering and hashing must see
// only the semantic fields, otherwise two equal relations could compare
// unequal depending on which of them has had its hash demanded already.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space && self.conjuncts == other.conjuncts
    }
}

impl Eq for Relation {}

impl Hash for Relation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.space.hash(state);
        self.conjuncts.hash(state);
    }
}

impl Relation {
    /// Internal constructor shared by every operation.
    pub(crate) fn raw(space: Space, conjuncts: Vec<Conjunct>) -> Self {
        Relation {
            space,
            conjuncts,
            hash_cache: OnceLock::new(),
        }
    }

    /// The empty relation over `space`.
    pub fn empty(space: Space) -> Self {
        Relation::raw(space, Vec::new())
    }

    /// The universe relation (all pairs) over `space`.
    pub fn universe(space: Space) -> Self {
        let c = Conjunct::universe(space.clone());
        Relation::raw(space, vec![c])
    }

    /// The identity relation `{ [x] -> [x] }` over `space`.
    ///
    /// # Panics
    ///
    /// Panics if the space does not have equally many input and output dims.
    pub fn identity(space: Space) -> Self {
        assert_eq!(
            space.n_in(),
            space.n_out(),
            "identity requires square space"
        );
        let mut c = Conjunct::universe(space.clone());
        for d in 0..space.n_in() {
            let mut e = c.zero_expr();
            e.set_coeff(c.col(VarKind::In, d), 1);
            e.set_coeff(c.col(VarKind::Out, d), -1);
            c.add(Constraint::eq(e));
        }
        Relation::raw(space, vec![c])
    }

    /// The identity relation restricted to a set: `{ [x] -> [x] : x ∈ s }`.
    pub fn identity_on(s: &Set) -> Self {
        let set_space = s.space();
        let rel_space =
            Space::relation(set_space.in_vars(), set_space.in_vars(), set_space.params());
        let id = Relation::identity(rel_space);
        id.restrict_domain(s).expect("compatible by construction")
    }

    /// Builds a relation from explicit conjuncts.
    ///
    /// # Panics
    ///
    /// Panics if any conjunct's space is incompatible with `space`.
    pub fn from_conjuncts(space: Space, conjuncts: Vec<Conjunct>) -> Self {
        for c in &conjuncts {
            assert!(
                space.is_compatible(c.space()),
                "conjunct space incompatible with relation space"
            );
        }
        // Structurally identical disjuncts are collapsed at construction
        // time — piecewise merges hand the same disjunct in repeatedly, and
        // every copy would otherwise be re-solved downstream.
        Relation::raw(space, crate::dnf::dedup(conjuncts))
    }

    /// Parses the textual notation, e.g.
    /// `"[N] -> { [i] -> [2i] : 0 <= i < N }"`.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Relation> {
        crate::parse::parse_relation(text)
    }

    /// The space of this relation.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The conjuncts (disjuncts of the union) of this relation.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Adds one conjunct to the union.
    pub fn add_conjunct(&mut self, c: Conjunct) {
        assert!(self.space.is_compatible(c.space()));
        self.conjuncts.push(c);
        self.hash_cache = OnceLock::new();
    }

    /// Simplifies every conjunct, drops the ones that are syntactically or
    /// semantically empty and coalesces the survivors (structural dedup plus
    /// conjunct subsumption — see [`Conjunct::subsumes`]).  `deep`
    /// additionally runs the exact emptiness test per conjunct (more
    /// expensive, smaller result).  The coalescing here is unconditional —
    /// part of the simplified form, independent of the eager-simplification
    /// toggle — so a relation's simplified rendering never depends on the
    /// measurement mode.
    pub fn simplified(&self, deep: bool) -> Relation {
        let mut out = Vec::with_capacity(self.conjuncts.len());
        for c in &self.conjuncts {
            let mut c = c.clone();
            if !c.simplify() {
                continue;
            }
            if deep && !c.is_feasible() {
                continue;
            }
            out.push(c);
        }
        Relation::raw(self.space.clone(), crate::dnf::coalesce(out))
    }

    /// Minimal-rendering form for diagnostics: [`Relation::simplified`]
    /// (deep) with every surviving conjunct additionally stripped of
    /// constraints implied by its own remaining constraints
    /// ([`Conjunct::drop_redundant`] — the self-gist).  Set-preserving, so
    /// witness sampling against the result is exactly as sound as against
    /// the original; noticeably more expensive than `simplified`, so it is
    /// reserved for failing domains that reach a report.
    pub fn minimized(&self) -> Relation {
        let mut conjuncts = self.simplified(true).conjuncts;
        for c in &mut conjuncts {
            c.drop_redundant();
        }
        Relation::raw(self.space.clone(), crate::dnf::coalesce(conjuncts))
    }

    /// Whether the relation contains the pair (`input`, `output`) for the
    /// given parameter values.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the space arities.
    pub fn contains(&self, input: &[i64], output: &[i64], params: &[i64]) -> bool {
        assert_eq!(input.len(), self.space.n_in());
        assert_eq!(output.len(), self.space.n_out());
        assert_eq!(params.len(), self.space.n_param());
        let mut point = Vec::with_capacity(self.space.n_global());
        point.extend_from_slice(input);
        point.extend_from_slice(output);
        point.extend_from_slice(params);
        self.conjuncts.iter().any(|c| c.contains(&point))
    }

    /// Whether the relation is empty (no integer points for any parameter
    /// values).
    pub fn is_empty(&self) -> bool {
        self.conjuncts.iter().all(|c| {
            let mut c = c.clone();
            if !c.simplify() {
                return true;
            }
            !c.is_feasible()
        })
    }

    /// Union of two relations over compatible spaces.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if the spaces are incompatible.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.space.check_compatible(&other.space, "union")?;
        let mut conjuncts = self.conjuncts.clone();
        conjuncts.extend(
            other
                .conjuncts
                .iter()
                .cloned()
                .map(|c| c.with_space(self.space.clone())),
        );
        if crate::dnf::eager_simplification() {
            conjuncts = crate::dnf::coalesce(conjuncts);
        }
        Ok(Relation::raw(self.space.clone(), conjuncts))
    }

    /// Intersection of two relations over compatible spaces.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if the spaces are incompatible.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        self.space.check_compatible(&other.space, "intersect")?;
        let mut conjuncts = Vec::with_capacity(self.conjuncts.len() * other.conjuncts.len());
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                let mut c = a.intersect(&b.clone().with_space(self.space.clone()));
                if c.simplify() {
                    conjuncts.push(c);
                }
            }
        }
        if crate::dnf::eager_simplification() {
            conjuncts = crate::dnf::coalesce(conjuncts);
        }
        Ok(Relation::raw(self.space.clone(), conjuncts))
    }

    /// The inverse relation (input and output tuples swapped).
    pub fn inverse(&self) -> Relation {
        Relation::raw(
            self.space.reversed(),
            self.conjuncts.iter().map(Conjunct::reversed).collect(),
        )
    }

    /// The domain of the relation, as a [`Set`] over the input dims.
    pub fn domain(&self) -> Set {
        let conjuncts = self.conjuncts.iter().map(Conjunct::domain).collect();
        Set::from_relation(Relation::raw(self.space.domain_space(), conjuncts))
    }

    /// The range of the relation, as a [`Set`] over the output dims.
    pub fn range(&self) -> Set {
        let conjuncts = self.conjuncts.iter().map(Conjunct::range).collect();
        Set::from_relation(Relation::raw(self.space.range_space(), conjuncts))
    }

    /// Composition (the paper's natural join `⋈`): `self : X → Y` composed
    /// with `other : Y → Z` yields `{ x → z : ∃y. (x,y) ∈ self ∧ (y,z) ∈ other }`.
    ///
    /// This is the *intermediate variable reduction* primitive of Section 3.2:
    /// reducing `tmp` on the path `C → tmp → B` composes `M_{C,tmp}` with
    /// `M_{tmp,B}`.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if `self`'s output arity differs
    /// from `other`'s input arity or the parameter lists differ.
    pub fn compose(&self, other: &Relation) -> Result<Relation> {
        if self.space.n_out() != other.space.n_in() || self.space.params() != other.space.params() {
            return Err(OmegaError::SpaceMismatch {
                op: "compose",
                lhs: self.space.describe(),
                rhs: other.space.describe(),
            });
        }
        let n_in = self.space.n_in();
        let n_mid = self.space.n_out();
        let n_out = other.space.n_out();
        let n_param = self.space.n_param();
        let result_space = Space::relation(
            self.space.in_vars(),
            other.space.out_vars(),
            self.space.params(),
        );
        let mut conjuncts = Vec::with_capacity(self.conjuncts.len() * other.conjuncts.len());
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                let n_ex_a = a.n_exists();
                let n_ex_b = b.n_exists();
                let n_exists = n_mid + n_ex_a + n_ex_b;
                let n_total = n_in + n_out + n_param + n_exists;
                let mid_base = n_in + n_out + n_param;

                // Remap a's columns: [in | mid | param | ex_a]
                let mut map_a = Vec::with_capacity(a.n_vars());
                for i in 0..n_in {
                    map_a.push(i);
                }
                for j in 0..n_mid {
                    map_a.push(mid_base + j);
                }
                for p in 0..n_param {
                    map_a.push(n_in + n_out + p);
                }
                for e in 0..n_ex_a {
                    map_a.push(mid_base + n_mid + e);
                }

                // Remap b's columns: [mid | out | param | ex_b]
                let mut map_b = Vec::with_capacity(b.n_vars());
                for j in 0..n_mid {
                    map_b.push(mid_base + j);
                }
                for o in 0..n_out {
                    map_b.push(n_in + o);
                }
                for p in 0..n_param {
                    map_b.push(n_in + n_out + p);
                }
                for e in 0..n_ex_b {
                    map_b.push(mid_base + n_mid + n_ex_a + e);
                }

                let mut constraints =
                    Vec::with_capacity(a.constraints().len() + b.constraints().len());
                for c in a.constraints() {
                    constraints.push(c.remapped(&map_a, n_total));
                }
                for c in b.constraints() {
                    constraints.push(c.remapped(&map_b, n_total));
                }
                let mut conj = Conjunct::from_parts(result_space.clone(), n_exists, constraints);
                if conj.simplify() {
                    conjuncts.push(conj);
                }
            }
        }
        if crate::dnf::eager_simplification() {
            conjuncts = crate::dnf::coalesce(conjuncts);
        }
        Ok(Relation::raw(result_space, conjuncts))
    }

    /// Restricts the domain of the relation to a set.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if the set's space does not match
    /// the relation's input space.
    pub fn restrict_domain(&self, s: &Set) -> Result<Relation> {
        self.space
            .domain_space()
            .check_compatible(s.space(), "restrict_domain")?;
        let embedded = s.embed_as_domain_constraint(&self.space);
        self.intersect(&embedded)
    }

    /// Restricts the range of the relation to a set.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if the set's space does not match
    /// the relation's output space.
    pub fn restrict_range(&self, s: &Set) -> Result<Relation> {
        self.space
            .range_space()
            .check_compatible(s.space(), "restrict_range")?;
        let embedded = s.embed_as_range_constraint(&self.space);
        self.intersect(&embedded)
    }

    /// The image of a set under the relation: `{ y : ∃x ∈ s. (x, y) ∈ self }`.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::SpaceMismatch`] if `s` is not over the relation's
    /// input space.
    pub fn apply(&self, s: &Set) -> Result<Set> {
        Ok(self.restrict_domain(s)?.range())
    }

    /// Set difference `self \ other`.
    ///
    /// # Errors
    ///
    /// * [`OmegaError::SpaceMismatch`] if the spaces are incompatible.
    /// * [`OmegaError::InexactElimination`] if `other` contains existential
    ///   variables that cannot be eliminated exactly (outside the supported
    ///   fragment), in which case an exact difference cannot be formed.
    pub fn subtract(&self, other: &Relation) -> Result<Relation> {
        self.space.check_compatible(&other.space, "subtract")?;
        // Normalise the subtrahend to quantifier-free conjuncts so that their
        // negation stays within the constraint language.
        let mut subtrahend = Vec::new();
        for c in &other.conjuncts {
            let mut c = c.clone();
            if !c.simplify() {
                continue; // empty disjunct removes nothing
            }
            if !c.is_feasible() {
                continue;
            }
            if !c.is_quantifier_free() {
                return Err(OmegaError::InexactElimination { op: "subtract" });
            }
            subtrahend.push(c.with_space(self.space.clone()));
        }
        let mut current = self.simplified(false).conjuncts;
        let eager = crate::dnf::eager_simplification();
        for b in &subtrahend {
            let mut next = Vec::new();
            for a in &current {
                // a \ b  =  ⋃_{constraint c of b}  a ∧ ¬c
                for c in b.constraints() {
                    for neg in c.negated() {
                        let mut piece = a.clone();
                        let neg = neg.extended(piece.n_vars() - neg.n_vars());
                        piece.add(neg);
                        if piece.simplify() && piece.is_feasible() {
                            next.push(piece);
                        }
                    }
                }
            }
            // Every subtrahend round multiplies the disjunct count by the
            // negation fan-out; coalescing between rounds is what keeps the
            // sample-and-subtract enumeration loop polynomial in practice.
            current = if eager {
                crate::dnf::coalesce(next)
            } else {
                next
            };
            if current.is_empty() {
                break;
            }
        }
        Ok(Relation::raw(
            self.space.clone(),
            crate::dnf::coalesce(current),
        ))
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::subtract`].
    pub fn is_subset(&self, other: &Relation) -> Result<bool> {
        Ok(self.subtract(other)?.is_empty())
    }

    /// Whether the two relations contain exactly the same pairs (for all
    /// parameter values).  This is the identity check on *output-input
    /// mappings* at the heart of the paper's sufficient condition.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::subtract`].
    pub fn is_equal(&self, other: &Relation) -> Result<bool> {
        Ok(self.is_subset(other)? && other.is_subset(self)?)
    }

    /// Whether the relation is a (partial) function: every input tuple maps to
    /// at most one output tuple.
    ///
    /// # Errors
    ///
    /// Propagates the errors of the underlying subset check.
    pub fn is_function(&self) -> Result<bool> {
        // (x, y1) ∈ R ∧ (x, y2) ∈ R  ⇒  y1 = y2
        // is equivalent to  R⁻¹ ∘ R ⊆ Id  over the output space.
        let pairs = self.inverse().compose(self)?;
        let id_space = Space::relation(
            self.space.out_vars(),
            self.space.out_vars(),
            self.space.params(),
        );
        pairs.is_subset(&Relation::identity(id_space))
    }

    /// Positive transitive closure `R⁺` for *uniform* (translation) relations,
    /// i.e. relations whose single conjunct forces `out = in + d` for a
    /// constant vector `d`.  Returns the closure and whether it is exact.
    ///
    /// The closure is
    /// `{ x → y : ∃k ≥ 1 . y = x + k·d ∧ x ∈ dom R ∧ y ∈ ran R }`,
    /// which is exact when consecutive intermediate points cannot escape the
    /// domain (guaranteed for `|dᵢ| ≤ 1`, the common case for the recurrences
    /// of signal-processing kernels); otherwise it is an over-approximation,
    /// which is the safe direction for the def-use checks that consume it.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::UnsupportedClosure`] when the relation is not a
    /// single uniform conjunct.
    pub fn transitive_closure(&self) -> Result<(Relation, bool)> {
        if self.space.n_in() != self.space.n_out() {
            return Err(OmegaError::UnsupportedClosure {
                relation: format!("{self}"),
            });
        }
        let simplified = self.simplified(true);
        if simplified.conjuncts.len() != 1 {
            return Err(OmegaError::UnsupportedClosure {
                relation: format!("{self}"),
            });
        }
        let c = &simplified.conjuncts[0];
        let d = self.space.n_in();
        let mut offsets = Vec::with_capacity(d);
        for i in 0..d {
            match c.out_dim_as_affine_of_inputs(i) {
                Some((ins, pars, k))
                    if pars.iter().all(|&p| p == 0)
                        && ins.iter().enumerate().all(
                            |(j, &a)| {
                                if j == i {
                                    a == 1
                                } else {
                                    a == 0
                                }
                            },
                        ) =>
                {
                    offsets.push(k);
                }
                _ => {
                    return Err(OmegaError::UnsupportedClosure {
                        relation: format!("{self}"),
                    })
                }
            }
        }

        let dom = simplified.domain();
        let ran = simplified.range();
        let mut closure = Conjunct::universe(self.space.clone());
        let k_col = closure.add_exists(1);
        // out_i = in_i + k * d_i  for every dim, and k >= 1.
        for (i, &di) in offsets.iter().enumerate() {
            let mut e = closure.zero_expr();
            e.set_coeff(closure.col(VarKind::Out, i), 1);
            e.set_coeff(closure.col(VarKind::In, i), -1);
            e.set_coeff(k_col, -di);
            closure.add(Constraint::eq(e));
        }
        let mut kge1 = closure.zero_expr();
        kge1.set_coeff(k_col, 1);
        kge1.set_constant(-1);
        closure.add(Constraint::geq(kge1));

        let base = Relation::raw(self.space.clone(), vec![closure]);
        let restricted = base.restrict_domain(&dom)?.restrict_range(&ran)?;
        let exact = offsets.iter().all(|&k| k.unsigned_abs() <= 1);
        Ok((restricted.simplified(true), exact))
    }

    /// Reflexive-transitive closure `R*` restricted to the given universe set
    /// (identity on `universe` united with `R⁺`).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Relation::transitive_closure`].
    pub fn reflexive_transitive_closure(&self, universe: &Set) -> Result<(Relation, bool)> {
        let (plus, exact) = self.transitive_closure()?;
        let id = Relation::identity_on(universe);
        Ok((plus.union(&id)?, exact))
    }

    /// A stable 64-bit hash of the relation's canonical structural form —
    /// the tabling key of the checker.
    ///
    /// The hash combines the [`Conjunct::structural_hash`] of every conjunct
    /// order-insensitively (sorted, deduplicated), so it is invariant under
    /// conjunct permutation and duplication as well as everything the
    /// conjunct-level canonical form absorbs (constraint permutation,
    /// duplication, gcd scaling, equality sign).  Two relations with the
    /// same hash are equal up to those presentation choices — and up to
    /// 64-bit collisions, which the checker's debug builds cross-check.
    ///
    /// The value is computed once and cached (`O(1)` on every later call);
    /// clones carry an already-computed hash with them.  Unlike the old
    /// string-keyed `canonical_key`, no feasibility pass and no textual
    /// rendering is involved.
    pub fn structural_hash(&self) -> u64 {
        *self.hash_cache.get_or_init(|| {
            let conjunct_hashes: Vec<u64> = self
                .conjuncts
                .iter()
                .map(Conjunct::structural_hash)
                .collect();
            let salt = crate::hash::structural_hash_of(&(
                self.space.n_in(),
                self.space.n_out(),
                self.space.n_param(),
            ));
            combine_unordered(conjunct_hashes, salt)
        })
    }

    /// Returns a concrete member of the relation — one `(input, output,
    /// params)` triple — or `None` when the relation is empty (or the
    /// solver's work limit was hit on every conjunct).
    ///
    /// This is the *model extraction* counterpart of
    /// [`is_empty`](Relation::is_empty): instead of a yes/no answer, the
    /// Omega test is asked for a satisfying integer point.  Conjuncts are
    /// tried in order; each is simplified first so syntactically empty
    /// disjuncts are skipped cheaply.  A returned point always satisfies
    /// [`contains`](Relation::contains); existential variables (strides,
    /// composition intermediates) are witnessed internally and do not appear
    /// in the point.
    pub fn sample_point(&self) -> Option<SamplePoint> {
        for c in &self.conjuncts {
            let mut c = c.clone();
            if !c.simplify() {
                continue;
            }
            if let Some(point) = c.sample_point() {
                let n_in = self.space.n_in();
                let n_out = self.space.n_out();
                let sample = SamplePoint {
                    input: point[..n_in].to_vec(),
                    output: point[n_in..n_in + n_out].to_vec(),
                    params: point[n_in + n_out..].to_vec(),
                };
                debug_assert!(self.contains(&sample.input, &sample.output, &sample.params));
                return Some(sample);
            }
        }
        None
    }

    /// A canonical textual rendering of the structural form — a debugging
    /// aid (collision cross-checks, log output), **not** the tabling key;
    /// the checker keys its table on [`structural_hash`](Relation::structural_hash).
    ///
    /// Two relations with the same canonical key are equal (the converse
    /// does not hold).
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self
            .conjuncts
            .iter()
            .map(|c| format!("E{}:{:?}", c.n_exists(), c.canonical_constraints()))
            .collect();
        parts.sort();
        parts.dedup();
        parts.join(" | ")
    }
}

/// A concrete member of a relation, as returned by
/// [`Relation::sample_point`]: one input tuple, one output tuple and one
/// assignment of the symbolic parameters under which the pair is related.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePoint {
    /// Values of the input-tuple dimensions.
    pub input: Vec<i64>,
    /// Values of the output-tuple dimensions.
    pub output: Vec<i64>,
    /// Values chosen for the symbolic parameters.
    pub params: Vec<i64>,
}

/// Builder-style helpers used heavily by the ADDG extractor: construct the
/// relation `{ [w₁..w_n] -> [r₁..r_m] : w = W(iters), r = R(iters), iters ∈ D }`
/// from affine index maps over a common iteration vector.
#[derive(Debug, Clone)]
pub struct MapBuilder {
    /// Names of the iteration variables (become existentials).
    pub iter_names: Vec<String>,
    /// Names of the symbolic parameters.
    pub param_names: Vec<String>,
    /// Constraints over `[iters | params]` columns + constant describing the
    /// iteration domain.
    pub domain: Vec<(Vec<i64>, Vec<i64>, i64, DomKind)>,
    /// Write index expressions: coefficients over iters, over params, const.
    pub write: Vec<(Vec<i64>, Vec<i64>, i64)>,
    /// Read index expressions: coefficients over iters, over params, const.
    pub read: Vec<(Vec<i64>, Vec<i64>, i64)>,
}

/// Kind of a domain constraint row in [`MapBuilder::domain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomKind {
    /// expression `= 0`
    Eq,
    /// expression `≥ 0`
    Geq,
    /// expression `≡ 0 (mod m)`; the modulus rides in the constant slot of a
    /// separate field, see [`MapBuilder::add_domain_mod`].
    Mod(i64),
}

impl MapBuilder {
    /// Creates a builder with the given iteration-variable and parameter
    /// names and no constraints.
    pub fn new(iter_names: &[String], param_names: &[String]) -> Self {
        MapBuilder {
            iter_names: iter_names.to_vec(),
            param_names: param_names.to_vec(),
            domain: Vec::new(),
            write: Vec::new(),
            read: Vec::new(),
        }
    }

    /// Adds a domain constraint `Σ aᵢ·iterᵢ + Σ bⱼ·paramⱼ + c (op) 0`.
    pub fn add_domain(&mut self, iters: Vec<i64>, params: Vec<i64>, c: i64, kind: DomKind) {
        self.domain.push((iters, params, c, kind));
    }

    /// Adds a congruence domain constraint (e.g. a loop stride).
    pub fn add_domain_mod(&mut self, iters: Vec<i64>, params: Vec<i64>, c: i64, modulus: i64) {
        self.domain.push((iters, params, c, DomKind::Mod(modulus)));
    }

    /// Adds one dimension of the write (defined-array) index expression.
    pub fn add_write_dim(&mut self, iters: Vec<i64>, params: Vec<i64>, c: i64) {
        self.write.push((iters, params, c));
    }

    /// Adds one dimension of the read (operand-array) index expression.
    pub fn add_read_dim(&mut self, iters: Vec<i64>, params: Vec<i64>, c: i64) {
        self.read.push((iters, params, c));
    }

    /// Builds the dependency mapping
    /// `{ [w] -> [r] : w = W(i), r = R(i), i ∈ D }` where the iteration vector
    /// `i` is existentially quantified.
    pub fn build(&self) -> Relation {
        let n_it = self.iter_names.len();
        let n_w = self.write.len();
        let n_r = self.read.len();
        let w_names: Vec<String> = (0..n_w).map(|i| format!("w{i}")).collect();
        let r_names: Vec<String> = (0..n_r).map(|i| format!("r{i}")).collect();
        let space = Space::relation(&w_names, &r_names, &self.param_names);
        let mut c = Conjunct::universe(space.clone());
        let it_base = c.add_exists(n_it);
        let n_vars = c.n_vars();

        let make = |iters: &[i64], params: &[i64], konst: i64, extra: Option<(usize, i64)>| {
            let mut e = LinExpr::zero(n_vars);
            for (j, &a) in iters.iter().enumerate() {
                e.set_coeff(it_base + j, a);
            }
            for (p, &b) in params.iter().enumerate() {
                e.set_coeff(space.col(VarKind::Param, p, n_it), b);
            }
            e.set_constant(konst);
            if let Some((col, coef)) = extra {
                e.set_coeff(col, coef);
            }
            e
        };

        for (d, (iters, params, konst)) in self.write.iter().enumerate() {
            // w_d = expr(iters)  =>  expr - w_d = 0
            let col = space.col(VarKind::In, d, n_it);
            c.add(Constraint::eq(make(iters, params, *konst, Some((col, -1)))));
        }
        for (d, (iters, params, konst)) in self.read.iter().enumerate() {
            let col = space.col(VarKind::Out, d, n_it);
            c.add(Constraint::eq(make(iters, params, *konst, Some((col, -1)))));
        }
        for (iters, params, konst, kind) in &self.domain {
            let e = make(iters, params, *konst, None);
            match kind {
                DomKind::Eq => c.add(Constraint::eq(e)),
                DomKind::Geq => c.add(Constraint::geq(e)),
                DomKind::Mod(m) => c.add(Constraint::congruent(e, *m)),
            }
        }
        c.simplify();
        Relation::from_conjuncts(space, vec![c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(s: &str) -> Relation {
        Relation::parse(s).expect("parse")
    }

    #[test]
    fn identity_and_membership() {
        let id = Relation::identity(Space::relation(&["i"], &["j"], &[]));
        assert!(id.contains(&[4], &[4], &[]));
        assert!(!id.contains(&[4], &[5], &[]));
    }

    #[test]
    fn compose_matches_paper_example() {
        // M_{C,tmp} = {[k] -> [k] : 0 <= k < 1024}
        // M_{tmp,B} = {[k] -> [2k] : 0 <= k < 1024}
        // Their join must be {[k] -> [2k] : 0 <= k < 1024}.
        let m_c_tmp = rel("{ [k] -> [k] : 0 <= k < 1024 }");
        let m_tmp_b = rel("{ [k] -> [2k] : 0 <= k < 1024 }");
        let joined = m_c_tmp.compose(&m_tmp_b).unwrap();
        assert!(joined
            .is_equal(&rel("{ [k] -> [2k] : 0 <= k < 1024 }"))
            .unwrap());
        assert!(joined.contains(&[3], &[6], &[]));
        assert!(!joined.contains(&[3], &[5], &[]));
    }

    #[test]
    fn compose_through_reindexing() {
        // {[i] -> [i+1]} ∘ {[j] -> [2j]} = {[i] -> [2i+2]}
        let a = rel("{ [i] -> [i+1] : 0 <= i < 100 }");
        let b = rel("{ [j] -> [2j] : 0 <= j < 200 }");
        let c = a.compose(&b).unwrap();
        assert!(c.contains(&[3], &[8], &[]));
        assert!(!c.contains(&[3], &[7], &[]));
        assert!(c
            .is_equal(&rel("{ [i] -> [2i+2] : 0 <= i < 100 }"))
            .unwrap());
    }

    #[test]
    fn inverse_and_domain_range() {
        let r = rel("{ [i] -> [2i] : 0 <= i < 4 }");
        let inv = r.inverse();
        assert!(inv.contains(&[6], &[3], &[]));
        let dom = r.domain();
        assert!(dom.contains(&[3], &[]));
        assert!(!dom.contains(&[4], &[]));
        let ran = r.range();
        assert!(ran.contains(&[6], &[]));
        assert!(!ran.contains(&[5], &[]));
        assert!(!ran.contains(&[8], &[]));
    }

    #[test]
    fn union_intersect_subtract() {
        let a = rel("{ [i] -> [i] : 0 <= i < 10 }");
        let b = rel("{ [i] -> [i] : 5 <= i < 15 }");
        let u = a.union(&b).unwrap();
        assert!(u.contains(&[12], &[12], &[]));
        let n = a.intersect(&b).unwrap();
        assert!(n.contains(&[7], &[7], &[]));
        assert!(!n.contains(&[2], &[2], &[]));
        let d = a.subtract(&b).unwrap();
        assert!(d.contains(&[2], &[2], &[]));
        assert!(!d.contains(&[7], &[7], &[]));
        assert!(!d.is_empty());
        assert!(a.subtract(&a).unwrap().is_empty());
    }

    #[test]
    fn equality_of_differently_written_relations() {
        let a = rel("{ [i] -> [i+i] : 0 <= i <= 9 }");
        let b = rel("{ [i] -> [2i] : 0 <= i < 10 }");
        assert!(a.is_equal(&b).unwrap());
        let c = rel("{ [i] -> [2i] : 0 <= i < 11 }");
        assert!(!a.is_equal(&c).unwrap());
        assert!(a.is_subset(&c).unwrap());
        assert!(!c.is_subset(&a).unwrap());
    }

    #[test]
    fn strided_relations_compare_exactly() {
        // even k mapped to k vs identity on all k: different.
        let even = rel("{ [k] -> [k] : exists j : k = 2j and 0 <= k < 100 }");
        let all = rel("{ [k] -> [k] : 0 <= k < 100 }");
        assert!(even.is_subset(&all).unwrap());
        assert!(!all.is_subset(&even).unwrap());
        // Same strided set expressed with a congruence.
        let even2 = rel("{ [k] -> [k] : k % 2 = 0 and 0 <= k < 100 }");
        assert!(even.is_equal(&even2).unwrap());
    }

    #[test]
    fn parameterised_relations() {
        let a = rel("[N] -> { [i] -> [2i] : 0 <= i < N }");
        let b = rel("[N] -> { [i] -> [i+i] : 0 <= i < N }");
        assert!(a.is_equal(&b).unwrap());
        let c = rel("[N] -> { [i] -> [2i] : 0 <= i <= N }");
        assert!(!a.is_equal(&c).unwrap());
        assert!(a.contains(&[3], &[6], &[10]));
        assert!(!a.contains(&[3], &[6], &[2]));
    }

    #[test]
    fn is_function_detects_functional_relations() {
        assert!(rel("{ [i] -> [2i] : 0 <= i < 10 }").is_function().unwrap());
        assert!(!rel("{ [i] -> [j] : 0 <= i < 10 and 0 <= j < 2 }")
            .is_function()
            .unwrap());
    }

    #[test]
    fn empty_relation_behaviour() {
        let e = rel("{ [i] -> [i] : i > 5 and i < 3 }");
        assert!(e.is_empty());
        let u = rel("{ [i] -> [i] : 0 <= i < 3 }");
        assert!(e.is_subset(&u).unwrap());
        assert!(!u.is_subset(&e).unwrap());
        assert!(Relation::empty(Space::relation(&["i"], &["j"], &[])).is_empty());
    }

    #[test]
    fn transitive_closure_of_shift() {
        let r = rel("{ [i] -> [i+1] : 0 <= i < 10 }");
        let (plus, exact) = r.transitive_closure().unwrap();
        assert!(exact);
        assert!(plus.contains(&[0], &[1], &[]));
        assert!(plus.contains(&[0], &[10], &[]));
        assert!(plus.contains(&[3], &[7], &[]));
        assert!(!plus.contains(&[3], &[3], &[]));
        assert!(!plus.contains(&[3], &[2], &[]));
        assert!(!plus.contains(&[0], &[11], &[]));
    }

    #[test]
    fn closure_rejects_non_uniform() {
        let r = rel("{ [i] -> [2i] : 0 <= i < 10 }");
        assert!(matches!(
            r.transitive_closure(),
            Err(OmegaError::UnsupportedClosure { .. })
        ));
    }

    #[test]
    fn reflexive_closure_includes_identity() {
        let r = rel("{ [i] -> [i+1] : 0 <= i < 10 }");
        let universe = Set::parse("{ [i] : 0 <= i <= 10 }").unwrap();
        let (star, _) = r.reflexive_transitive_closure(&universe).unwrap();
        assert!(star.contains(&[4], &[4], &[]));
        assert!(star.contains(&[4], &[9], &[]));
    }

    #[test]
    fn map_builder_constructs_dependency_mapping() {
        // Statement s2 of Fig. 1(a):  buf[2k-2] = A[2k-2] + A[k-1], 1<=k<=1024
        // Mapping to the SECOND operand A (index k-1):
        let mut b = MapBuilder::new(&["k".into()], &[]);
        b.add_domain(vec![1], vec![], -1, DomKind::Geq); // k - 1 >= 0
        b.add_domain(vec![-1], vec![], 1024, DomKind::Geq); // 1024 - k >= 0
        b.add_write_dim(vec![2], vec![], -2); // 2k - 2
        b.add_read_dim(vec![1], vec![], -1); // k - 1
        let m = b.build();
        let expected =
            rel("{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }");
        assert!(m.is_equal(&expected).unwrap());
        assert!(m.contains(&[0], &[0], &[]));
        assert!(m.contains(&[2], &[1], &[]));
        assert!(!m.contains(&[1], &[0], &[]));
    }

    #[test]
    fn canonical_key_is_stable_under_conjunct_order() {
        let a = rel("{ [i] -> [i] : 0 <= i < 5 }")
            .union(&rel("{ [i] -> [i] : 10 <= i < 15 }"))
            .unwrap();
        let b = rel("{ [i] -> [i] : 10 <= i < 15 }")
            .union(&rel("{ [i] -> [i] : 0 <= i < 5 }"))
            .unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn structural_hash_absorbs_presentation_noise() {
        // Same set, different constraint order / scaling / equality sign.
        let a = rel("{ [i] -> [2i] : 0 <= i and i < 10 }");
        let b = rel("{ [i] -> [2i] : i < 10 and 0 <= i }");
        assert_eq!(a.structural_hash(), b.structural_hash());
        // Different relations must (modulo 64-bit luck) hash apart.
        let c = rel("{ [i] -> [2i] : 0 <= i and i < 11 }");
        assert_ne!(a.structural_hash(), c.structural_hash());
        let d = rel("{ [i] -> [3i] : 0 <= i and i < 10 }");
        assert_ne!(a.structural_hash(), d.structural_hash());
    }

    #[test]
    fn structural_hash_is_cached_and_reset_on_mutation() {
        let a = rel("{ [i] -> [i] : 0 <= i < 5 }");
        let h1 = a.structural_hash();
        assert_eq!(a.structural_hash(), h1);
        // A clone carries the computed hash along.
        assert_eq!(a.clone().structural_hash(), h1);
        // Mutation invalidates the cache.
        let mut grown = a.clone();
        let extra = rel("{ [i] -> [i] : 10 <= i < 15 }");
        grown.add_conjunct(extra.conjuncts()[0].clone());
        assert_ne!(grown.structural_hash(), h1);
    }

    #[test]
    fn equal_relations_hash_equal_even_when_only_one_cache_is_warm() {
        let a = rel("{ [i] -> [i+1] : 0 <= i < 7 }");
        let b = rel("{ [i] -> [i+1] : 0 <= i < 7 }");
        let _ = a.structural_hash(); // warm only a's cache
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |r: &Relation| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn sample_point_returns_a_member() {
        let r = rel("{ [i] -> [2i] : 3 <= i < 10 }");
        let s = r.sample_point().expect("non-empty");
        assert!(r.contains(&s.input, &s.output, &s.params));
        assert_eq!(s.output[0], 2 * s.input[0]);
        assert!(rel("{ [i] -> [i] : i > 5 and i < 3 }")
            .sample_point()
            .is_none());
    }

    #[test]
    fn sample_point_handles_strides_and_existentials() {
        let r = rel("{ [k] -> [k] : exists j : k = 2j and 10 <= k < 13 }");
        let s = r.sample_point().expect("k = 10 or 12");
        assert!(s.input[0] == 10 || s.input[0] == 12);
        let m = rel("{ [k] -> [k] : k % 3 = 1 and 0 <= k < 9 }");
        let s = m.sample_point().expect("k in {1,4,7}");
        assert_eq!(s.input[0].rem_euclid(3), 1);
    }

    #[test]
    fn sample_point_picks_params_too() {
        let r = rel("[N] -> { [i] -> [2i] : 0 <= i < N }");
        let s = r.sample_point().expect("choose N >= 1");
        assert!(r.contains(&s.input, &s.output, &s.params));
        assert!(s.params[0] > s.input[0]);
    }

    #[test]
    fn sample_point_tries_every_conjunct() {
        let empty_first = rel("{ [i] -> [i] : i > 5 and i < 3 }")
            .union(&rel("{ [i] -> [i] : 7 <= i <= 7 }"))
            .unwrap();
        let s = empty_first.sample_point().expect("second disjunct");
        assert_eq!(s.input, vec![7]);
    }

    #[test]
    fn set_sampling_and_point_removal() {
        let s = Set::parse("{ [k] : k % 2 = 0 and 0 <= k < 6 }").unwrap();
        let mut remaining = s.clone();
        let mut seen = Vec::new();
        while let Some((p, _params)) = remaining.sample_point() {
            assert!(s.contains(&p, &[]));
            assert!(!seen.contains(&p[0]), "points must be distinct");
            seen.push(p[0]);
            remaining = remaining.without_point(&p).unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 4]);
    }

    #[test]
    fn restrict_and_apply() {
        let r = rel("{ [i] -> [2i] : 0 <= i < 100 }");
        let s = Set::parse("{ [i] : 3 <= i <= 5 }").unwrap();
        let img = r.apply(&s).unwrap();
        assert!(img.contains(&[6], &[]));
        assert!(img.contains(&[10], &[]));
        assert!(!img.contains(&[12], &[]));
        assert!(!img.contains(&[7], &[]));
    }
}
