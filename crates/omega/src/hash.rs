//! Deterministic 64-bit structural hashing for the omega types.
//!
//! The checker tables established sub-equivalences keyed by the relations
//! involved, and the conjunct-level feasibility memo is keyed the same way,
//! so the hash must be
//!
//! * **stable** — identical across runs and platforms (no per-process
//!   randomisation like `std`'s `DefaultHasher`), so measurements and debug
//!   sessions reproduce;
//! * **structural** — computed from the canonical form, so that permuted
//!   conjuncts, permuted constraints and gcd-scaled constraints all map to
//!   the same 64-bit value;
//! * **cheap** — a few multiplications per word, no buffering.
//!
//! The mixing function is the FxHash polynomial (rotate, xor, multiply by a
//! 64-bit odd constant), which is the standard choice for in-process hash
//! tables over small integer-heavy keys.

use std::hash::Hasher;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A deterministic FxHash-style [`Hasher`].
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the result does not
/// depend on process-global randomness, so hashes can be cached inside
/// long-lived values and compared across runs.
#[derive(Debug, Clone)]
pub struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    /// A fresh hasher with the fixed seed.
    pub fn new() -> Self {
        StructuralHasher { state: 0 }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

impl Hasher for StructuralHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy states spread over all 64 bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        self.mix(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hashes one `Hash` value to a stable 64-bit digest.
pub fn structural_hash_of<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StructuralHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Combines an unordered collection of element hashes into one digest.
///
/// The element hashes are sorted and deduplicated first, so the result is
/// independent of element order and of duplicated elements — exactly the
/// invariance the canonical forms of conjuncts (sets of constraints) and
/// relations (sets of conjuncts) need.
pub fn combine_unordered(mut hashes: Vec<u64>, salt: u64) -> u64 {
    hashes.sort_unstable();
    hashes.dedup();
    let mut h = StructuralHasher::new();
    h.write_u64(salt);
    h.write_usize(hashes.len());
    for x in hashes {
        h.write_u64(x);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(
            structural_hash_of(&(1i64, 2i64)),
            structural_hash_of(&(1i64, 2i64))
        );
        assert_ne!(
            structural_hash_of(&(1i64, 2i64)),
            structural_hash_of(&(2i64, 1i64))
        );
    }

    #[test]
    fn unordered_combination_ignores_order_and_duplicates() {
        let a = combine_unordered(vec![3, 1, 2], 7);
        let b = combine_unordered(vec![2, 3, 1, 1, 2], 7);
        assert_eq!(a, b);
        assert_ne!(a, combine_unordered(vec![3, 1, 2], 8));
        assert_ne!(a, combine_unordered(vec![3, 1], 7));
    }

    #[test]
    fn slices_of_different_lengths_differ() {
        let a: &[i64] = &[1, 2, 0];
        let b: &[i64] = &[1, 2];
        assert_ne!(structural_hash_of(a), structural_hash_of(b));
    }
}
