//! Individual affine constraints: equalities, inequalities and congruences.

use crate::arith::{note_arith_overflow, ArithOverflow};
use crate::linexpr::{gcd, LinExpr};

/// The kind of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// `expr = 0`
    Eq,
    /// `expr >= 0`
    Geq,
    /// `expr ≡ 0 (mod m)` — the modulus is stored in [`Constraint::modulus`].
    Mod,
}

/// A single affine constraint over the columns of a conjunct.
///
/// Three forms are supported: `e = 0`, `e ≥ 0` and `e ≡ 0 (mod m)`.
/// Congruences are what keeps the constraint language closed under the
/// negation needed for set difference: strided loops (`k += 2`) produce
/// existential equalities `k = 2j` which are normalised to `k ≡ 0 (mod 2)`,
/// and `¬(e ≡ 0 mod m)` is the finite union `⋃_{r=1}^{m-1} e − r ≡ 0 (mod m)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constraint {
    kind: ConstraintKind,
    expr: LinExpr,
    /// Modulus for `Mod` constraints; 0 otherwise.
    modulus: i64,
}

impl Constraint {
    /// The constraint `expr = 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Eq,
            expr,
            modulus: 0,
        }
    }

    /// The constraint `expr >= 0`.
    pub fn geq(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Geq,
            expr,
            modulus: 0,
        }
    }

    /// The constraint `expr ≡ 0 (mod modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn congruent(expr: LinExpr, modulus: i64) -> Self {
        assert!(modulus >= 2, "modulus must be at least 2");
        Constraint {
            kind: ConstraintKind::Mod,
            expr,
            modulus,
        }
    }

    /// The kind of this constraint.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// The affine expression constrained by this constraint.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// Mutable access to the affine expression.
    pub fn expr_mut(&mut self) -> &mut LinExpr {
        &mut self.expr
    }

    /// The modulus (only meaningful for `Mod` constraints, 0 otherwise).
    pub fn modulus(&self) -> i64 {
        self.modulus
    }

    /// Number of variable columns the constraint ranges over.
    pub fn n_vars(&self) -> usize {
        self.expr.n_vars()
    }

    /// Whether the constraint involves variable column `col`.
    pub fn uses(&self, col: usize) -> bool {
        self.expr.coeff(col) != 0
    }

    /// Evaluates the constraint for a concrete assignment of all columns.
    ///
    /// The evaluation is widened to `i128` (which any sum of `i64`·`i64`
    /// products over the inline width fits) and, should even that overflow,
    /// the sticky overflow flag is noted and the constraint conservatively
    /// reports `false`.
    pub fn holds(&self, values: &[i64]) -> bool {
        let v = match self.expr.try_eval_wide(values) {
            Ok(v) => v,
            Err(ArithOverflow) => {
                note_arith_overflow();
                return false;
            }
        };
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Geq => v >= 0,
            ConstraintKind::Mod => v.rem_euclid(self.modulus as i128) == 0,
        }
    }

    /// Returns `Some(true)` / `Some(false)` if the constraint is trivially
    /// true/false (constant expression), `None` otherwise.
    pub fn trivial(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant();
        Some(match self.kind {
            ConstraintKind::Eq => c == 0,
            ConstraintKind::Geq => c >= 0,
            ConstraintKind::Mod => c.rem_euclid(self.modulus) == 0,
        })
    }

    /// Normalises the constraint into its canonical structural form:
    ///
    /// * equalities are divided by the gcd of all coefficients (an equality
    ///   with a non-divisible constant is left intact — the feasibility test
    ///   reports it as unsatisfiable) and *sign-canonicalised*: since
    ///   `e = 0 ⇔ −e = 0`, the representative with a positive leading
    ///   coefficient is chosen, so `x − y = 0` and `y − x = 0` normalise to
    ///   the same constraint;
    /// * inequalities are divided by the gcd of the *variable* coefficients
    ///   with the constant rounded down (integer tightening);
    /// * congruences reduce their coefficients into `[0, m)` and divide by
    ///   the shared gcd with the modulus (which also fixes their sign).
    ///
    /// Normalisation is idempotent; [`Conjunct::simplify`](crate::Conjunct)
    /// applies it to every constraint, which is what makes the structural
    /// hashes of differently-written but syntactically equivalent conjuncts
    /// coincide.
    pub fn normalized(&self) -> Constraint {
        match self.kind {
            ConstraintKind::Eq => {
                let mut e = self.expr.clone();
                let g = e.coeff_gcd();
                if g > 1 && e.constant() % g == 0 {
                    e.exact_div_assign(g);
                }
                if e.leading_value() < 0 {
                    // Sign canonicalisation is skipped when negating would
                    // overflow (an `i64::MIN` entry): a missed canonical form
                    // only costs a memo hit, a wrapped one would poison the
                    // structural hash.
                    let _ = e.try_scale_assign(-1);
                }
                Constraint::eq(e)
            }
            ConstraintKind::Geq => {
                let g = self.expr.coeff_gcd();
                if g > 1 {
                    let mut e = self.expr.clone();
                    e.tighten_div_assign(g);
                    Constraint::geq(e)
                } else {
                    self.clone()
                }
            }
            ConstraintKind::Mod => {
                let m = self.modulus;
                let mut e = self.expr.clone();
                e.rem_euclid_assign(m);
                // If everything vanished the congruence is trivially true and
                // a later simplification pass drops it; keep it syntactically
                // valid here.
                let g = gcd(e.coeff_gcd(), gcd(e.constant(), m));
                if g > 1 && m / g >= 2 {
                    e.exact_div_assign(g);
                    Constraint::congruent(e, m / g)
                } else if g > 1 && m / g == 1 {
                    // Congruence modulo 1 is trivially true.
                    Constraint::geq(LinExpr::constant_expr(e.n_vars(), 0))
                } else {
                    Constraint::congruent(e, m)
                }
            }
        }
    }

    /// The negation of this constraint, as a disjunction of constraints.
    ///
    /// * `¬(e ≥ 0)` is `−e − 1 ≥ 0`;
    /// * `¬(e = 0)` is `e − 1 ≥ 0  ∨  −e − 1 ≥ 0`;
    /// * `¬(e ≡ 0 mod m)` is `⋁_{r=1}^{m−1} (e − r) ≡ 0 (mod m)`.
    pub fn negated(&self) -> Vec<Constraint> {
        match self.try_negated() {
            Ok(cs) => cs,
            Err(ArithOverflow) => {
                // Negating would overflow `i64` (an `i64::MIN` coefficient or
                // saturated constant).  Fall back to the trivially-true
                // constraint — the negation is *weakened*, which can only
                // enlarge a difference (spurious inequivalence direction) —
                // and note the sticky flag so the enclosing verdict degrades
                // to inconclusive rather than asserting anything.
                note_arith_overflow();
                vec![Constraint::geq(LinExpr::constant_expr(
                    self.expr.n_vars(),
                    0,
                ))]
            }
        }
    }

    fn try_negated(&self) -> Result<Vec<Constraint>, ArithOverflow> {
        let lowered = |e: &LinExpr, by: i64| -> Result<LinExpr, ArithOverflow> {
            let mut e = e.clone();
            let c = e.constant().checked_sub(by).ok_or(ArithOverflow)?;
            e.set_constant(c);
            Ok(e)
        };
        Ok(match self.kind {
            ConstraintKind::Geq => vec![Constraint::geq(lowered(&self.expr.try_scale(-1)?, 1)?)],
            ConstraintKind::Eq => vec![
                Constraint::geq(lowered(&self.expr, 1)?),
                Constraint::geq(lowered(&self.expr.try_scale(-1)?, 1)?),
            ],
            ConstraintKind::Mod => (1..self.modulus)
                .map(|r| Ok(Constraint::congruent(lowered(&self.expr, r)?, self.modulus)))
                .collect::<Result<_, _>>()?,
        })
    }

    /// Returns a copy with `extra` zero columns appended.
    pub fn extended(&self, extra: usize) -> Constraint {
        Constraint {
            kind: self.kind,
            expr: self.expr.extended(extra),
            modulus: self.modulus,
        }
    }

    /// Returns a copy with columns remapped (see [`LinExpr::remapped`]).
    pub fn remapped(&self, map: &[usize], new_len: usize) -> Constraint {
        Constraint {
            kind: self.kind,
            expr: self.expr.remapped(map, new_len),
            modulus: self.modulus,
        }
    }

    /// Returns a copy with unused column `col` removed.
    pub fn without_col(&self, col: usize) -> Constraint {
        Constraint {
            kind: self.kind,
            expr: self.expr.without_col(col),
            modulus: self.modulus,
        }
    }

    /// Substitutes variable `col := value` (see [`LinExpr::substitute`]).
    pub fn substitute(&self, col: usize, value: &LinExpr) -> Constraint {
        Constraint {
            kind: self.kind,
            expr: self.expr.substitute(col, value),
            modulus: self.modulus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(coeffs: &[i64], c: i64) -> LinExpr {
        LinExpr::from_coeffs(coeffs.to_vec(), c)
    }

    #[test]
    fn holds_checks_each_kind() {
        let eq = Constraint::eq(e(&[1, -1], 0)); // x = y
        assert!(eq.holds(&[3, 3]));
        assert!(!eq.holds(&[3, 4]));
        let ge = Constraint::geq(e(&[1, 0], -2)); // x >= 2
        assert!(ge.holds(&[2, 0]));
        assert!(!ge.holds(&[1, 0]));
        let md = Constraint::congruent(e(&[1, 0], 0), 2); // x even
        assert!(md.holds(&[4, 1]));
        assert!(!md.holds(&[5, 1]));
        assert!(md.holds(&[-2, 0]));
    }

    #[test]
    fn trivial_detection() {
        assert_eq!(Constraint::eq(e(&[0, 0], 0)).trivial(), Some(true));
        assert_eq!(Constraint::eq(e(&[0, 0], 3)).trivial(), Some(false));
        assert_eq!(Constraint::geq(e(&[0], -1)).trivial(), Some(false));
        assert_eq!(Constraint::geq(e(&[1], -1)).trivial(), None);
        assert_eq!(Constraint::congruent(e(&[0], 4), 2).trivial(), Some(true));
        assert_eq!(Constraint::congruent(e(&[0], 3), 2).trivial(), Some(false));
    }

    #[test]
    fn normalization_divides_by_gcd() {
        // 2x - 4 = 0  ->  x - 2 = 0
        let c = Constraint::eq(e(&[2], -4)).normalized();
        assert_eq!(c.expr().coeffs(), &[1]);
        assert_eq!(c.expr().constant(), -2);
        // 2x - 3 >= 0 -> x - 2 >= 0 (integer tightening: x >= 3/2 -> x >= 2)
        let c = Constraint::geq(e(&[2], -3)).normalized();
        assert_eq!(c.expr().coeffs(), &[1]);
        assert_eq!(c.expr().constant(), -2);
        // 2x - 3 = 0 has no integer solution; normalization must not mangle it
        let c = Constraint::eq(e(&[2], -3)).normalized();
        assert_eq!(c.expr().coeffs(), &[2]);
    }

    #[test]
    fn normalization_of_congruence() {
        // 4x + 6 ≡ 0 mod 2 is trivially x*0 ≡ 0: reduces to a true constraint
        let c = Constraint::congruent(e(&[4], 6), 2).normalized();
        assert_eq!(c.trivial(), Some(true));
        // 2x ≡ 0 (mod 4)  ->  x ≡ 0 (mod 2)
        let c = Constraint::congruent(e(&[2], 0), 4).normalized();
        assert_eq!(c.kind(), ConstraintKind::Mod);
        assert_eq!(c.modulus(), 2);
        assert_eq!(c.expr().coeffs(), &[1]);
    }

    #[test]
    fn negation_of_inequality() {
        // not(x - 2 >= 0)  =>  -x + 1 >= 0   (x <= 1)
        let neg = Constraint::geq(e(&[1], -2)).negated();
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].expr().coeffs(), &[-1]);
        assert_eq!(neg[0].expr().constant(), 1);
    }

    #[test]
    fn negation_of_equality() {
        let neg = Constraint::eq(e(&[1], 0)).negated();
        assert_eq!(neg.len(), 2);
        // x - 1 >= 0 or -x - 1 >= 0
        assert!(neg[0].holds(&[1]));
        assert!(!neg[0].holds(&[0]));
        assert!(neg[1].holds(&[-1]));
    }

    #[test]
    fn negation_of_congruence() {
        let neg = Constraint::congruent(e(&[1], 0), 3).negated();
        assert_eq!(neg.len(), 2);
        // x ≡ 1 (mod 3) or x ≡ 2 (mod 3)
        assert!(neg.iter().any(|c| c.holds(&[4])));
        assert!(neg.iter().any(|c| c.holds(&[5])));
        assert!(!neg.iter().any(|c| c.holds(&[6])));
    }

    #[test]
    fn uses_and_remap() {
        let c = Constraint::geq(e(&[1, 0, -2], 5));
        assert!(c.uses(0));
        assert!(!c.uses(1));
        let r = c.remapped(&[2, 1, 0], 3);
        assert_eq!(r.expr().coeffs(), &[-2, 0, 1]);
    }
}
