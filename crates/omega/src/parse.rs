//! Parser for the textual `{ [i] -> [j] : constraints }` notation.
//!
//! The accepted grammar (informally):
//!
//! ```text
//! relation   := params? '{' disjunct ('or' disjunct)* '}'
//! params     := '[' ident (',' ident)* ']' '->'
//! disjunct   := tuple ('->' tuple)? (':' formula)?
//! tuple      := '[' (ident (',' ident)*)? ']'
//! formula    := 'true' | 'false' | clause ('and' clause)*
//! clause     := 'exists' ident (',' ident)* ':' clause
//!             | expr '%' INT '=' expr            (congruence)
//!             | expr (relop expr)+               (chained comparison)
//! relop      := '<=' | '<' | '>=' | '>' | '=' | '=='
//! expr       := ['-'] term (('+'|'-') term)*
//! term       := INT ('*'? ident)? | ident | '(' expr ')'
//! ```
//!
//! Identifiers must be declared: tuple variables in the tuples, parameters in
//! the `[N] ->` prefix and quantified variables by `exists`.  This catches
//! typos in hand-written mappings instead of silently quantifying them.

use crate::conjunct::Conjunct;
use crate::constraint::Constraint;
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::space::Space;
use crate::{OmegaError, Result};
use std::collections::HashMap;

/// Parses a relation such as `"[N] -> { [i] -> [2i] : 0 <= i < N }"`.
pub(crate) fn parse_relation(text: &str) -> Result<Relation> {
    Parser::new(text)?.parse_relation()
}

/// Parses a set such as `"{ [i, j] : 0 <= i <= j }"`.
pub(crate) fn parse_set(text: &str) -> Result<Set> {
    let r = Parser::new(text)?.parse_relation()?;
    if r.space().n_out() != 0 {
        return Err(OmegaError::Parse {
            message: "expected a set but found a relation (it has output dims)".into(),
            offset: 0,
        });
    }
    Ok(Set::from_relation(r))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Colon,
    Arrow,
    Plus,
    Minus,
    Star,
    Percent,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

/// Intermediate affine expression keyed by variable *name*; materialised into
/// a [`LinExpr`] only once the full variable list of the disjunct is known.
#[derive(Debug, Clone, Default)]
struct NamedExpr {
    coeffs: HashMap<String, i64>,
    constant: i64,
}

impl NamedExpr {
    fn add_var(&mut self, name: &str, k: i64) {
        *self.coeffs.entry(name.to_owned()).or_insert(0) += k;
    }
    fn scale(&self, k: i64) -> NamedExpr {
        NamedExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(n, &c)| (n.clone(), c * k))
                .collect(),
            constant: self.constant * k,
        }
    }
    fn add(&mut self, other: &NamedExpr, k: i64) {
        for (n, &c) in &other.coeffs {
            self.add_var(n, c * k);
        }
        self.constant += other.constant * k;
    }
}

/// A parsed constraint still referring to variables by name.
#[derive(Debug, Clone)]
enum NamedConstraint {
    Eq(NamedExpr),
    Geq(NamedExpr),
    Mod(NamedExpr, i64),
    False,
}

impl Parser {
    fn new(text: &str) -> Result<Parser> {
        let mut toks = Vec::new();
        let bytes: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let start = i;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    i += 1;
                }
                '{' => {
                    toks.push((Tok::LBrace, start));
                    i += 1;
                }
                '}' => {
                    toks.push((Tok::RBrace, start));
                    i += 1;
                }
                '[' => {
                    toks.push((Tok::LBracket, start));
                    i += 1;
                }
                ']' => {
                    toks.push((Tok::RBracket, start));
                    i += 1;
                }
                '(' => {
                    toks.push((Tok::LParen, start));
                    i += 1;
                }
                ')' => {
                    toks.push((Tok::RParen, start));
                    i += 1;
                }
                ',' => {
                    toks.push((Tok::Comma, start));
                    i += 1;
                }
                ':' => {
                    toks.push((Tok::Colon, start));
                    i += 1;
                }
                '+' => {
                    toks.push((Tok::Plus, start));
                    i += 1;
                }
                '*' => {
                    toks.push((Tok::Star, start));
                    i += 1;
                }
                '%' => {
                    toks.push((Tok::Percent, start));
                    i += 1;
                }
                '-' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                        toks.push((Tok::Arrow, start));
                        i += 2;
                    } else {
                        toks.push((Tok::Minus, start));
                        i += 1;
                    }
                }
                '<' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        toks.push((Tok::Le, start));
                        i += 2;
                    } else {
                        toks.push((Tok::Lt, start));
                        i += 1;
                    }
                }
                '>' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        toks.push((Tok::Ge, start));
                        i += 2;
                    } else {
                        toks.push((Tok::Gt, start));
                        i += 1;
                    }
                }
                '=' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    toks.push((Tok::EqEq, start));
                }
                '&' => {
                    // `&` / `&&` are synonyms for `and`.
                    if i + 1 < bytes.len() && bytes[i + 1] == '&' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    toks.push((Tok::Ident("and".into()), start));
                }
                _ if c.is_ascii_digit() => {
                    let mut v: i64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        v = v * 10 + (bytes[i] as i64 - '0' as i64);
                        i += 1;
                    }
                    toks.push((Tok::Int(v), start));
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let mut name = String::new();
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                    {
                        name.push(bytes[i]);
                        i += 1;
                    }
                    toks.push((Tok::Ident(name), start));
                }
                _ => {
                    return Err(OmegaError::Parse {
                        message: format!("unexpected character `{c}`"),
                        offset: start,
                    })
                }
            }
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or_else(|| self.toks.last().map(|(_, o)| *o + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        let off = self.offset();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(OmegaError::Parse {
                message: format!("expected {what}, found {other:?}"),
                offset: off,
            }),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(OmegaError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn parse_relation(&mut self) -> Result<Relation> {
        // Optional parameter prefix `[N, M] ->`
        let mut params: Vec<String> = Vec::new();
        if matches!(self.peek(), Some(Tok::LBracket)) {
            params = self.parse_name_tuple()?;
            self.expect(Tok::Arrow, "`->` after parameter list")?;
        }
        self.expect(Tok::LBrace, "`{`")?;

        let mut space: Option<Space> = None;
        let mut conjuncts: Vec<Conjunct> = Vec::new();
        loop {
            let in_elems = self.parse_expr_tuple()?;
            let out_elems = if matches!(self.peek(), Some(Tok::Arrow)) {
                self.bump();
                self.parse_expr_tuple()?
            } else {
                Vec::new()
            };
            // Tuple elements may be plain (fresh) names, which declare the
            // dimension, or affine expressions over already-declared names,
            // which synthesise a dimension plus an equality constraint
            // (`[i] -> [2i]` becomes out dim `__o0` with `__o0 = 2i`).
            let mut declared: std::collections::HashSet<String> = params.iter().cloned().collect();
            let mut extra: Vec<NamedConstraint> = Vec::new();
            let in_vars = Self::tuple_dims(&in_elems, "i", &mut declared, &mut extra);
            let out_vars = Self::tuple_dims(&out_elems, "o", &mut declared, &mut extra);
            let this_space = Space::relation(&in_vars, &out_vars, &params);
            if let Some(s) = &space {
                if !s.is_compatible(&this_space) {
                    return self.err("disjuncts have different tuple arities");
                }
            } else {
                space = Some(this_space.clone());
            }

            let (mut constraints, exists) = if matches!(self.peek(), Some(Tok::Colon)) {
                self.bump();
                self.parse_formula()?
            } else {
                (Vec::new(), Vec::new())
            };
            constraints.extend(extra);

            conjuncts.push(self.materialize(&this_space, &exists, &constraints)?);

            match self.peek() {
                Some(Tok::Ident(w)) if w == "or" => {
                    self.bump();
                }
                Some(Tok::RBrace) => {
                    self.bump();
                    break;
                }
                _ => return self.err("expected `or` or `}`"),
            }
        }
        if self.pos != self.toks.len() {
            return self.err("unexpected trailing input");
        }
        let space = space.expect("at least one disjunct parsed");
        // Drop syntactically-false disjuncts (e.g. the printer's `: false`).
        let conjuncts: Vec<Conjunct> = conjuncts
            .into_iter()
            .filter_map(|mut c| if c.simplify() { Some(c) } else { None })
            .collect();
        Ok(Relation::from_conjuncts(space, conjuncts))
    }

    /// Parses a tuple of affine expressions, e.g. `[i, 2j + 1]`.
    fn parse_expr_tuple(&mut self) -> Result<Vec<NamedExpr>> {
        self.expect(Tok::LBracket, "`[`")?;
        let mut elems = Vec::new();
        if matches!(self.peek(), Some(Tok::RBracket)) {
            self.bump();
            return Ok(elems);
        }
        loop {
            elems.push(self.parse_expr()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBracket) => break,
                other => return self.err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
        Ok(elems)
    }

    /// Turns tuple elements into dimension names, synthesising names and
    /// equality constraints for elements that are not fresh identifiers.
    fn tuple_dims(
        elems: &[NamedExpr],
        prefix: &str,
        declared: &mut std::collections::HashSet<String>,
        extra: &mut Vec<NamedConstraint>,
    ) -> Vec<String> {
        let mut names = Vec::with_capacity(elems.len());
        for (idx, e) in elems.iter().enumerate() {
            let as_fresh_name = if e.constant == 0 && e.coeffs.len() == 1 {
                e.coeffs
                    .iter()
                    .next()
                    .filter(|(n, &c)| c == 1 && !declared.contains(*n))
                    .map(|(n, _)| n.clone())
            } else {
                None
            };
            match as_fresh_name {
                Some(n) => {
                    declared.insert(n.clone());
                    names.push(n);
                }
                None => {
                    let synth = format!("__{prefix}{idx}");
                    declared.insert(synth.clone());
                    // expr - synth = 0
                    let mut c = e.clone();
                    c.add_var(&synth, -1);
                    extra.push(NamedConstraint::Eq(c));
                    names.push(synth);
                }
            }
        }
        names
    }

    fn parse_name_tuple(&mut self) -> Result<Vec<String>> {
        self.expect(Tok::LBracket, "`[`")?;
        let mut names = Vec::new();
        if matches!(self.peek(), Some(Tok::RBracket)) {
            self.bump();
            return Ok(names);
        }
        loop {
            match self.bump() {
                Some(Tok::Ident(n)) => names.push(n),
                other => return self.err(format!("expected identifier in tuple, found {other:?}")),
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBracket) => break,
                other => return self.err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
        Ok(names)
    }

    /// Parses the formula of one disjunct; returns the constraints and the
    /// names of the existential variables introduced by `exists`.
    fn parse_formula(&mut self) -> Result<(Vec<NamedConstraint>, Vec<String>)> {
        let mut constraints = Vec::new();
        let mut exists: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(w)) if w == "true" => {
                    self.bump();
                }
                Some(Tok::Ident(w)) if w == "false" => {
                    self.bump();
                    constraints.push(NamedConstraint::False);
                }
                Some(Tok::Ident(w)) if w == "exists" => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(Tok::Ident(n)) => exists.push(n),
                            other => {
                                return self
                                    .err(format!("expected quantified variable, found {other:?}"))
                            }
                        }
                        match self.peek() {
                            Some(Tok::Comma) => {
                                self.bump();
                            }
                            Some(Tok::Colon) => {
                                self.bump();
                                break;
                            }
                            other => {
                                return self.err(format!("expected `,` or `:`, found {other:?}"))
                            }
                        }
                    }
                    continue; // the clause after `exists ... :` follows
                }
                _ => {
                    constraints.extend(self.parse_clause()?);
                }
            }
            match self.peek() {
                Some(Tok::Ident(w)) if w == "and" => {
                    self.bump();
                }
                _ => break,
            }
        }
        Ok((constraints, exists))
    }

    /// Parses one (possibly chained) comparison or congruence.
    fn parse_clause(&mut self) -> Result<Vec<NamedConstraint>> {
        let first = self.parse_expr()?;

        // Congruence: expr % m = r
        if matches!(self.peek(), Some(Tok::Percent)) {
            self.bump();
            let m = match self.bump() {
                Some(Tok::Int(m)) if m >= 2 => m,
                other => return self.err(format!("expected modulus >= 2, found {other:?}")),
            };
            self.expect(Tok::EqEq, "`=` after modulus")?;
            let rhs = self.parse_expr()?;
            if !rhs.coeffs.values().all(|&c| c == 0) {
                return self.err("right-hand side of a congruence must be a constant");
            }
            let mut e = first;
            e.constant -= rhs.constant;
            return Ok(vec![NamedConstraint::Mod(e, m)]);
        }

        // Chained comparison: e0 op e1 op e2 ...
        let mut out = Vec::new();
        let mut lhs = first;
        let mut any = false;
        while let Some(Tok::Le | Tok::Lt | Tok::Ge | Tok::Gt | Tok::EqEq) = self.peek() {
            let op = self.bump().unwrap();
            any = true;
            let rhs = self.parse_expr()?;
            let mut diff = rhs.clone();
            diff.add(&lhs, -1); // rhs - lhs
            match op {
                Tok::Le => out.push(NamedConstraint::Geq(diff)),
                Tok::Lt => {
                    let mut d = diff;
                    d.constant -= 1;
                    out.push(NamedConstraint::Geq(d));
                }
                Tok::Ge => out.push(NamedConstraint::Geq(diff.scale(-1))),
                Tok::Gt => {
                    let mut d = diff.scale(-1);
                    d.constant -= 1;
                    out.push(NamedConstraint::Geq(d));
                }
                Tok::EqEq => out.push(NamedConstraint::Eq(diff)),
                _ => unreachable!(),
            }
            lhs = rhs;
        }
        if !any {
            return self.err("expected a comparison operator");
        }
        Ok(out)
    }

    fn parse_expr(&mut self) -> Result<NamedExpr> {
        let mut expr = NamedExpr::default();
        let mut sign = 1i64;
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.bump();
            sign = -1;
        }
        let t = self.parse_term()?;
        expr.add(&t, sign);
        loop {
            let sign = match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    1
                }
                Some(Tok::Minus) => {
                    self.bump();
                    -1
                }
                _ => break,
            };
            let t = self.parse_term()?;
            expr.add(&t, sign);
        }
        Ok(expr)
    }

    fn parse_term(&mut self) -> Result<NamedExpr> {
        let mut e = NamedExpr::default();
        match self.bump() {
            Some(Tok::Int(v)) => {
                // optional `* ident` or juxtaposed ident: 2*k or 2k
                match self.peek() {
                    Some(Tok::Star) => {
                        self.bump();
                        match self.bump() {
                            Some(Tok::Ident(n)) => e.add_var(&n, v),
                            other => {
                                return self
                                    .err(format!("expected identifier after `*`, found {other:?}"))
                            }
                        }
                    }
                    Some(Tok::Ident(n)) if n != "and" && n != "or" && n != "exists" => {
                        let n = n.clone();
                        self.bump();
                        e.add_var(&n, v);
                    }
                    _ => e.constant += v,
                }
            }
            Some(Tok::Ident(n)) => e.add_var(&n, 1),
            Some(Tok::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen, "`)`")?;
                e.add(&inner, 1);
            }
            Some(Tok::Minus) => {
                let inner = self.parse_term()?;
                e.add(&inner, -1);
            }
            other => return self.err(format!("expected a term, found {other:?}")),
        }
        Ok(e)
    }

    /// Turns named constraints into a [`Conjunct`] over `space`.
    fn materialize(
        &self,
        space: &Space,
        exists: &[String],
        constraints: &[NamedConstraint],
    ) -> Result<Conjunct> {
        let mut conj = Conjunct::universe(space.clone());
        let ex_base = conj.add_exists(exists.len());
        let n_vars = conj.n_vars();
        // Build name -> column map.
        let mut cols: HashMap<&str, usize> = HashMap::new();
        for (i, n) in space.in_vars().iter().enumerate() {
            cols.insert(n.as_str(), i);
        }
        for (i, n) in space.out_vars().iter().enumerate() {
            cols.insert(n.as_str(), space.n_in() + i);
        }
        for (i, n) in space.params().iter().enumerate() {
            cols.insert(n.as_str(), space.n_in() + space.n_out() + i);
        }
        for (i, n) in exists.iter().enumerate() {
            cols.insert(n.as_str(), ex_base + i);
        }

        let lower = |e: &NamedExpr| -> Result<LinExpr> {
            let mut le = LinExpr::zero(n_vars);
            for (name, &coef) in &e.coeffs {
                match cols.get(name.as_str()) {
                    Some(&col) => le.set_coeff(col, le.coeff(col) + coef),
                    None => {
                        return Err(OmegaError::Parse {
                            message: format!(
                                "unknown variable `{name}` (declare it in a tuple, the parameter \
                                 list or an `exists`)"
                            ),
                            offset: 0,
                        })
                    }
                }
            }
            le.set_constant(e.constant);
            Ok(le)
        };

        for c in constraints {
            match c {
                NamedConstraint::Eq(e) => conj.add(Constraint::eq(lower(e)?)),
                NamedConstraint::Geq(e) => conj.add(Constraint::geq(lower(e)?)),
                NamedConstraint::Mod(e, m) => conj.add(Constraint::congruent(lower(e)?, *m)),
                NamedConstraint::False => {
                    let minus_one = LinExpr::constant_expr(n_vars, -1);
                    conj.add(Constraint::geq(minus_one));
                }
            }
        }
        Ok(conj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_relation() {
        let r = parse_relation("{ [i] -> [2i] : 0 <= i < 10 }").unwrap();
        assert!(r.contains(&[3], &[6], &[]));
        assert!(!r.contains(&[3], &[7], &[]));
        assert!(!r.contains(&[10], &[20], &[]));
    }

    #[test]
    fn parse_chained_comparison_and_juxtaposition() {
        let r = parse_relation("{ [i] -> [j] : 0 <= 2i < j <= 20 }").unwrap();
        assert!(r.contains(&[3], &[7], &[]));
        assert!(!r.contains(&[3], &[6], &[]));
        assert!(!r.contains(&[3], &[21], &[]));
    }

    #[test]
    fn parse_exists_and_mod() {
        let a = parse_relation("{ [k] -> [k] : exists j : k = 2j and 0 <= k < 10 }").unwrap();
        let b = parse_relation("{ [k] -> [k] : k % 2 = 0 and 0 <= k < 10 }").unwrap();
        assert!(a.is_equal(&b).unwrap());
        let c = parse_relation("{ [k] -> [k] : k % 2 = 1 and 0 <= k < 10 }").unwrap();
        assert!(!a.is_equal(&c).unwrap());
        assert!(c.contains(&[3], &[3], &[]));
    }

    #[test]
    fn parse_params_and_sets() {
        let s = parse_set("[N] -> { [i] : 0 <= i < N }").unwrap();
        assert!(s.contains(&[3], &[7]));
        assert!(!s.contains(&[7], &[7]));
        assert!(parse_set("{ [i] -> [j] : i = j }").is_err());
    }

    #[test]
    fn parse_disjunction() {
        let r = parse_relation("{ [i] -> [i] : 0 <= i < 3 or [i] -> [i] : 7 <= i < 9 }").unwrap();
        assert!(r.contains(&[1], &[1], &[]));
        assert!(r.contains(&[8], &[8], &[]));
        assert!(!r.contains(&[5], &[5], &[]));
    }

    #[test]
    fn parse_true_false_and_empty_tuple() {
        let r = parse_relation("{ [i] -> [i] : true }").unwrap();
        assert!(r.contains(&[42], &[42], &[]));
        let f = parse_relation("{ [i] -> [i] : false }").unwrap();
        assert!(f.is_empty());
        let scalar = parse_set("{ [] : true }").unwrap();
        assert!(scalar.contains(&[], &[]));
    }

    #[test]
    fn parse_parenthesised_and_negative_terms() {
        let r = parse_relation("{ [i] -> [j] : j = -(i - 3) and 0 <= i <= 6 }").unwrap();
        assert!(r.contains(&[1], &[2], &[]));
        assert!(r.contains(&[5], &[-2], &[]));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let e = parse_relation("{ [i] -> [j] : j = 2q }");
        assert!(matches!(e, Err(OmegaError::Parse { .. })));
    }

    #[test]
    fn error_reports_offset() {
        let e = parse_relation("{ [i] -> [j] ; i = j }");
        match e {
            Err(OmegaError::Parse { offset, .. }) => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn star_multiplication() {
        let a = parse_relation("{ [i] -> [3*i] : 0 <= i < 5 }").unwrap();
        let b = parse_relation("{ [i] -> [3i] : 0 <= i < 5 }").unwrap();
        assert!(a.is_equal(&b).unwrap());
    }
}
