//! Textual rendering of sets and relations in the `{ [i] -> [j] : ... }`
//! notation also accepted by the parser.

use crate::conjunct::Conjunct;
use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::space::Space;
use std::fmt;

/// Renders one linear expression with the given column names.
fn fmt_expr(e: &LinExpr, names: &[String], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut first = true;
    for (i, name) in names.iter().enumerate() {
        let a = e.coeff(i);
        if a == 0 {
            continue;
        }
        if first {
            if a == 1 {
                write!(f, "{name}")?;
            } else if a == -1 {
                write!(f, "-{name}")?;
            } else {
                write!(f, "{a}{name}")?;
            }
            first = false;
        } else if a > 0 {
            if a == 1 {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {a}{name}")?;
            }
        } else if a == -1 {
            write!(f, " - {name}")?;
        } else {
            write!(f, " - {}{name}", -a)?;
        }
    }
    let c = e.constant();
    if first {
        write!(f, "{c}")?;
    } else if c > 0 {
        write!(f, " + {c}")?;
    } else if c < 0 {
        write!(f, " - {}", -c)?;
    }
    Ok(())
}

/// Helper that adapts `fmt_expr` to `format!`.
struct ExprDisplay<'a> {
    expr: &'a LinExpr,
    names: &'a [String],
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.expr, self.names, f)
    }
}

fn constraint_string(c: &Constraint, names: &[String]) -> String {
    let e = ExprDisplay {
        expr: c.expr(),
        names,
    };
    match c.kind() {
        ConstraintKind::Eq => format!("{e} = 0"),
        ConstraintKind::Geq => format!("{e} >= 0"),
        ConstraintKind::Mod => format!("({e}) % {} = 0", c.modulus()),
    }
}

fn conjunct_body(c: &Conjunct, space: &Space) -> String {
    let mut names: Vec<String> = Vec::with_capacity(c.n_vars());
    names.extend(space.in_vars().iter().cloned());
    names.extend(space.out_vars().iter().cloned());
    names.extend(space.params().iter().cloned());
    for e in 0..c.n_exists() {
        names.push(format!("e{e}"));
    }
    let mut body = String::new();
    if c.n_exists() > 0 {
        let evars: Vec<String> = (0..c.n_exists()).map(|e| format!("e{e}")).collect();
        body.push_str(&format!("exists {} : ", evars.join(", ")));
    }
    if c.constraints().is_empty() {
        body.push_str("true");
    } else {
        let parts: Vec<String> = c
            .constraints()
            .iter()
            .map(|cons| constraint_string(cons, &names))
            .collect();
        body.push_str(&parts.join(" and "));
    }
    body
}

fn fmt_relation_like(
    space: &Space,
    conjuncts: &[Conjunct],
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    if space.n_param() > 0 {
        write!(f, "[{}] -> ", space.params().join(", "))?;
    }
    write!(f, "{{ ")?;
    if conjuncts.is_empty() {
        write!(f, "[{}]", space.in_vars().join(", "))?;
        if space.n_out() > 0 {
            write!(f, " -> [{}]", space.out_vars().join(", "))?;
        }
        write!(f, " : false }}")?;
        return Ok(());
    }
    let mut first = true;
    for c in conjuncts {
        if !first {
            write!(f, " or ")?;
        }
        first = false;
        write!(f, "[{}]", space.in_vars().join(", "))?;
        if space.n_out() > 0 {
            write!(f, " -> [{}]", space.out_vars().join(", "))?;
        }
        write!(f, " : {}", conjunct_body(c, space))?;
    }
    write!(f, " }}")
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_relation_like(self.space(), self.conjuncts(), f)
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_relation_like(self.space(), self.conjuncts(), f)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Relation, Set};

    #[test]
    fn display_round_trips_through_parser() {
        let texts = [
            "{ [i] -> [2i] : 0 <= i < 10 }",
            "[N] -> { [i] -> [i+1] : 0 <= i < N }",
            "{ [k] -> [k] : k % 2 = 0 and 0 <= k < 100 }",
            "{ [i] -> [j] : 0 <= i < 4 and 0 <= j <= i }",
            "{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }",
        ];
        for t in texts {
            let r = Relation::parse(t).expect("parse original");
            let printed = format!("{r}");
            let back = Relation::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert!(
                r.is_equal(&back).unwrap(),
                "round trip changed meaning: {t} -> {printed}"
            );
        }
    }

    #[test]
    fn display_of_set_and_empty() {
        let s = Set::parse("{ [i] : 0 <= i < 4 }").unwrap();
        let printed = format!("{s}");
        let back = Set::parse(&printed).unwrap();
        assert!(s.is_equal(&back).unwrap());

        let e = Relation::parse("{ [i] -> [i] : 1 = 0 }").unwrap();
        // Even a degenerate relation should render to something parseable.
        let printed = format!("{}", e.simplified(true));
        let back = Relation::parse(&printed).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn union_renders_with_or() {
        let a = Relation::parse("{ [i] -> [i] : 0 <= i < 5 }").unwrap();
        let b = Relation::parse("{ [i] -> [i] : 10 <= i < 15 }").unwrap();
        let u = a.union(&b).unwrap();
        let printed = format!("{u}");
        assert!(printed.contains(" or "));
        let back = Relation::parse(&printed).unwrap();
        assert!(u.is_equal(&back).unwrap());
    }
}
