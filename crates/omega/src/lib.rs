//! # arrayeq-omega
//!
//! An integer-set / affine-relation calculator in the spirit of the *Omega
//! calculator and library* used by the DATE 2005 paper
//! *"Functional Equivalence Checking for Verification of Algebraic
//! Transformations on Array-Intensive Source Code"* (Shashidhar et al.).
//!
//! The paper manipulates **dependency mappings** — relations between integer
//! tuples constrained by (piecewise-)affine formulas such as
//!
//! ```text
//! { [x] -> [y] : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }
//! ```
//!
//! and needs the following operations on them: natural join (composition),
//! inverse, domain/range, intersection, union, emptiness, subset/equality
//! tests and transitive closure (for recurrences).  This crate provides all
//! of them, exactly, for the class of relations the restricted program class
//! of the paper generates.
//!
//! ## Data model
//!
//! * [`LinExpr`] — an affine expression `Σ aᵢ·xᵢ + c` with `i64` coefficients.
//! * [`Constraint`] — `e = 0`, `e ≥ 0` or `e ≡ 0 (mod m)`.
//! * [`Space`] — names of the input-tuple dims, output-tuple dims and symbolic
//!   parameters a relation is defined over.
//! * [`Conjunct`] — a conjunction of constraints over a space, possibly with
//!   local existentially-quantified variables (used for strides and for the
//!   intermediate tuple introduced by composition).
//! * [`Relation`] — a finite union of conjuncts over one space; the workhorse
//!   type.  [`Set`] is a relation with no output dims.
//!
//! ## Decision procedure
//!
//! Emptiness of a conjunct is decided exactly with the classic *Omega test*
//! recipe: normalise and eliminate equalities first (unit-coefficient
//! substitution, otherwise Pugh's mod-reduction), then eliminate the remaining
//! variables with Fourier–Motzkin using the *real shadow* (unsat ⇒ unsat),
//! the *dark shadow* (sat ⇒ sat) and *splinters* for the gap, which makes the
//! test exact for arbitrary coefficients.  Subset and equality are reduced to
//! emptiness of set differences; the constraint language is closed under the
//! negation required by the difference because congruences negate into finite
//! unions of congruences.
//!
//! ## Model extraction
//!
//! Feasibility alone answers *whether* a relation is non-empty; the witness
//! engine of the equivalence checker also needs to know *where*.
//! [`Relation::sample_point`] (and [`Conjunct::sample_point`] /
//! [`Set::sample_point`]) run the Omega test's elimination order in a
//! model-producing mode: every equality substitution is recorded and
//! replayed in reverse once the fully-projected system is solved, and each
//! Fourier–Motzkin step re-inserts the eliminated variable at the tightest
//! lower bound inside `[max lower, min upper]` evaluated at the sub-model.
//! Exact eliminations guarantee an integer in that interval; inexact ones
//! take the model from the *dark shadow* (where Pugh's theorem gives the
//! same guarantee) or, in the gap, from a *splinter* sub-problem whose model
//! is already a model of the original system.  Congruences and existential
//! variables are witnessed internally (their columns are solved like any
//! other and truncated from the returned point), so a returned point always
//! satisfies `contains` — a property-tested invariant.  The machinery is
//! fully disabled on the `is_feasible` hot path.
//!
//! ## Canonical forms, hashing and the feasibility memo
//!
//! The equivalence checker spends essentially all of its time in chains of
//! these operations, and the same sub-relations keep re-appearing along
//! different traversal paths.  Three mechanisms make the repeats cheap:
//!
//! * **Canonical structural form.**  [`Constraint::normalized`] gcd-reduces
//!   every constraint, integer-tightens inequalities, reduces congruences
//!   into `[0, m)` and sign-canonicalises equalities (`x − y = 0` and
//!   `y − x = 0` become one representative).  A conjunct's canonical form
//!   drops trivially-true constraints and sorts and deduplicates the rest
//!   (constraints implement `Ord`, so no textual rendering is involved);
//!   a relation's canonical form treats its conjuncts as a set.
//!
//! * **Structural hashing.**  [`Conjunct::structural_hash`] and
//!   [`Relation::structural_hash`] digest the canonical form into a stable,
//!   deterministic 64-bit value (an FxHash-style polynomial — see the
//!   `StructuralHasher` used internally).  The relation-level hash is
//!   computed lazily, cached in the relation and carried along by clones, so
//!   after the first computation a tabling key costs two integer loads where
//!   the previous string key re-ran a full feasibility pass and a `format!`
//!   per conjunct on every lookup.
//!
//! * **Feasibility memo.**  [`Conjunct::is_feasible`] memoises Omega-test
//!   verdicts per thread, keyed by structural hash and bounded in size, so
//!   the emptiness queries that `Relation::simplified(true)`,
//!   [`Relation::subtract`] and [`Relation::is_subset`] issue for
//!   structurally identical conjuncts run the solver once.  Debug builds
//!   store the canonical constraint system next to each verdict and verify
//!   it on every hit, so a 64-bit hash collision fails loudly instead of
//!   corrupting a verdict.
//!
//! All allocation-heavy inner loops (Fourier–Motzkin shadows, equality
//! elimination, existential elimination) operate on [`LinExpr`]s that store
//! up to six coefficients inline and are mutated in place via
//! `add_scaled_assign` / `scale_assign` / `substitute_assign`, so the
//! typical relation of the paper's program class never touches the heap per
//! elimination step.
//!
//! ## Quick example
//!
//! ```
//! use arrayeq_omega::Relation;
//!
//! # fn main() -> Result<(), arrayeq_omega::OmegaError> {
//! // The two dependency mappings of statement s2 in Fig. 1(a) of the paper.
//! let m1 = Relation::parse("{ [x] -> [y] : exists k : x = 2k - 2 and y = 2k - 2 and 1 <= k <= 1024 }")?;
//! let m2 = Relation::parse("{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")?;
//! assert!(!m1.is_equal(&m2)?);
//!
//! // Intermediate-variable reduction is relation composition (natural join).
//! let c_to_tmp = Relation::parse("{ [k] -> [k] : 0 <= k < 1024 }")?;
//! let tmp_to_b = Relation::parse("{ [k] -> [2k] : 0 <= k < 1024 }")?;
//! let c_to_b = c_to_tmp.compose(&tmp_to_b)?;
//! assert!(c_to_b.is_equal(&Relation::parse("{ [k] -> [2k] : 0 <= k < 1024 }")?)?);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod bigint;
mod conjunct;
mod constraint;
mod display;
mod dnf;
mod feasible;
mod hash;
mod linexpr;
mod parse;
pub mod reference;
mod relation;
mod set;
mod space;

#[doc(hidden)]
pub use arith::inject_arith_overflow;
pub use arith::{
    arith_overflow_events, arith_overflow_pending, set_unchecked_solver_arithmetic,
    take_arith_overflow, ArithOverflow,
};
pub use bigint::BigInt;
pub use conjunct::{
    current_feasibility_cache, feasibility_memo_stats, with_feasibility_cache, Conjunct,
    FeasibilityCache,
};
pub use constraint::{Constraint, ConstraintKind};
pub use dnf::{
    bigint_fallback_events, conjuncts_subsumed_events, eager_simplification,
    set_eager_simplification,
};
pub use hash::{structural_hash_of, StructuralHasher};
pub use linexpr::LinExpr;
pub use relation::{DomKind, MapBuilder, Relation, SamplePoint};
pub use set::Set;
pub use space::{Space, VarKind};

use std::fmt;

/// Errors produced by the omega layer.
///
/// All fallible public operations return `Result<_, OmegaError>`; the error
/// carries enough context to report which operation failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmegaError {
    /// Two operands were defined over incompatible spaces (different arity or
    /// parameter lists).
    SpaceMismatch {
        /// Description of the operation that was attempted.
        op: &'static str,
        /// Rendering of the left-hand space.
        lhs: String,
        /// Rendering of the right-hand space.
        rhs: String,
    },
    /// The text given to [`Relation::parse`] / [`Set::parse`] was malformed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        offset: usize,
    },
    /// An operation required eliminating an existential variable exactly and
    /// the implementation could not do so (outside the supported fragment).
    InexactElimination {
        /// Description of the operation that needed the elimination.
        op: &'static str,
    },
    /// Transitive closure was requested for a relation outside the supported
    /// (uniform / translation) fragment.
    UnsupportedClosure {
        /// Rendering of the offending relation.
        relation: String,
    },
    /// An arithmetic overflow occurred while manipulating coefficients.
    Overflow {
        /// Description of the operation during which the overflow happened.
        op: &'static str,
    },
}

impl fmt::Display for OmegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaError::SpaceMismatch { op, lhs, rhs } => {
                write!(f, "space mismatch in {op}: {lhs} vs {rhs}")
            }
            OmegaError::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            OmegaError::InexactElimination { op } => {
                write!(f, "cannot exactly eliminate existential variables in {op}")
            }
            OmegaError::UnsupportedClosure { relation } => {
                write!(f, "transitive closure unsupported for relation {relation}")
            }
            OmegaError::Overflow { op } => write!(f, "coefficient overflow in {op}"),
        }
    }
}

impl std::error::Error for OmegaError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OmegaError>;
