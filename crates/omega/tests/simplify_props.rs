//! Property tests of the DNF constraint-set engine.
//!
//! Contract under test: *simplification is invisible*.  Coalescing subsumed
//! disjuncts, dropping redundant constraints (`minimized`), gisting against
//! a context and the eager-simplification mode toggle may change how a set
//! is represented, but never what it denotes.  Denotation is checked two
//! ways: per-point membership over an exhaustive box, and feasibility
//! cross-checked against the big-integer reference oracle
//! ([`arrayeq_omega::reference`]), where neither overflow nor any of the
//! production fast paths exist.

use arrayeq_omega::reference::reference_is_feasible;
use arrayeq_omega::{
    set_eager_simplification, take_arith_overflow, Conjunct, Constraint, LinExpr, Relation, Set,
    Space,
};
use proptest::prelude::*;

/// Restores the eager-simplification mode on drop, so a failing property
/// cannot leak a disabled mode into other tests on the same thread.
struct EagerGuard(bool);

impl EagerGuard {
    fn set(on: bool) -> Self {
        EagerGuard(set_eager_simplification(on))
    }
}

impl Drop for EagerGuard {
    fn drop(&mut self) {
        set_eager_simplification(self.0);
    }
}

/// One constraint: coefficients for (x, y), constant, and a kind selector
/// (0 = `≥ 0`, 1 = `= 0`, 2 = `≡ 0 (mod 3)`).
type ConstraintDesc = (i64, i64, i64, u8);

fn build_conjunct(space: &Space, cs: &[ConstraintDesc]) -> Conjunct {
    let mut c = Conjunct::universe(space.clone());
    for &(a, b, k, kind) in cs {
        let e = LinExpr::from_coeffs(vec![a, b], k);
        c.add(match kind % 3 {
            0 => Constraint::geq(e),
            1 => Constraint::eq(e),
            _ => Constraint::congruent(e, 3),
        });
    }
    c
}

fn build_set(desc: &[Vec<ConstraintDesc>]) -> Set {
    let names = ["x", "y"];
    let space = Space::set(&names, &[]);
    let conjuncts = desc
        .iter()
        .map(|cs| build_conjunct(&space, cs))
        .collect::<Vec<_>>();
    Set::from_relation(Relation::from_conjuncts(space, conjuncts))
}

/// Deterministic structure generator: the proptest shim samples scalars
/// only, so each property draws a `u64` seed and expands it into a DNF
/// description with this SplitMix64 stream.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    /// A small DNF set: 1–3 conjuncts of 1–3 constraints with coefficients
    /// in `[-3, 3]` — large enough to hit subsumption, congruence negation
    /// and redundant-constraint dropping, small enough that the big-int
    /// oracle and an exhaustive box check stay instant.
    fn dnf(&mut self) -> Vec<Vec<ConstraintDesc>> {
        (0..self.in_range(1, 3))
            .map(|_| {
                (0..self.in_range(1, 3))
                    .map(|_| {
                        (
                            self.in_range(-3, 3),
                            self.in_range(-3, 3),
                            self.in_range(-5, 5),
                            self.in_range(0, 2) as u8,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// A single quantifier-free conjunct (no congruences) usable as a gist
    /// context.
    fn context(&mut self) -> Vec<ConstraintDesc> {
        (0..self.in_range(1, 3))
            .map(|_| {
                (
                    self.in_range(-3, 3),
                    self.in_range(-3, 3),
                    self.in_range(-5, 5),
                    self.in_range(0, 1) as u8,
                )
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Emptiness of the set — raw, simplified and minimized — must agree
    /// with the disjunction of per-conjunct big-int oracle verdicts.
    #[test]
    fn simplification_preserves_feasibility_vs_bigint_oracle(
        seed in 0u64..u64::MAX,
    ) {
        let _ = take_arith_overflow();
        let desc = Gen(seed).dnf();
        let set = build_set(&desc);
        let oracle: Option<Vec<bool>> = set
            .conjuncts()
            .iter()
            .map(|c| reference_is_feasible(c.constraints(), c.n_vars()))
            .collect();
        if let Some(verdicts) = oracle {
            let nonempty = verdicts.iter().any(|&v| v);
            prop_assert!(set.is_empty() != nonempty, "raw set disagrees with oracle");
            prop_assert!(
                set.simplified().is_empty() != nonempty,
                "simplified set disagrees with oracle"
            );
            prop_assert!(
                set.minimized().is_empty() != nonempty,
                "minimized set disagrees with oracle"
            );
        }
        let _ = take_arith_overflow();
    }

    /// Membership at every point of a box must survive `simplified` and
    /// `minimized`, and union/subtract must compute the pointwise
    /// disjunction/difference — identically with eager coalescing on and
    /// off.  The eager and lazy results must also be equal as sets.
    #[test]
    fn simplification_never_changes_membership(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let a = gen.dnf();
        let b = gen.dnf();
        let mut by_mode: Vec<(Set, Set)> = Vec::new();
        for eager in [false, true] {
            let _guard = EagerGuard::set(eager);
            let s = build_set(&a);
            let t = build_set(&b);
            let u = s.union(&t).unwrap();
            let d = s.subtract(&t).unwrap();
            for x in -4i64..=4 {
                for y in -4i64..=4 {
                    let p = [x, y];
                    let in_s = s.contains(&p, &[]);
                    let in_t = t.contains(&p, &[]);
                    prop_assert!(
                        s.simplified().contains(&p, &[]) == in_s,
                        "simplified changed membership at {p:?} (eager={eager})"
                    );
                    prop_assert!(
                        s.minimized().contains(&p, &[]) == in_s,
                        "minimized changed membership at {p:?} (eager={eager})"
                    );
                    prop_assert!(
                        u.contains(&p, &[]) == (in_s || in_t),
                        "union wrong at {p:?} (eager={eager})"
                    );
                    prop_assert!(
                        d.contains(&p, &[]) == (in_s && !in_t),
                        "difference wrong at {p:?} (eager={eager})"
                    );
                }
            }
            by_mode.push((u, d));
        }
        let (u_lazy, d_lazy) = &by_mode[0];
        let (u_eager, d_eager) = &by_mode[1];
        prop_assert!(u_lazy.is_equal(u_eager).unwrap(), "eager union differs as a set");
        prop_assert!(d_lazy.is_equal(d_eager).unwrap(), "eager difference differs as a set");
    }

    /// Sampling commutes with simplification: a point sampled from the
    /// simplified or minimized set is a member of the original, and a
    /// non-empty set stays sampleable after simplification.
    #[test]
    fn sample_points_survive_simplification(seed in 0u64..u64::MAX) {
        let desc = Gen(seed).dnf();
        let set = build_set(&desc);
        for (tag, view) in [("simplified", set.simplified()), ("minimized", set.minimized())] {
            match view.sample_point() {
                Some((p, params)) => prop_assert!(
                    set.contains(&p, &params),
                    "{tag} sampled {:?} outside the original set", p
                ),
                None => prop_assert!(
                    set.is_empty(),
                    "{tag} lost all sample points of a non-empty set"
                ),
            }
        }
    }

    /// The gist contract: `gist(s, ctx) ∧ ctx == s ∧ ctx`.  The gisted set
    /// may be much smaller, but conjoined back with its context it must
    /// denote exactly the original intersection.
    #[test]
    fn gist_preserves_the_intersection_with_its_context(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let set = build_set(&gen.dnf());
        let ctx = build_set(&[gen.context()]);
        let gisted = set.gist(&ctx).unwrap();
        let lhs = gisted.intersect(&ctx).unwrap();
        let rhs = set.intersect(&ctx).unwrap();
        prop_assert!(
            lhs.is_equal(&rhs).unwrap(),
            "gist ∧ ctx differs from set ∧ ctx\n  set: {set:?}\n  ctx: {ctx:?}\n  gist: {gisted:?}"
        );
    }
}

#[test]
fn construction_dedupes_structurally_identical_conjuncts() {
    let names = ["x", "y"];
    let space = Space::set(&names, &[]);
    // Same conjunct twice, written with different constraint orders — the
    // structural hash sees through the permutation.
    let c1 = build_conjunct(&space, &[(1, 0, 0, 0), (-1, 0, 5, 0)]);
    let c2 = build_conjunct(&space, &[(-1, 0, 5, 0), (1, 0, 0, 0)]);
    let r = Relation::from_conjuncts(space, vec![c1, c2]);
    assert_eq!(
        r.conjuncts().len(),
        1,
        "structurally identical conjuncts must be deduplicated at construction"
    );
}

#[test]
fn union_coalesces_subsumed_disjuncts_and_counts_them() {
    let _guard = EagerGuard::set(true);
    let big = Set::parse("{ [x] : 0 <= x <= 10 }").unwrap();
    let small = Set::parse("{ [x] : 2 <= x <= 5 }").unwrap();
    let before = arrayeq_omega::conjuncts_subsumed_events();
    let u = big.union(&small).unwrap();
    assert_eq!(
        u.conjuncts().len(),
        1,
        "the subsumed disjunct must be coalesced away: {u:?}"
    );
    assert!(
        arrayeq_omega::conjuncts_subsumed_events() > before,
        "coalescing must be visible in the subsumption counter"
    );
    // And the union still denotes the right set.
    for x in -2i64..=12 {
        assert_eq!(u.contains(&[x], &[]), (0..=10).contains(&x));
    }
}
