//! Overflow regression corpus and property tests.
//!
//! The soundness contract under test: on large-coefficient systems the
//! production solver either *decides correctly* (its `i128`-widened checked
//! arithmetic absorbed the intermediates) or raises the typed sticky
//! overflow flag and reports the conservative "feasible" — it never panics
//! and never returns a silently-wrapped wrong verdict.  Correctness is
//! established against [`arrayeq_omega::reference`], the big-integer port
//! of the same decision procedure, where overflow cannot occur.

use arrayeq_omega::reference::reference_is_feasible;
use arrayeq_omega::{take_arith_overflow, Conjunct, Constraint, LinExpr, Space, VarKind};
use proptest::prelude::*;

/// Builds the set-space conjunct of `constraints` over `n` variables.
fn conjunct(constraints: &[Constraint], n: usize) -> Conjunct {
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    let mut c = Conjunct::universe(Space::set(&names, &[]));
    for cs in constraints {
        c.add(cs.clone());
    }
    c
}

fn le(coeffs: &[i64], k: i64) -> LinExpr {
    LinExpr::from_coeffs(coeffs.to_vec(), k)
}

/// Runs the production solver; returns `(verdict, overflow_degraded)` with
/// the sticky flag cleared before and after.
fn checked_verdict(constraints: &[Constraint], n: usize) -> (bool, bool) {
    let _ = take_arith_overflow();
    let feasible = conjunct(constraints, n).is_feasible();
    (feasible, take_arith_overflow())
}

/// Asserts the soundness contract for one system: the production verdict
/// must match the oracle whenever the production run did not degrade; a
/// degraded run must report the conservative `true`.
fn assert_contract(constraints: &[Constraint], n: usize) {
    let (feasible, degraded) = checked_verdict(constraints, n);
    if degraded {
        assert!(
            feasible,
            "overflow-degraded verdict must be the conservative \"feasible\""
        );
        return;
    }
    if let Some(oracle) = reference_is_feasible(constraints, n) {
        // `feasible == false` is always a definite decision; `true` can in
        // principle be a work-limit hit, but not on systems this small.
        assert_eq!(
            feasible, oracle,
            "production solver disagrees with big-int oracle on {constraints:?}"
        );
    }
}

const M: i64 = i64::MAX;
const H: i64 = i64::MAX / 2;

/// Hand-picked large-coefficient kernels: every entry is
/// `(constraints, n_vars, expected_oracle_verdict)`.
fn corpus() -> Vec<(Vec<Constraint>, usize, bool)> {
    vec![
        // Saturated one-variable band: H·x ≥ H ∧ H·x ≤ H  ⇒  x = 1.
        (
            vec![Constraint::geq(le(&[H], -H)), Constraint::geq(le(&[-H], H))],
            1,
            true,
        ),
        // Non-divisible saturated equality: H·x = H − 1 (gcd refutes).
        (vec![Constraint::eq(le(&[H], -(H - 1)))], 1, false),
        // Bezout with huge coprime coefficients: M·x + (M−1)·y = 1.
        (vec![Constraint::eq(le(&[M, M - 1], -1))], 2, true),
        // Two saturated bands whose FM combination overflows i64:
        // H·x + H·y ≥ H ∧ −H·x ≥ 0 ∧ −H·y ≥ 0 (only x = y = 0 candidates
        // fail the first row).
        (
            vec![
                Constraint::geq(le(&[H, H], -H)),
                Constraint::geq(le(&[-H, 0], 0)),
                Constraint::geq(le(&[0, -H], 0)),
            ],
            2,
            false,
        ),
        // i64::MIN coefficient: MIN·x ≥ 0 ∧ x ≥ 1 is empty.
        (
            vec![
                Constraint::geq(le(&[i64::MIN], 0)),
                Constraint::geq(le(&[1], -1)),
            ],
            1,
            false,
        ),
        // i64::MIN the other way: MIN·x ≥ 0 ∧ x ≤ 0 holds at x = 0.
        (
            vec![
                Constraint::geq(le(&[i64::MIN], 0)),
                Constraint::geq(le(&[-1], 0)),
            ],
            1,
            true,
        ),
        // Congruence with a huge modulus: x ≡ 0 (mod H) ∧ 1 ≤ x < H.
        (
            vec![
                Constraint::congruent(le(&[1], 0), H),
                Constraint::geq(le(&[1], -1)),
                Constraint::geq(le(&[-1], H - 1)),
            ],
            1,
            false,
        ),
        // Saturated constants: x ≥ M ∧ x ≤ M pins x = M.
        (
            vec![Constraint::geq(le(&[1], -M)), Constraint::geq(le(&[-1], M))],
            1,
            true,
        ),
        // Dark-shadow margin blow-up: 7·x ≥ 3 ∧ H·x ≤ 10·H is inexact
        // (both coefficients non-unit) with margin 6·(H−1) > i64::MAX, but
        // the small lower coefficient keeps the splinter count at ≤ 6 so
        // the big-int oracle still decides it quickly.
        (
            vec![
                Constraint::geq(le(&[7], -3)),
                Constraint::geq(le(&[-H], H.saturating_mul(10))),
            ],
            1,
            true,
        ),
        // Equality chain that overflows during substitution:
        // x = H·y ∧ y = H (value H² needs more than i64).
        (
            vec![
                Constraint::eq(le(&[1, -H], 0)),
                Constraint::eq(le(&[0, 1], -H)),
            ],
            2,
            true,
        ),
    ]
}

#[test]
fn corpus_verdicts_match_big_int_oracle() {
    for (i, (constraints, n, expected)) in corpus().into_iter().enumerate() {
        let oracle = reference_is_feasible(&constraints, n);
        assert_eq!(
            oracle,
            Some(expected),
            "corpus entry {i}: oracle disagrees with the annotated verdict"
        );
        let (feasible, degraded) = checked_verdict(&constraints, n);
        if degraded {
            assert!(
                feasible,
                "corpus entry {i}: degraded verdict must be conservative"
            );
        } else {
            assert_eq!(feasible, oracle.unwrap(), "corpus entry {i}: wrong verdict");
        }
    }
}

#[test]
fn corpus_never_panics_with_witness_extraction() {
    for (i, (constraints, n, _)) in corpus().into_iter().enumerate() {
        let _ = take_arith_overflow();
        let c = conjunct(&constraints, n);
        // Witness extraction exercises back-substitution and bound placement
        // on the same adversarial coefficients; a returned point must be a
        // real member unless the run degraded.
        if let Some(point) = c.sample_point() {
            let degraded = take_arith_overflow();
            if !degraded {
                assert!(
                    c.contains(&point),
                    "corpus entry {i}: sample_point returned a non-member"
                );
            }
        }
        let _ = take_arith_overflow();
    }
}

#[test]
fn infeasible_verdicts_are_never_overflow_degraded() {
    // A "false" from the production solver is always a proof; it must never
    // be emitted with the overflow flag raised by its own run.
    for (i, (constraints, n, _)) in corpus().into_iter().enumerate() {
        let (feasible, degraded) = checked_verdict(&constraints, n);
        assert!(
            feasible || !degraded,
            "corpus entry {i}: infeasible verdict from a degraded run"
        );
    }
}

/// Scales `v` into the adversarial band: small magnitudes stay small, large
/// draws saturate near ±i64::MAX, so every case mixes both regimes.
fn stretch(v: i64) -> i64 {
    match v.rem_euclid(4) {
        0 => v,
        1 => v.saturating_mul(H / 2),
        2 => v.saturating_mul(H),
        _ => v.saturating_mul(M / 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random 2-variable systems with mixed small/saturated coefficients:
    /// the production verdict must match the big-int oracle on every
    /// non-degraded run, and never panic on any run.
    #[test]
    fn random_large_coefficient_systems_agree_with_oracle(
        a0 in -6i64..7, a1 in -6i64..7, k0 in -6i64..7,
        b0 in -6i64..7, b1 in -6i64..7, k1 in -6i64..7,
        c0 in -6i64..7, c1 in -6i64..7, k2 in -6i64..7,
        kind in 0usize..3,
    ) {
        let rows = [
            le(&[stretch(a0), stretch(a1)], stretch(k0)),
            le(&[stretch(b0), stretch(b1)], stretch(k1)),
            le(&[stretch(c0), stretch(c1)], stretch(k2)),
        ];
        let mut constraints = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            constraints.push(match (kind + i) % 3 {
                0 => Constraint::geq(row.clone()),
                1 => Constraint::eq(row.clone()),
                _ => Constraint::congruent(le(&[a0.rem_euclid(5) + 1, 1], k2), 7),
            });
        }
        assert_contract(&constraints, 2);
    }

    /// Existential simplification on saturated coefficients must keep
    /// membership answers consistent with the quantifier-free evaluation —
    /// or degrade with the typed flag, never silently diverge.
    #[test]
    fn simplify_on_saturated_coefficients_is_sound(
        a in -5i64..6, b in -5i64..6, k in -5i64..6, x in -4i64..5,
    ) {
        let _ = take_arith_overflow();
        let sa = stretch(a.max(1));
        let names = ["x"];
        let mut c = Conjunct::universe(Space::set(&names, &[]));
        let e0 = c.add_exists(1);
        let n = c.n_vars();
        // sa·x + b·e + k = 0 with e bounded.
        let mut eq = LinExpr::zero(n);
        eq.set_coeff(c.col(VarKind::In, 0), sa);
        eq.set_coeff(e0, stretch(b) | 1);
        eq.set_constant(stretch(k));
        c.add(Constraint::eq(eq));
        let mut lo = LinExpr::zero(n);
        lo.set_coeff(e0, 1);
        lo.set_constant(8);
        c.add(Constraint::geq(lo));
        let before = c.clone();
        let mut simplified = c;
        let sat = simplified.simplify();
        let degraded = take_arith_overflow();
        if !degraded && sat {
            // Membership of a concrete point must survive simplification.
            let p = [x];
            let m_before = before.contains(&p);
            let degraded_before = take_arith_overflow();
            let m_after = simplified.contains(&p);
            let degraded_after = take_arith_overflow();
            if !degraded_before && !degraded_after {
                prop_assert_eq!(m_before, m_after);
            }
        }
        let _ = take_arith_overflow();
    }
}
