//! Structured proof tracing and session metrics for the arrayeq checker.
//!
//! This crate sits at the very bottom of the workspace dependency graph (it
//! has no dependencies of its own) so that every layer — `omega`, `core`,
//! `engine`, `cli` — can emit trace events through one shared facility.
//!
//! # Design
//!
//! The API is built around a process-global sink guarded by an atomic
//! enabled flag:
//!
//! * **Zero overhead when disabled.** Every emission site first performs a
//!   single `Relaxed` atomic load ([`enabled`]). When no collector is
//!   installed that load is the *entire* cost: field vectors are built
//!   lazily through closures ([`span_with`], [`event_with`]) so the
//!   disabled path allocates nothing and formats nothing.
//! * **Worker-aware.** The PR4 intra-query pool tags each worker thread
//!   with an id via [`set_worker`]; events carry that id so sinks can
//!   reconstruct per-worker lanes. Id `0` is the main/coordinator thread.
//! * **Span balance.** [`Span`] is a drop guard: the `Close` event fires on
//!   scope exit, including `?`-style early returns, so open/close events
//!   balance per worker whenever install/uninstall bracket whole runs.
//!
//! Two machine-readable serializations are provided by [`Collector`]:
//! a JSONL event stream ([`Collector::to_jsonl`]) and a Chrome trace-event
//! profile ([`Collector::to_chrome`]) loadable in `chrome://tracing` or
//! Perfetto. A human-facing proof-tree renderer lives in [`explain`].
//!
//! Latency metrics are a separate, even cheaper channel: a global
//! [`Metrics`] registry of log2-bucket histograms for the four hot
//! operations ([`Metric`]), designed to aggregate across queries for a
//! long-lived daemon session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

pub mod explain;

// ---------------------------------------------------------------------------
// Global sink state
// ---------------------------------------------------------------------------

/// Fast-path flag: true iff a collector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector, if any. Written only by install/uninstall;
/// read (briefly, under the read lock) by emission sites.
static SINK: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

/// Fast-path flag for the metrics channel.
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// The installed metrics registry, if any.
static METRICS: RwLock<Option<Arc<Metrics>>> = RwLock::new(None);

thread_local! {
    /// Worker id attached to events emitted from this thread (0 = main).
    static WORKER: Cell<u32> = const { Cell::new(0) };
    /// Names of currently-open spans on this thread, for depth bookkeeping.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Returns true iff a trace collector is currently installed.
///
/// This is a single `Relaxed` atomic load — the entire cost of an
/// instrumentation site when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `collector` as the process-global trace sink and enables
/// tracing. Replaces any previously installed collector.
pub fn install(collector: Arc<Collector>) {
    *SINK.write().unwrap() = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables tracing and removes the installed collector, returning it so
/// the caller can serialize the gathered events.
pub fn uninstall() -> Option<Arc<Collector>> {
    ENABLED.store(false, Ordering::SeqCst);
    SINK.write().unwrap().take()
}

/// Tags the current thread with a worker id (0 = main/coordinator).
/// Worker pools call this once per worker thread before draining tasks.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// Returns the current thread's worker id.
pub fn current_worker() -> u32 {
    WORKER.with(|w| w.get())
}

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// A field value attached to an event. Deliberately small: only the shapes
/// the checker actually needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter / size.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Owned string (array names, statement labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

/// A named field: `(key, value)`.
pub type Field = (&'static str, Value);

/// Convenience constructor for a string field.
pub fn s(key: &'static str, val: impl Into<String>) -> Field {
    (key, Value::Str(val.into()))
}

/// Convenience constructor for an unsigned field.
pub fn u(key: &'static str, val: u64) -> Field {
    (key, Value::U64(val))
}

/// Convenience constructor for a boolean field.
pub fn b(key: &'static str, val: bool) -> Field {
    (key, Value::Bool(val))
}

/// Event phase, mirroring the Chrome trace-event `ph` letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`"B"`).
    Open,
    /// Span close (`"E"`), carrying the span duration.
    Close,
    /// Instantaneous event (`"i"`).
    Instant,
}

impl Phase {
    /// The Chrome trace-event phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Open => "B",
            Phase::Close => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Microseconds since the collector's epoch.
    pub ts_us: u64,
    /// Worker lane (0 = main thread).
    pub worker: u32,
    /// Open / Close / Instant.
    pub phase: Phase,
    /// Static event name ("output", "compose", "discharge", ...).
    pub name: &'static str,
    /// Span duration in microseconds; only meaningful on `Close`.
    pub dur_us: u64,
    /// Structured payload.
    pub fields: Vec<Field>,
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// Accumulates trace events in memory and serializes them to JSONL or the
/// Chrome trace-event format.
pub struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("events", &self.len())
            .finish()
    }
}

impl Collector {
    /// Creates an empty collector; its epoch (ts 0) is the creation time.
    pub fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since this collector's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, ev: Event) {
        self.events.lock().unwrap().push(ev);
    }

    /// Snapshot of all recorded events, in push order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the event stream as JSONL: one JSON object per line with
    /// keys `ts` (µs since epoch), `worker`, `ph` (`B`/`E`/`i`), `name`,
    /// `dur` (µs, close events only) and the event's fields flattened in.
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(events.len() * 96);
        for ev in events.iter() {
            write_event_json(&mut out, ev, false);
            out.push('\n');
        }
        out
    }

    /// Serializes the events as a Chrome trace-event document (the JSON
    /// object format with a `traceEvents` array), loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Worker lanes appear
    /// as threads: tid = worker id, named via `thread_name` metadata.
    pub fn to_chrome(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut workers: Vec<u32> = events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();

        let mut out = String::with_capacity(events.len() * 128 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for w in &workers {
            if !first {
                out.push(',');
            }
            first = false;
            let label = if *w == 0 {
                "main".to_owned()
            } else {
                format!("worker-{w}")
            };
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        for ev in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            write_event_json(&mut out, ev, true);
        }
        out.push_str("]}");
        out
    }
}

/// Writes one event as a JSON object. `chrome` selects the Chrome
/// trace-event shape (pid/tid/args) over the flat JSONL shape.
fn write_event_json(out: &mut String, ev: &Event, chrome: bool) {
    use std::fmt::Write as _;
    out.push('{');
    if chrome {
        let _ = write!(
            out,
            "\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":",
            ev.phase.letter(),
            ev.worker,
            ev.ts_us
        );
        write_json_string(out, ev.name);
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        if ev.phase == Phase::Close {
            let _ = write!(out, "\"dur_us\":{}", ev.dur_us);
            first = false;
        }
        for (k, v) in &ev.fields {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(out, k);
            out.push(':');
            write_json_value(out, v);
        }
        out.push('}');
    } else {
        let _ = write!(
            out,
            "\"ts\":{},\"worker\":{},\"ph\":\"{}\",\"name\":",
            ev.ts_us,
            ev.worker,
            ev.phase.letter()
        );
        write_json_string(out, ev.name);
        if ev.phase == Phase::Close {
            let _ = write!(out, ",\"dur\":{}", ev.dur_us);
        }
        for (k, v) in &ev.fields {
            out.push(',');
            write_json_string(out, k);
            out.push(':');
            write_json_value(out, v);
        }
    }
    out.push('}');
}

fn write_json_value(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
        Value::Str(s) => write_json_string(out, s),
    }
}

/// Writes `s` as a JSON string literal with escaping.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------------

fn emit(phase: Phase, name: &'static str, dur_us: u64, fields: Vec<Field>) {
    let guard = SINK.read().unwrap();
    if let Some(c) = guard.as_ref() {
        let ev = Event {
            ts_us: c.now_us(),
            worker: current_worker(),
            phase,
            name,
            dur_us,
            fields,
        };
        c.push(ev);
    }
}

/// An open span; emits the matching `Close` event (with duration) when
/// dropped, including on early returns.
///
/// A `Span` created while tracing was disabled is inert: dropping it emits
/// nothing even if tracing was enabled in between (and vice versa the
/// close is suppressed if the collector vanished), so spans never panic
/// and imbalance can only arise from uninstalling mid-run.
#[must_use = "a span closes when dropped; binding it to _ closes it immediately"]
pub struct Span {
    name: &'static str,
    opened: Option<Instant>,
}

impl Span {
    /// A span that was never opened (tracing disabled at creation).
    fn inert(name: &'static str) -> Self {
        Span { name, opened: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.opened {
            SPAN_STACK.with(|st| {
                let mut st = st.borrow_mut();
                debug_assert_eq!(st.last().copied(), Some(self.name), "unbalanced span stack");
                st.pop();
            });
            let dur_us = t0.elapsed().as_micros() as u64;
            emit(Phase::Close, self.name, dur_us, Vec::new());
        }
    }
}

/// Opens a span with no fields. Cost when disabled: one atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, Vec::new)
}

/// Opens a span whose fields are built lazily — `fields` only runs when
/// tracing is enabled, so the disabled path allocates nothing.
#[inline]
pub fn span_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> Span {
    if !enabled() {
        return Span::inert(name);
    }
    SPAN_STACK.with(|st| st.borrow_mut().push(name));
    emit(Phase::Open, name, 0, fields());
    Span {
        name,
        opened: Some(Instant::now()),
    }
}

/// Emits an instantaneous event; `fields` is built lazily as in
/// [`span_with`].
#[inline]
pub fn event_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
    if !enabled() {
        return;
    }
    emit(Phase::Instant, name, 0, fields());
}

/// Emits a discharge-provenance event: `mechanism` names which facility
/// answered the current sub-proof. The checker's mechanisms are
/// `"local_table"`, `"shared_table"`, `"baseline"`, `"coinduction"`,
/// `"arena_fast_match"`, and `"match_memo"`.
#[inline]
pub fn discharge(mechanism: &'static str) {
    event_with("discharge", || vec![s("mechanism", mechanism)]);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Number of log2 latency buckets; bucket `i` covers durations in
/// `[2^(i-1), 2^i)` µs (bucket 0 holds sub-microsecond samples).
pub const N_BUCKETS: usize = 40;

/// The five hot operations metered by the session registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `Conjunct::is_feasible` compute (memo misses only), µs.
    Feasibility,
    /// Mapping composition + simplification in the traversal, µs.
    Composition,
    /// Algebraic flattening of an operator family, µs.
    Flatten,
    /// Restricted multiset matching of flattened terms, µs.
    Match,
    /// DNF coalescing (conjunct dedup + subsumption) of a relation, µs.
    Simplify,
}

impl Metric {
    /// All metrics, in snapshot order.
    pub const ALL: [Metric; 5] = [
        Metric::Feasibility,
        Metric::Composition,
        Metric::Flatten,
        Metric::Match,
        Metric::Simplify,
    ];

    /// Stable snake_case name used in JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Feasibility => "feasibility",
            Metric::Composition => "composition",
            Metric::Flatten => "flatten",
            Metric::Match => "match",
            Metric::Simplify => "simplify",
        }
    }

    fn index(self) -> usize {
        match self {
            Metric::Feasibility => 0,
            Metric::Composition => 1,
            Metric::Flatten => 2,
            Metric::Match => 3,
            Metric::Simplify => 4,
        }
    }
}

struct Histo {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histo {
    fn record(&self, dur_us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(dur_us, Ordering::Relaxed);
        let idx = if dur_us == 0 {
            0
        } else {
            ((64 - dur_us.leading_zeros()) as usize).min(N_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// A process-wide registry of latency histograms, one per [`Metric`].
/// Designed to stay installed across queries so a long-lived session
/// accumulates aggregate behaviour.
#[derive(Default)]
pub struct Metrics {
    histos: [Histo; 5],
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one latency sample.
    pub fn record(&self, metric: Metric, dur_us: u64) {
        self.histos[metric.index()].record(dur_us);
    }

    /// Takes a consistent-enough snapshot (relaxed reads) of all metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: Metric::ALL
                .iter()
                .map(|m| {
                    let h = &self.histos[m.index()];
                    MetricSnapshot {
                        name: m.name(),
                        count: h.count.load(Ordering::Relaxed),
                        sum_us: h.sum_us.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

/// Snapshot of one metric's histogram.
pub struct MetricSnapshot {
    /// Stable metric name (snake_case).
    pub name: &'static str,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, µs.
    pub sum_us: u64,
    /// log2 bucket counts; bucket `i` covers `[2^(i-1), 2^i)` µs.
    pub buckets: Vec<u64>,
}

impl MetricSnapshot {
    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (e.g. 0.5, 0.99) from the log2 buckets,
    /// reported as the upper bound of the containing bucket in µs.
    pub fn approx_quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (N_BUCKETS - 1)
    }
}

/// Snapshot of the whole registry.
pub struct MetricsSnapshot {
    /// One entry per [`Metric`], in [`Metric::ALL`] order.
    pub metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a JSON object:
    /// `{"metrics":[{"name","unit":"us","count","sum_us","mean_us",
    /// "p50_us","p99_us","buckets":[[floor_us,count],...]},...]}`.
    /// Only non-empty buckets are listed, as `[bucket_floor_us, count]`
    /// pairs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"unit\":\"us\",\"count\":{},\"sum_us\":{},\
                 \"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[",
                m.name,
                m.count,
                m.sum_us,
                m.mean_us(),
                m.approx_quantile_us(0.5),
                m.approx_quantile_us(0.99)
            );
            let mut first = true;
            for (b, n) in m.buckets.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let floor = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let _ = write!(out, "[{floor},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Returns true iff a metrics registry is installed.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Installs `metrics` as the process-global registry (replacing any
/// previous one) and enables metering.
pub fn install_metrics(metrics: Arc<Metrics>) {
    *METRICS.write().unwrap() = Some(metrics);
    METRICS_ON.store(true, Ordering::SeqCst);
}

/// Disables metering and removes the registry, returning it.
pub fn uninstall_metrics() -> Option<Arc<Metrics>> {
    METRICS_ON.store(false, Ordering::SeqCst);
    METRICS.write().unwrap().take()
}

/// Starts a timing sample iff metering is on. Pair with
/// [`record_elapsed`]; the disabled path is a single atomic load.
#[inline]
pub fn metrics_timer() -> Option<Instant> {
    if metrics_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records the time elapsed since `t0` (from [`metrics_timer`]) under
/// `metric`. No-op when `t0` is `None` or the registry was uninstalled.
#[inline]
pub fn record_elapsed(metric: Metric, t0: Option<Instant>) {
    if let Some(t0) = t0 {
        let dur_us = t0.elapsed().as_micros() as u64;
        if let Some(m) = METRICS.read().unwrap().as_ref() {
            m.record(metric, dur_us);
        }
    }
}

/// A drop guard that records its lifetime under `metric` — the convenient
/// form of [`metrics_timer`]/[`record_elapsed`] for multi-return functions.
pub struct MetricGuard {
    metric: Metric,
    t0: Option<Instant>,
}

impl Drop for MetricGuard {
    fn drop(&mut self) {
        record_elapsed(self.metric, self.t0);
    }
}

/// Starts a [`MetricGuard`] for `metric`; a single atomic load when off.
#[inline]
pub fn metric_guard(metric: Metric) -> MetricGuard {
    MetricGuard {
        metric,
        t0: metrics_timer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace/metrics state is process-global; serialize the unit tests.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_lazy_fields() {
        let _g = LOCK.lock().unwrap();
        assert!(!enabled());
        let mut ran = false;
        let _span = span_with("x", || {
            ran = true;
            vec![]
        });
        drop(_span);
        assert!(!ran, "field closure must not run when disabled");
    }

    #[test]
    fn spans_balance_and_serialize() {
        let _g = LOCK.lock().unwrap();
        let c = Arc::new(Collector::new());
        install(c.clone());
        {
            let _outer = span_with("outer", || vec![s("k", "v\"q"), u("n", 7)]);
            let _inner = span("inner");
            event_with("mark", || vec![b("ok", true)]);
        }
        uninstall();
        let evs = c.events();
        assert_eq!(evs.len(), 5);
        let opens = evs.iter().filter(|e| e.phase == Phase::Open).count();
        let closes = evs.iter().filter(|e| e.phase == Phase::Close).count();
        assert_eq!(opens, closes);
        // Inner closes before outer (LIFO).
        assert_eq!(evs[3].name, "inner");
        assert_eq!(evs[4].name, "outer");
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.contains("\\\"q"), "string escaping in JSONL");
        let chrome = c.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"thread_name\""));
    }

    #[test]
    fn metrics_histogram_buckets() {
        let _g = LOCK.lock().unwrap();
        let m = Metrics::new();
        m.record(Metric::Feasibility, 0);
        m.record(Metric::Feasibility, 1);
        m.record(Metric::Feasibility, 3);
        m.record(Metric::Feasibility, 1000);
        let snap = m.snapshot();
        let f = &snap.metrics[0];
        assert_eq!(f.name, "feasibility");
        assert_eq!(f.count, 4);
        assert_eq!(f.sum_us, 1004);
        assert_eq!(f.buckets[0], 1); // 0 µs
        assert_eq!(f.buckets[1], 1); // 1 µs -> [1,2)
        assert_eq!(f.buckets[2], 1); // 3 µs -> [2,4)
        assert_eq!(f.buckets[10], 1); // 1000 µs -> [512,1024)
        assert!(f.approx_quantile_us(0.5) <= 2);
        let json = snap.to_json();
        assert!(json.contains("\"name\":\"feasibility\""));
        assert!(json.contains("\"count\":4"));
    }
}
