//! Human-facing proof-tree renderer for `--explain`.
//!
//! Reconstructs per-worker span trees from a [`Collector`]'s event stream
//! and renders one annotated node per checked output: its verdict, wall
//! time, which discharge mechanisms answered its sub-proofs, how much work
//! each traversal phase did, and — for incremental runs — whether the
//! baseline supplied the proof outright (clean outputs are skipped by the
//! checker and owe their verdict entirely to the previous run).

use crate::{Collector, Event, Field, Phase, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

/// An instant event detached from its span: `(name, fields)`.
type Instant = (&'static str, Vec<Field>);

/// The per-output accumulation list, in first-seen order.
type Outputs = Vec<(String, OutputInfo)>;

/// A reconstructed span-tree node.
#[derive(Debug, Default)]
struct Node {
    name: &'static str,
    fields: Vec<Field>,
    dur_us: u64,
    children: Vec<Node>,
    /// Instant events recorded while this span was the innermost open one.
    instants: Vec<Instant>,
}

fn field_str<'a>(fields: &'a [(&'static str, Value)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Value::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

fn field_bool(fields: &[(&'static str, Value)], key: &str) -> Option<bool> {
    fields.iter().find_map(|(k, v)| match v {
        Value::Bool(x) if *k == key => Some(*x),
        _ => None,
    })
}

/// Builds per-worker span forests plus the list of top-level instant
/// events (those emitted outside any span).
fn build_forest(events: &[Event]) -> (Vec<Node>, Vec<Instant>) {
    // Per-worker stack of open nodes; index 0 of each stack is a synthetic
    // root so instants outside spans have a place to land.
    let mut stacks: HashMap<u32, Vec<Node>> = HashMap::new();
    for ev in events {
        let stack = stacks
            .entry(ev.worker)
            .or_insert_with(|| vec![Node::default()]);
        match ev.phase {
            Phase::Open => stack.push(Node {
                name: ev.name,
                fields: ev.fields.clone(),
                ..Node::default()
            }),
            Phase::Close => {
                // Pop the innermost open span; tolerate imbalance.
                if stack.len() > 1 {
                    let mut node = stack.pop().unwrap();
                    node.dur_us = ev.dur_us;
                    stack.last_mut().unwrap().children.push(node);
                }
            }
            Phase::Instant => stack
                .last_mut()
                .unwrap()
                .instants
                .push((ev.name, ev.fields.clone())),
        }
    }
    let mut roots = Vec::new();
    let mut loose = Vec::new();
    let mut workers: Vec<u32> = stacks.keys().copied().collect();
    workers.sort_unstable();
    for w in workers {
        let mut stack = stacks.remove(&w).unwrap();
        // Fold any still-open spans (uninstalled mid-run) into their parent.
        while stack.len() > 1 {
            let node = stack.pop().unwrap();
            stack.last_mut().unwrap().children.push(node);
        }
        let synthetic = stack.pop().unwrap();
        roots.extend(synthetic.children);
        loose.extend(synthetic.instants);
    }
    (roots, loose)
}

/// Per-output aggregation accumulated over all spans belonging to it.
#[derive(Default)]
struct OutputInfo {
    order: usize,
    clean: bool,
    verdict: Option<bool>,
    total_us: u64,
    mechanisms: Vec<(&'static str, u64)>,
    phase_counts: Vec<(&'static str, u64, u64)>, // (name, count, total µs)
    definitions: Vec<(String, u64)>,             // (label, µs), pre-order
}

fn bump<'a>(list: &mut Vec<(&'a str, u64)>, key: &'a str) {
    if let Some(e) = list.iter_mut().find(|(k, _)| *k == key) {
        e.1 += 1;
    } else {
        list.push((key, 1));
    }
}

fn bump_phase(list: &mut Vec<(&'static str, u64, u64)>, key: &'static str, dur: u64) {
    if let Some(e) = list.iter_mut().find(|(k, _, _)| *k == key) {
        e.1 += 1;
        e.2 += dur;
    } else {
        list.push((key, 1, dur));
    }
}

/// Recursively aggregates `node`'s subtree into `info`. `depth` tracks
/// definition nesting for the rendered tree lines.
fn aggregate(node: &Node, info: &mut OutputInfo, depth: usize) {
    for (name, fields) in &node.instants {
        if *name == "discharge" {
            if let Some(m) = field_str(fields, "mechanism") {
                bump_mechanism(&mut info.mechanisms, m);
            }
        }
    }
    for child in &node.children {
        match child.name {
            "definition" => {
                let stmt = field_str(&child.fields, "statement").unwrap_or("?");
                let array = field_str(&child.fields, "array").unwrap_or("?");
                info.definitions.push((
                    format!("{}{} := {}", "  ".repeat(depth), array, stmt),
                    child.dur_us,
                ));
                aggregate(child, info, depth + 1);
            }
            _ => {
                bump_phase(&mut info.phase_counts, child.name, child.dur_us);
                aggregate(child, info, depth);
            }
        }
    }
}

/// Interns the mechanism name into a static display label so the
/// aggregation vectors can hold `&'static str`.
fn bump_mechanism(list: &mut Vec<(&'static str, u64)>, raw: &str) {
    let label: &'static str = match raw {
        "local_table" => "local table",
        "shared_table" => "shared table",
        "store" => "persistent store",
        "baseline" => "baseline",
        "coinduction" => "coinduction assumption",
        "arena_fast_match" => "arena fast-match",
        "match_memo" => "match memo",
        _ => "other",
    };
    bump(list, label);
}

fn fmt_us(us: u64) -> String {
    if us >= 1000 {
        format!("{:.2} ms", us as f64 / 1000.0)
    } else {
        format!("{us} µs")
    }
}

/// Renders the proof tree gathered in `collector` as human-readable text.
///
/// Every checked output gets a node annotated with its verdict, wall time,
/// and the discharge mechanisms that answered its sub-proofs; outputs
/// skipped as clean in an incremental run are credited to the baseline.
pub fn render(collector: &Collector) -> String {
    let events = collector.events();
    if events.is_empty() {
        return "explain: no trace events recorded\n".to_owned();
    }
    let (roots, loose) = build_forest(&events);

    // Gather outputs in first-appearance order across span roots and loose
    // instant events (clean-skip notices fire outside any span).
    let mut outputs: Outputs = Vec::new();
    let mut idx_of = |outputs: &mut Outputs, name: &str| -> usize {
        if let Some(i) = outputs.iter().position(|(n, _)| n == name) {
            i
        } else {
            let order = outputs.len();
            outputs.push((
                name.to_owned(),
                OutputInfo {
                    order,
                    ..OutputInfo::default()
                },
            ));
            outputs.len() - 1
        }
    };

    let mut visit_top = |outputs: &mut Outputs, node: &Node| {
        match node.name {
            "output" | "task" => {
                if let Some(name) = field_str(&node.fields, "output") {
                    let i = idx_of(outputs, name);
                    let info = &mut outputs[i].1;
                    info.total_us += node.dur_us;
                    aggregate(node, info, 0);
                    for (iname, ifields) in &node.instants {
                        if *iname == "output_verdict" {
                            if let Some(ok) = field_bool(ifields, "ok") {
                                info.verdict = Some(ok);
                            }
                        }
                    }
                }
            }
            _ => {
                // Session-level wrapper (e.g. a future "query" span): its
                // children may be output spans.
                for c in &node.children {
                    visit_top_inner(outputs, c, &mut idx_of);
                }
            }
        }
    };

    fn visit_top_inner(
        outputs: &mut Outputs,
        node: &Node,
        idx_of: &mut dyn FnMut(&mut Outputs, &str) -> usize,
    ) {
        if let ("output" | "task", Some(name)) = (node.name, field_str(&node.fields, "output")) {
            let i = idx_of(outputs, name);
            let info = &mut outputs[i].1;
            info.total_us += node.dur_us;
            aggregate(node, info, 0);
        } else {
            for c in &node.children {
                visit_top_inner(outputs, c, idx_of);
            }
        }
    }

    for node in &roots {
        visit_top(&mut outputs, node);
    }
    for (name, fields) in roots
        .iter()
        .flat_map(|n| n.instants.iter())
        .chain(loose.iter())
    {
        match *name {
            "output_clean" => {
                if let Some(out) = field_str(fields, "output") {
                    let i = idx_of(&mut outputs, out);
                    outputs[i].1.clean = true;
                }
            }
            "output_verdict" => {
                if let Some(out) = field_str(fields, "output") {
                    let i = idx_of(&mut outputs, out);
                    if let Some(ok) = field_bool(fields, "ok") {
                        outputs[i].1.verdict = Some(ok);
                    }
                }
            }
            _ => {}
        }
    }

    outputs.sort_by_key(|(_, info)| info.order);

    let mut out = String::new();
    let _ = writeln!(out, "proof tree ({} trace events)", events.len());
    for (name, info) in &outputs {
        if info.clean {
            let _ = writeln!(
                out,
                "output {name} — discharged by baseline (clean, proof carried over from previous run)"
            );
            continue;
        }
        let verdict = match info.verdict {
            Some(true) | None => "proved equivalent",
            Some(false) => "NOT EQUIVALENT",
        };
        let _ = writeln!(
            out,
            "output {name} — {verdict} in {}",
            fmt_us(info.total_us)
        );
        if info.mechanisms.is_empty() {
            let _ = writeln!(out, "  discharged via: direct proof (no cache assists)");
        } else {
            let mut parts: Vec<String> = info
                .mechanisms
                .iter()
                .map(|(m, n)| format!("{m} ×{n}"))
                .collect();
            parts.sort();
            let _ = writeln!(out, "  discharged via: {}", parts.join(", "));
        }
        if !info.phase_counts.is_empty() {
            let parts: Vec<String> = info
                .phase_counts
                .iter()
                .map(|(p, n, us)| format!("{p} ×{n} ({})", fmt_us(*us)))
                .collect();
            let _ = writeln!(out, "  work: {}", parts.join(" · "));
        }
        const MAX_DEFS: usize = 8;
        for (label, us) in info.definitions.iter().take(MAX_DEFS) {
            let _ = writeln!(out, "  └─ {} ({})", label, fmt_us(*us));
        }
        if info.definitions.len() > MAX_DEFS {
            let _ = writeln!(
                out,
                "  … {} more definition spans elided",
                info.definitions.len() - MAX_DEFS
            );
        }
    }
    if outputs.is_empty() {
        out.push_str("(no output spans recorded — was the checker invoked?)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{b, s, u, Event, Phase};

    fn ev(
        ts: u64,
        worker: u32,
        phase: Phase,
        name: &'static str,
        dur: u64,
        fields: Vec<(&'static str, crate::Value)>,
    ) -> Event {
        Event {
            ts_us: ts,
            worker,
            phase,
            name,
            dur_us: dur,
            fields,
        }
    }

    #[test]
    fn renders_outputs_with_mechanisms_and_clean() {
        let c = Collector::new();
        let evs = vec![
            ev(
                0,
                0,
                Phase::Instant,
                "output_clean",
                0,
                vec![s("output", "B")],
            ),
            ev(1, 0, Phase::Open, "output", 0, vec![s("output", "A")]),
            ev(
                2,
                0,
                Phase::Open,
                "definition",
                0,
                vec![s("array", "A"), s("statement", "s1")],
            ),
            ev(3, 0, Phase::Open, "compose", 0, vec![]),
            ev(4, 0, Phase::Close, "compose", 5, vec![]),
            ev(
                5,
                0,
                Phase::Instant,
                "discharge",
                0,
                vec![s("mechanism", "local_table")],
            ),
            ev(6, 0, Phase::Close, "definition", 20, vec![]),
            ev(
                7,
                0,
                Phase::Instant,
                "output_verdict",
                0,
                vec![s("output", "A"), b("ok", true)],
            ),
            ev(8, 0, Phase::Close, "output", 30, vec![u("n", 1)]),
        ];
        for e in evs {
            c.events.lock().unwrap().push(e);
        }
        let text = render(&c);
        assert!(text.contains("output A — proved equivalent"), "{text}");
        assert!(text.contains("local table ×1"), "{text}");
        assert!(text.contains("compose ×1"), "{text}");
        assert!(text.contains("A := s1"), "{text}");
        assert!(
            text.contains("output B — discharged by baseline (clean"),
            "{text}"
        );
    }
}
