//! # arrayeq-engine
//!
//! The persistent verification engine: a long-lived [`Verifier`] that
//! amortises work *across* equivalence queries, where the free functions of
//! `arrayeq-core` run one-shot.
//!
//! The DATE 2005 checker is presented as a single procedure, but a
//! verification service re-checks: the same pair after every refactoring
//! step, perturbed variants of a corpus, many pairs under one policy.  Those
//! queries overlap heavily — the same sub-ADDGs, the same composed
//! dependency mappings, the same feasibility questions — so the engine owns
//! two shared, sharded, lock-striped stores that outlive every call:
//!
//! * a **cross-query equivalence table** (keyed by content fingerprints of
//!   the traversal positions, [`arrayeq_addg::fingerprints`], plus the
//!   structural hashes of the output-current mappings) through which one
//!   query's established sub-proofs discharge another query's
//!   sub-traversals, across threads;
//! * a **shared feasibility memo** promoting `arrayeq-omega`'s thread-local
//!   Omega-test memo to session scope (installed around every query via
//!   [`arrayeq_omega::with_feasibility_cache`]).
//!
//! On top of the caches the engine enforces **budgets** — the work limit of
//! [`CheckOptions::max_work`], a wall-clock [`VerifierBuilder::deadline`]
//! and a cooperative [`CancelToken`] — every one of which surfaces as
//! [`Verdict::Inconclusive`] with a typed [`BudgetExhausted`] reason instead
//! of a hang, and offers [`Verifier::verify_batch`]: a worker pool fanning a
//! slice of requests across threads with deterministic result ordering.
//!
//! Witness extraction is an engine *option* ([`VerifierBuilder::witnesses`])
//! rather than a separate entry point: a `NotEquivalent` verdict comes back
//! with concrete, replay-confirmed counterexamples already attached.
//!
//! ```
//! use arrayeq_engine::{Verifier, VerifyRequest};
//! use arrayeq_lang::corpus::{FIG1_A, FIG1_C, FIG1_D};
//!
//! let verifier = Verifier::builder().witnesses(true).build();
//! let ok = verifier
//!     .verify(&VerifyRequest::source(FIG1_A, FIG1_C))
//!     .unwrap();
//! assert!(ok.report.is_equivalent());
//!
//! let bad = verifier
//!     .verify(&VerifyRequest::source(FIG1_A, FIG1_D))
//!     .unwrap();
//! assert!(!bad.report.is_equivalent());
//! assert!(bad.report.witnesses.iter().any(|w| w.confirmed));
//!
//! // The session remembers: re-checking reuses established sub-proofs.
//! let again = verifier
//!     .verify(&VerifyRequest::source(FIG1_A, FIG1_C))
//!     .unwrap();
//! assert!(again.report.stats.shared_table_hits > 0);
//! assert_eq!(verifier.session_stats().queries, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod json;
mod shared;
mod store;

pub use baseline::{
    baseline_to_json, incremental_outcome_to_json, options_fingerprint, Baseline,
    BaselineRejection, BaselineStatus, IncrementalOutcome, BASELINE_FORMAT,
};
pub use json::{
    hex64, outcome_to_json, parse_hex64, report_to_json, session_to_json, stats_from_json,
    stats_to_json, string as json_string, verdict_from_str, verdict_str, witness_to_json,
    JsonError, JsonValue,
};
pub use store::{ProofStore, StoreFlush, StoreWarning, StoreWarningKind, STORE_FORMAT};

/// Re-exported core vocabulary so engine users need only one import path.
pub use arrayeq_core::{
    BudgetExhausted, CancelToken, CheckOptions, CheckStats, Focus, Method, OperatorClass,
    OperatorProperties, Report, Verdict, Witness,
};
/// Re-exported witness tuning knobs ([`VerifierBuilder::witness_options`]).
pub use arrayeq_witness::WitnessOptions;

use arrayeq_addg::{extract, Addg};
use arrayeq_core::{
    verify_addgs_with, verify_addgs_with_fps, verify_programs_with, BaselineProofs, CheckContext,
    Result,
};
use arrayeq_lang::ast::Program;
use arrayeq_lang::classcheck::assert_in_class;
use arrayeq_lang::defuse::assert_def_use_correct;
use arrayeq_lang::parser::parse_program;
use arrayeq_omega::{with_feasibility_cache, FeasibilityCache};
use arrayeq_witness::extract_witnesses;
use shared::{ShardedEquivalenceTable, SharedFeasibilityMemo};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One verification query: a pair at any pipeline stage.
///
/// `Source` runs the full Fig. 6 flow (parse → class check → def-use check →
/// extraction → check); `Programs` skips parsing; `Addgs` goes straight to
/// the synchronized traversal.  Witness extraction needs programs to replay,
/// so `Addgs` requests never carry witnesses even when the engine has them
/// enabled.
#[derive(Debug, Clone)]
pub enum VerifyRequest {
    /// Two functions as source text.
    Source {
        /// The original program text.
        original: String,
        /// The transformed program text.
        transformed: String,
    },
    /// Two parsed programs.
    Programs {
        /// The original program.
        original: Box<Program>,
        /// The transformed program.
        transformed: Box<Program>,
    },
    /// Two extracted ADDGs.
    Addgs {
        /// The original program's graph.
        original: Box<Addg>,
        /// The transformed program's graph.
        transformed: Box<Addg>,
    },
}

impl VerifyRequest {
    /// A source-text request.
    pub fn source(original: impl Into<String>, transformed: impl Into<String>) -> Self {
        VerifyRequest::Source {
            original: original.into(),
            transformed: transformed.into(),
        }
    }

    /// A parsed-program request.
    pub fn programs(original: Program, transformed: Program) -> Self {
        VerifyRequest::Programs {
            original: Box::new(original),
            transformed: Box::new(transformed),
        }
    }

    /// An extracted-ADDG request.
    pub fn addgs(original: Addg, transformed: Addg) -> Self {
        VerifyRequest::Addgs {
            original: Box::new(original),
            transformed: Box::new(transformed),
        }
    }
}

/// Per-request overrides of the engine's budgets, consumed by
/// [`Verifier::verify_with_limits`] — what lets a daemon schedule requests
/// with different deadlines, work budgets and cancellation scopes on one
/// shared engine.
///
/// Every field is *budget-only*: none is verdict-relevant (all are excluded
/// from [`options_fingerprint`]), so overriding them per request is sound
/// against the shared caches and the proof store.  `None` inherits the
/// engine-wide setting.
#[derive(Debug, Clone, Default)]
pub struct RequestLimits {
    /// Wall-clock budget for this request (overrides
    /// [`VerifierBuilder::deadline`]).
    pub deadline: Option<Duration>,
    /// Traversal work budget for this request (overrides
    /// [`CheckOptions::max_work`]).
    pub max_work: Option<u64>,
    /// Witness extraction for this request (overrides
    /// [`VerifierBuilder::witnesses`]).
    pub witnesses: Option<bool>,
    /// Cancellation scope for this request.  When set, the engine-wide
    /// token is *not* polled — the caller owns this request's cancellation
    /// (the daemon registers one token per in-flight request so one
    /// client's cancel never touches another's).
    pub cancel: Option<CancelToken>,
}

/// The result of one engine query: the checker's [`Report`] (with witnesses
/// attached when enabled), the request's wall time and a snapshot of the
/// session counters *after* the request.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Verdict, diagnostics, witnesses and per-request work counters.
    pub report: Report,
    /// Total request wall time (parsing, extraction, check, witnesses) in
    /// microseconds.
    pub wall_time_us: u64,
    /// Cumulative session statistics, sampled when this request finished.
    pub session: SessionStats,
}

/// Cumulative counters of one [`Verifier`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests completed (including error outcomes).
    pub queries: u64,
    /// Requests that came back [`Verdict::Equivalent`].
    pub equivalent: u64,
    /// Requests that came back [`Verdict::NotEquivalent`].
    pub not_equivalent: u64,
    /// Requests that came back [`Verdict::Inconclusive`].
    pub inconclusive: u64,
    /// Requests that failed with a pipeline error.
    pub errors: u64,
    /// Entries currently held by the cross-query equivalence table.
    pub shared_table_entries: u64,
    /// Lookups into the cross-query equivalence table.
    pub shared_table_lookups: u64,
    /// Lookups answered by the cross-query equivalence table.
    pub shared_table_hits: u64,
    /// Entries currently held by the shared feasibility memo.
    pub feasibility_entries: u64,
    /// Feasibility queries answered by the shared memo.
    pub feasibility_hits: u64,
    /// Feasibility queries that had to run the Omega test.
    pub feasibility_misses: u64,
    /// Per-run tabling lookups, summed over all requests.
    pub table_lookups: u64,
    /// Per-run tabling hits, summed over all requests.
    pub table_hits: u64,
    /// Sub-problems discharged by entries loaded from the persistent proof
    /// store, summed over all requests (a subset of
    /// [`SessionStats::shared_table_hits`]).
    pub store_hits: u64,
    /// Equivalence entries loaded from the persistent proof store when the
    /// engine was built (0 without a store).
    pub store_eq_loaded: u64,
    /// Feasibility entries loaded from the persistent proof store when the
    /// engine was built (0 without a store).
    pub store_fs_loaded: u64,
    /// Total check time over all requests, microseconds.
    pub check_time_us: u64,
    /// Total witness-extraction time over all requests, microseconds.
    pub witness_time_us: u64,
}

impl SessionStats {
    /// Fraction of all tabling lookups answered from either cache level over
    /// the whole session (the cross-query reuse measure of the PR3
    /// experiment).
    pub fn combined_hit_rate(&self) -> f64 {
        if self.table_lookups == 0 {
            0.0
        } else {
            (self.table_hits + self.shared_table_hits) as f64 / self.table_lookups as f64
        }
    }
}

/// Configures and constructs a [`Verifier`].
#[derive(Debug, Clone)]
pub struct VerifierBuilder {
    options: CheckOptions,
    witness_options: WitnessOptions,
    witnesses: bool,
    deadline: Option<Duration>,
    workers: Option<usize>,
    shards: usize,
    table_capacity: usize,
    cancel: CancelToken,
    trace_sink: Option<Arc<arrayeq_trace::Collector>>,
    metrics: bool,
    store_dir: Option<PathBuf>,
}

impl Default for VerifierBuilder {
    fn default() -> Self {
        VerifierBuilder {
            options: CheckOptions::default(),
            witness_options: WitnessOptions::default(),
            witnesses: false,
            deadline: None,
            workers: None,
            shards: 64,
            table_capacity: 1 << 20,
            cancel: CancelToken::new(),
            trace_sink: None,
            metrics: false,
            store_dir: None,
        }
    }
}

impl VerifierBuilder {
    /// Replaces the checker options wholesale.
    ///
    /// The options are fixed for the engine's lifetime: the cross-query
    /// table's entries are only valid under the options that produced them,
    /// so they cannot change per request.
    pub fn options(mut self, options: CheckOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the basic or extended method (shorthand over [`Self::options`]).
    pub fn method(mut self, method: Method) -> Self {
        self.options.method = method;
        self
    }

    /// Sets the per-request traversal work budget.
    pub fn max_work(mut self, max_work: u64) -> Self {
        self.options.max_work = max_work;
        self
    }

    /// Declares symbolic parameters to promote in every request's programs
    /// (shorthand for [`CheckOptions::params`] via [`Self::options`]; the
    /// CLI surface `--param NAME>=MIN` maps here).  Verdict-relevant, so it
    /// participates in the baseline options fingerprint.
    pub fn params(mut self, params: Vec<(String, i64)>) -> Self {
        self.options.params = params;
        self
    }

    /// Replaces the operator property declarations wholesale (shorthand
    /// over [`Self::options`]).  Like every option, fixed for the engine's
    /// lifetime: the cross-query table's entries are only valid under the
    /// algebra that produced them.
    pub fn operators(mut self, operators: OperatorProperties) -> Self {
        self.options.operators = operators;
        self
    }

    /// Declares the algebraic class of a user function by name (e.g.
    /// `min`/`max` as [`OperatorClass::AC`]), enabling flattening and
    /// matching at its call nodes.  Repeatable; the CLI surface
    /// `--declare-op name=ac` maps here through
    /// [`OperatorProperties::declare_spec`].
    pub fn declare_call(mut self, name: impl Into<String>, class: OperatorClass) -> Self {
        self.options.operators = self.options.operators.clone().declare_call(name, class);
        self
    }

    /// Sets the *intra-query* worker count: every request's root obligation
    /// is sharded across outputs and independent correspondence sub-proofs
    /// and executed by a scoped worker pool of this width (shorthand for
    /// [`CheckOptions::jobs`] via [`Self::options`]).
    ///
    /// `1` (the default) keeps each request strictly sequential; `0` uses
    /// all available parallelism.  The workers of one request share this
    /// engine's cross-query equivalence table and feasibility cache, so
    /// sub-proofs established by one worker discharge identical obligations
    /// on the others mid-run.  Verdicts, diagnostics and witnesses are
    /// identical at every setting ([`Report::render_stable`] is
    /// byte-stable); the cache/work counters in [`CheckStats`] are
    /// scheduling-dependent once `jobs > 1`.
    ///
    /// Orthogonal to [`Self::workers`], which fans *across* the requests of
    /// one [`Verifier::verify_batch`] call: `workers` scales request
    /// throughput, `jobs` scales the latency of one large request.  The two
    /// multiply, so a batch of wide requests usually wants one of them at 1.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// Enables or disables witness extraction for `NotEquivalent` verdicts.
    pub fn witnesses(mut self, enabled: bool) -> Self {
        self.witnesses = enabled;
        self
    }

    /// Tunes witness extraction (implies nothing about [`Self::witnesses`]).
    pub fn witness_options(mut self, wopts: WitnessOptions) -> Self {
        self.witness_options = wopts;
        self
    }

    /// Sets a wall-clock budget applied to every request.  An overrun during
    /// the traversal yields [`Verdict::Inconclusive`] with
    /// [`BudgetExhausted::DeadlineExceeded`].  Witness extraction never
    /// *starts* past the deadline (the `NotEquivalent` verdict is returned
    /// without counterexamples); once started it runs to its own
    /// point/fill budgets ([`WitnessOptions`]), which bound it
    /// independently of the clock.
    pub fn deadline(mut self, per_request: Duration) -> Self {
        self.deadline = Some(per_request);
        self
    }

    /// Sets the worker-pool width for [`Verifier::verify_batch`] (defaults
    /// to the machine's available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the cancellation token polled by every request (defaults to a
    /// fresh token, retrievable via [`Verifier::cancel_token`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Sets the stripe count of the shared stores (rounded up to a power of
    /// two).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the entry capacity of each shared store.
    pub fn table_capacity(mut self, capacity: usize) -> Self {
        self.table_capacity = capacity.max(1);
        self
    }

    /// Installs `sink` as the *process-global* trace collector when the
    /// engine is built, enabling structured proof tracing (spans, discharge
    /// provenance) on every request.  Tracing is instrumentation-only: it
    /// never changes verdicts, diagnostics or [`Report::render_stable`].
    ///
    /// The sink is process state (trace emission sites live below the
    /// engine, down to the Omega layer), so it stays installed until
    /// [`arrayeq_trace::uninstall`] — typically called after the session to
    /// serialize the events.
    pub fn trace_sink(mut self, sink: Arc<arrayeq_trace::Collector>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Enables the session metrics registry: log2-bucket latency histograms
    /// for the four hot operations (feasibility, composition, flatten,
    /// match), aggregated across every query of this engine.  Snapshot via
    /// [`Verifier::metrics_snapshot`].
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Attaches a persistent on-disk proof store (see [`ProofStore`]).  At
    /// build time the store's entries seed the cross-query equivalence
    /// table and feasibility memo; [`Verifier::flush_store`] and
    /// [`Verifier::checkpoint_store`] persist the session's new sub-proofs
    /// back.  Problems inside the store files degrade to a cold start with
    /// typed warnings ([`Verifier::store_warnings`]) — they never change
    /// verdicts and never make [`VerifierBuilder::build`] fail.
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Constructs the engine.
    pub fn build(self) -> Verifier {
        if let Some(sink) = &self.trace_sink {
            arrayeq_trace::install(sink.clone());
        }
        let metrics = self.metrics.then(|| {
            let m = Arc::new(arrayeq_trace::Metrics::new());
            arrayeq_trace::install_metrics(m.clone());
            m
        });
        let table = Arc::new(ShardedEquivalenceTable::new(
            self.shards,
            self.table_capacity,
        ));
        let memo = Arc::new(SharedFeasibilityMemo::new(self.shards, self.table_capacity));
        let mut store_warnings = Vec::new();
        let store = self.store_dir.as_ref().and_then(|dir| {
            match ProofStore::open(dir, baseline::options_fingerprint(&self.options)) {
                Ok(s) => Some(Arc::new(s)),
                Err(e) => {
                    store_warnings.push(StoreWarning {
                        kind: StoreWarningKind::Io,
                        file: dir.display().to_string(),
                        message: format!("cannot open store directory ({e}); running without"),
                    });
                    None
                }
            }
        });
        let (mut store_eq_loaded, mut store_fs_loaded) = (0, 0);
        if let Some(s) = &store {
            store_warnings.extend(s.warnings().iter().cloned());
            for k in s.eq_entries() {
                table.seed(k);
            }
            for (k, f) in s.fs_entries() {
                memo.seed(k, f);
            }
            (store_eq_loaded, store_fs_loaded) = s.loaded_counts();
        }
        Verifier {
            table,
            memo,
            options: self.options,
            witness_options: self.witness_options,
            witnesses: self.witnesses,
            deadline: self.deadline,
            workers: self.workers,
            cancel: self.cancel,
            counters: Counters::default(),
            metrics,
            store,
            store_warnings,
            store_eq_loaded,
            store_fs_loaded,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    equivalent: AtomicU64,
    not_equivalent: AtomicU64,
    inconclusive: AtomicU64,
    errors: AtomicU64,
    table_lookups: AtomicU64,
    table_hits: AtomicU64,
    store_hits: AtomicU64,
    check_time_us: AtomicU64,
    witness_time_us: AtomicU64,
}

/// The persistent verification engine.  See the crate docs for the design;
/// construct via [`Verifier::builder`], share freely across threads (all
/// methods take `&self`).
pub struct Verifier {
    options: CheckOptions,
    witness_options: WitnessOptions,
    witnesses: bool,
    deadline: Option<Duration>,
    workers: Option<usize>,
    cancel: CancelToken,
    table: Arc<ShardedEquivalenceTable>,
    memo: Arc<SharedFeasibilityMemo>,
    counters: Counters,
    metrics: Option<Arc<arrayeq_trace::Metrics>>,
    store: Option<Arc<ProofStore>>,
    store_warnings: Vec<StoreWarning>,
    store_eq_loaded: usize,
    store_fs_loaded: usize,
}

impl Verifier {
    /// Starts configuring an engine.
    pub fn builder() -> VerifierBuilder {
        VerifierBuilder::default()
    }

    /// An engine with all defaults (extended method, no witnesses, no
    /// deadline).
    pub fn new() -> Verifier {
        Self::builder().build()
    }

    /// The checker options this engine runs every request with.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// The cancellation token observed by every request of this engine.
    /// Clone it, hand it to a supervisor, and [`CancelToken::cancel`] winds
    /// down every in-flight and future request with a typed
    /// [`BudgetExhausted::Cancelled`] outcome.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs one verification query.
    ///
    /// # Errors
    ///
    /// Propagates the pipeline errors of [`arrayeq_core::verify_source`]
    /// (parse/class/def-use failures, incomparable interfaces).
    /// Inequivalence and exhausted budgets are *verdicts*, not errors.
    pub fn verify(&self, request: &VerifyRequest) -> Result<Outcome> {
        self.verify_with_limits(request, &RequestLimits::default())
    }

    /// Runs one verification query under per-request overrides of the
    /// engine's budgets ([`RequestLimits`]) — the daemon's scheduling
    /// primitive.  Budgets are *not* verdict-relevant (they are excluded
    /// from [`options_fingerprint`]), so per-request overrides are sound
    /// against the shared caches and the proof store.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::verify`].
    pub fn verify_with_limits(
        &self,
        request: &VerifyRequest,
        limits: &RequestLimits,
    ) -> Result<Outcome> {
        let started = Instant::now();
        let memo: Arc<dyn FeasibilityCache> = self.memo.clone();
        let result = with_feasibility_cache(memo, || {
            let opts_override;
            let opts = match limits.max_work {
                Some(w) => {
                    opts_override = CheckOptions {
                        max_work: w,
                        ..self.options.clone()
                    };
                    &opts_override
                }
                None => &self.options,
            };
            let deadline = limits
                .deadline
                .or(self.deadline)
                .map(|d| Instant::now() + d);
            let cancel = limits.cancel.as_ref().unwrap_or(&self.cancel);
            let ctx = CheckContext {
                shared_table: Some(self.table.as_ref()),
                deadline,
                cancel: Some(cancel),
                baseline: None,
            };
            let witnesses = limits.witnesses.unwrap_or(self.witnesses);
            self.run_request_with(request, opts, &ctx, witnesses)
        });
        self.finish(result, started)
    }

    /// Books one finished request into the session counters and wraps the
    /// report into an [`Outcome`] — the shared tail of [`Verifier::verify`]
    /// and [`Verifier::verify_incremental`].
    fn finish(&self, result: Result<Report>, started: Instant) -> Result<Outcome> {
        let wall_time_us = started.elapsed().as_micros() as u64;
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(report) => {
                let bucket = match report.verdict {
                    Verdict::Equivalent => &self.counters.equivalent,
                    Verdict::NotEquivalent => &self.counters.not_equivalent,
                    Verdict::Inconclusive => &self.counters.inconclusive,
                };
                bucket.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .table_lookups
                    .fetch_add(report.stats.table_lookups, Ordering::Relaxed);
                self.counters
                    .table_hits
                    .fetch_add(report.stats.table_hits, Ordering::Relaxed);
                self.counters
                    .store_hits
                    .fetch_add(report.stats.store_hits, Ordering::Relaxed);
                self.counters
                    .check_time_us
                    .fetch_add(report.stats.check_time_us, Ordering::Relaxed);
                self.counters
                    .witness_time_us
                    .fetch_add(report.stats.witness_time_us, Ordering::Relaxed);
                Ok(Outcome {
                    report,
                    wall_time_us,
                    session: self.session_stats(),
                })
            }
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Verifies a pair given as source text (shorthand for
    /// [`Verifier::verify`] with a [`VerifyRequest::Source`]).
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::verify`].
    pub fn verify_source(&self, original: &str, transformed: &str) -> Result<Outcome> {
        self.verify(&VerifyRequest::source(original, transformed))
    }

    /// Fans a slice of requests across a worker pool and returns one result
    /// per request, **in request order** regardless of which worker finished
    /// first.  All workers share this engine's caches, so concurrent
    /// requests feed each other sub-proofs.
    pub fn verify_batch(&self, requests: &[VerifyRequest]) -> Vec<Result<Outcome>> {
        let workers = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(requests.len().max(1));
        if workers <= 1 || requests.len() <= 1 {
            return requests.iter().map(|r| self.verify(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Outcome>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    // Panic isolation: a query that unwinds poisons only its
                    // own slot (as a typed pipeline error); the worker keeps
                    // draining and every other request answers normally.
                    // Session caches stay trustworthy — entries are complete
                    // single-`put` facts, never partially published.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.verify(&requests[i])
                    }))
                    .unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".into());
                        Err(arrayeq_core::CoreError::ResourceLimit {
                            message: format!("verification worker panicked: {msg}"),
                        })
                    });
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every batch slot is filled by a worker")
            })
            .collect()
    }

    /// A snapshot of the session latency histograms, or `None` when the
    /// engine was built without [`VerifierBuilder::metrics`].
    pub fn metrics_snapshot(&self) -> Option<arrayeq_trace::MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// A snapshot of the cumulative session counters.
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            equivalent: self.counters.equivalent.load(Ordering::Relaxed),
            not_equivalent: self.counters.not_equivalent.load(Ordering::Relaxed),
            inconclusive: self.counters.inconclusive.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            shared_table_entries: self.table.entries() as u64,
            shared_table_lookups: self.table.lookups.load(Ordering::Relaxed),
            shared_table_hits: self.table.hits.load(Ordering::Relaxed),
            feasibility_entries: self.memo.entries() as u64,
            feasibility_hits: self.memo.hits.load(Ordering::Relaxed),
            feasibility_misses: self.memo.misses.load(Ordering::Relaxed),
            table_lookups: self.counters.table_lookups.load(Ordering::Relaxed),
            table_hits: self.counters.table_hits.load(Ordering::Relaxed),
            store_hits: self.counters.store_hits.load(Ordering::Relaxed),
            store_eq_loaded: self.store_eq_loaded as u64,
            store_fs_loaded: self.store_fs_loaded as u64,
            check_time_us: self.counters.check_time_us.load(Ordering::Relaxed),
            witness_time_us: self.counters.witness_time_us.load(Ordering::Relaxed),
        }
    }

    /// Runs the pipeline for one request with the shared caches wired in.
    fn run_request_with(
        &self,
        request: &VerifyRequest,
        opts: &CheckOptions,
        ctx: &CheckContext<'_>,
        witnesses: bool,
    ) -> Result<Report> {
        match request {
            VerifyRequest::Source {
                original,
                transformed,
            } => {
                let p1 = parse_program(original)?;
                let p2 = parse_program(transformed)?;
                self.check_programs_with(&p1, &p2, opts, ctx, witnesses)
            }
            VerifyRequest::Programs {
                original,
                transformed,
            } => self.check_programs_with(original, transformed, opts, ctx, witnesses),
            VerifyRequest::Addgs {
                original,
                transformed,
            } => verify_addgs_with(original, transformed, opts, ctx),
        }
    }

    fn check_programs_with(
        &self,
        original: &Program,
        transformed: &Program,
        opts: &CheckOptions,
        ctx: &CheckContext<'_>,
        witnesses: bool,
    ) -> Result<Report> {
        let mut report = verify_programs_with(original, transformed, opts, ctx)?;
        self.attach_witnesses_with(original, transformed, &mut report, ctx, witnesses)?;
        Ok(report)
    }

    /// [`Verifier::attach_witnesses_with`] at the engine's own witness
    /// setting — the incremental path's entry point.
    fn attach_witnesses(
        &self,
        original: &Program,
        transformed: &Program,
        report: &mut Report,
        ctx: &CheckContext<'_>,
    ) -> Result<()> {
        self.attach_witnesses_with(original, transformed, report, ctx, self.witnesses)
    }

    /// Attaches replay-confirmed counterexamples to a `NotEquivalent`
    /// report when witnesses are enabled.
    ///
    /// Witness extraction is bounded by its own point/fill budgets (see
    /// `WitnessOptions`), not by the traversal deadline — but a request
    /// whose wall-clock budget is already spent (or that was cancelled)
    /// must not start it: the NotEquivalent verdict stands, just without
    /// counterexamples attached.
    fn attach_witnesses_with(
        &self,
        original: &Program,
        transformed: &Program,
        report: &mut Report,
        ctx: &CheckContext<'_>,
        enabled: bool,
    ) -> Result<()> {
        let budget_left = !ctx.cancel.is_some_and(CancelToken::is_cancelled)
            && ctx
                .deadline
                .is_none_or(|deadline| Instant::now() < deadline);
        if enabled && budget_left && report.verdict == Verdict::NotEquivalent {
            let started = Instant::now();
            report.witnesses =
                extract_witnesses(original, transformed, report, &self.witness_options)?;
            report.stats.witness_time_us = started.elapsed().as_micros() as u64;
        }
        Ok(())
    }

    /// The fingerprint of this engine's verdict-relevant options — the
    /// compatibility key stamped into exported baselines and checked on
    /// import (see [`options_fingerprint`]).
    pub fn options_fingerprint(&self) -> u64 {
        baseline::options_fingerprint(&self.options)
    }

    /// Whether a persistent proof store is attached to this engine.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Typed warnings collected while opening the proof store (empty
    /// without a store, or when the store was clean).
    pub fn store_warnings(&self) -> &[StoreWarning] {
        &self.store_warnings
    }

    /// The attached store's current compaction epoch, when one is attached.
    pub fn store_epoch(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.epoch())
    }

    /// Persists the session's established sub-proofs (cross-query table and
    /// feasibility memo) to the attached store's append-only log, skipping
    /// entries already on disk.  `Ok(None)` without a store.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the store files.
    pub fn flush_store(&self) -> io::Result<Option<StoreFlush>> {
        match &self.store {
            None => Ok(None),
            Some(s) => s
                .flush(self.table.proven_entries(), self.memo.snapshot_entries())
                .map(Some),
        }
    }

    /// Compacts the attached store into a fresh snapshot carrying
    /// everything persisted so far plus the session's established
    /// sub-proofs, bumping the epoch and truncating the log.  Returns the
    /// new epoch; `Ok(None)` without a store or when the store's writes are
    /// disabled (options mismatch on disk).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the store files.
    pub fn checkpoint_store(&self) -> io::Result<Option<u64>> {
        match &self.store {
            None => Ok(None),
            Some(s) => s.checkpoint(self.table.proven_entries(), self.memo.snapshot_entries()),
        }
    }

    /// Exports a baseline for later incremental re-verification: this
    /// engine's options fingerprint, the per-output position fingerprints
    /// recorded in `report`, and every established (positive,
    /// assumption-free) sub-proof currently held by the session's
    /// cross-query table.
    ///
    /// The table is session-cumulative, so a baseline exported after many
    /// queries carries the union of their sub-proofs — sound, because every
    /// entry is content-keyed and means the same thing in any process.
    /// Pass the report of the run whose pair the baseline should describe;
    /// its output fingerprints gate the program-identity check on import.
    pub fn export_baseline(&self, report: &Report) -> String {
        let outputs: Vec<(String, u64, u64, Option<u64>)> = report
            .output_fingerprints
            .iter()
            .map(|(name, fa, fb)| {
                let dh = report
                    .output_domain_hashes
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, h)| *h);
                (name.clone(), *fa, *fb, dh)
            })
            .collect();
        baseline_to_json(
            self.options_fingerprint(),
            &outputs,
            &self.table.proven_entries(),
        )
    }

    /// Runs one verification query *incrementally* against a baseline
    /// exported by an earlier run ([`Verifier::export_baseline`]).
    ///
    /// The baseline is vetted first: a parse failure, an options-fingerprint
    /// mismatch or a different program interface rejects it with a typed
    /// [`BaselineRejection`] and the request degrades to a plain
    /// [`Verifier::verify`] — same verdict, just no reuse.  An accepted
    /// baseline is applied at two levels: outputs whose root obligations it
    /// already proves are classified **clean** and skipped entirely (the
    /// dirty-cone focus, [`CheckOptions::assume_clean`]), and inside the
    /// remaining dirty cone every sub-traversal consults the baseline's
    /// entries before the local and shared tables
    /// ([`arrayeq_core::BaselineProofs`]).
    ///
    /// Because baselines carry only positive assumption-free sub-proofs and
    /// failures always re-derive their full diagnostics, the resulting
    /// report's [`Report::render_stable`] is byte-identical to a
    /// from-scratch run on the same pair.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::verify`] — baseline problems are *statuses*, not
    /// errors.
    pub fn verify_incremental(
        &self,
        request: &VerifyRequest,
        baseline_json: &str,
    ) -> Result<IncrementalOutcome> {
        let parsed = match Baseline::parse(baseline_json) {
            Ok(b) => b,
            Err(message) => {
                return self.fall_back(request, BaselineRejection::Malformed { message })
            }
        };
        let expected = self.options_fingerprint();
        if parsed.options_fp != expected {
            return self.fall_back(
                request,
                BaselineRejection::OptionsMismatch {
                    expected,
                    found: parsed.options_fp,
                },
            );
        }
        let started = Instant::now();
        let memo: Arc<dyn FeasibilityCache> = self.memo.clone();
        let mut status = None;
        let result = with_feasibility_cache(memo, || {
            self.run_incremental(request, &parsed).map(|(report, s)| {
                status = Some(s);
                report
            })
        });
        let outcome = self.finish(result, started)?;
        Ok(IncrementalOutcome {
            outcome,
            baseline: status.expect("status recorded alongside every Ok report"),
        })
    }

    /// A rejected baseline degrades to a plain from-scratch request.
    fn fall_back(
        &self,
        request: &VerifyRequest,
        rejection: BaselineRejection,
    ) -> Result<IncrementalOutcome> {
        Ok(IncrementalOutcome {
            outcome: self.verify(request)?,
            baseline: BaselineStatus::Rejected(rejection),
        })
    }

    /// The incremental check body: stage the pipeline far enough to own the
    /// two graphs, classify outputs clean/dirty against the baseline, then
    /// run the ordinary traversal with the cone focus and the baseline
    /// proofs wired into the context.
    fn run_incremental(
        &self,
        request: &VerifyRequest,
        baseline: &Baseline,
    ) -> Result<(Report, BaselineStatus)> {
        // Mirror `run_request`'s stages so the incremental path surfaces the
        // same frontend errors: parse, class check, def-use check, extract.
        let parsed: Option<(Program, Program)> = match request {
            VerifyRequest::Source {
                original,
                transformed,
            } => Some((parse_program(original)?, parse_program(transformed)?)),
            _ => None,
        };
        let programs: Option<(&Program, &Program)> = match request {
            VerifyRequest::Source { .. } => parsed.as_ref().map(|(a, b)| (a, b)),
            VerifyRequest::Programs {
                original,
                transformed,
            } => Some((original.as_ref(), transformed.as_ref())),
            VerifyRequest::Addgs { .. } => None,
        };
        if let Some((p1, p2)) = programs {
            if self.options.check_class {
                assert_in_class(p1)?;
                assert_in_class(p2)?;
            }
            if self.options.check_def_use {
                assert_def_use_correct(p1)?;
                assert_def_use_correct(p2)?;
            }
        }
        let extracted: Option<(Addg, Addg)> = match programs {
            Some((p1, p2)) => Some((extract(p1)?, extract(p2)?)),
            None => None,
        };
        let (g1, g2): (&Addg, &Addg) = match (&extracted, request) {
            (Some((a, b)), _) => (a, b),
            (
                None,
                VerifyRequest::Addgs {
                    original,
                    transformed,
                },
            ) => (original, transformed),
            _ => unreachable!("programs were staged for every non-Addgs request"),
        };

        // Program-identity gate: a baseline recorded for a different output
        // interface proves nothing here and likely signals operator error
        // (wrong file), so reject it loudly rather than silently scoring
        // zero hits.
        let current: Vec<String> = g1.output_arrays().to_vec();
        let mut current_sorted = current.clone();
        current_sorted.sort();
        let mut recorded: Vec<String> = baseline.outputs.iter().map(|(n, ..)| n.clone()).collect();
        recorded.sort();
        if current_sorted != recorded {
            let ctx = CheckContext {
                shared_table: Some(self.table.as_ref()),
                deadline: self.deadline.map(|d| Instant::now() + d),
                cancel: Some(&self.cancel),
                baseline: None,
            };
            let mut report = verify_addgs_with(g1, g2, &self.options, &ctx)?;
            if let Some((p1, p2)) = programs {
                self.attach_witnesses(p1, p2, &mut report, &ctx)?;
            }
            let rejection = BaselineRejection::ProgramMismatch {
                expected: current_sorted,
                found: recorded,
            };
            return Ok((report, BaselineStatus::Rejected(rejection)));
        }

        // Classify: an output is clean iff its recorded fingerprints still
        // match this pair's (the content is untouched) AND the baseline
        // carries its *root obligation* — the entry published only when the
        // producing run proved the whole output.  Fingerprint equality alone
        // is not enough: outputs that FAILED in the producing run have
        // recorded fingerprints too, and skipping those would suppress
        // diagnostics.  The root key is reconstructed from the recorded
        // domain hash, so classification costs no Omega work — the whole
        // point of an incremental run is to beat the from-scratch wall time,
        // and per-output domain computations are a large fixed cost on wide
        // kernels.
        let fp = if self
            .options
            .focus
            .as_ref()
            .is_some_and(|f| !f.intermediate_pairs.is_empty())
        {
            arrayeq_addg::fingerprints_named
        } else {
            arrayeq_addg::fingerprints
        };
        let (fpa, fpb) = (fp(g1), fp(g2));
        let proofs = BaselineProofs::from_entries(baseline.entries.iter().copied());
        let clean: Vec<String> = current
            .iter()
            .filter(|output| {
                baseline
                    .outputs
                    .iter()
                    .find(|(n, ..)| n == *output)
                    .is_some_and(|(_, fa, fb, dh)| {
                        *fa == fpa.array(output)
                            && *fb == fpb.array(output)
                            && dh.is_some_and(|h| proofs.contains(&(*fa, *fb, h, h)))
                    })
            })
            .cloned()
            .collect();

        let opts = CheckOptions {
            assume_clean: clean.clone(),
            ..self.options.clone()
        };
        let ctx = CheckContext {
            shared_table: Some(self.table.as_ref()),
            deadline: self.deadline.map(|d| Instant::now() + d),
            cancel: Some(&self.cancel),
            baseline: Some(&proofs),
        };
        // The classification fingerprints are exactly the ones the traversal
        // would recompute (same per-options selection above) — hand them over
        // instead of paying the WL refinement twice.
        let mut report =
            verify_addgs_with_fps(g1, g2, &opts, &ctx, opts.tabling.then_some((fpa, fpb)))?;
        // Skipped-clean outputs were never traversed, so the run recorded no
        // domain hash for them; carry the baseline's recorded hashes forward
        // so a baseline exported from this run stays as complete as the
        // producing run's (chained incremental workflows).
        for output in &clean {
            if !report.output_domain_hashes.iter().any(|(n, _)| n == output) {
                if let Some((_, _, _, Some(h))) =
                    baseline.outputs.iter().find(|(n, ..)| n == output)
                {
                    report.output_domain_hashes.push((output.clone(), *h));
                }
            }
        }
        if let Some((p1, p2)) = programs {
            self.attach_witnesses(p1, p2, &mut report, &ctx)?;
        }
        let status = BaselineStatus::Applied {
            entries: proofs.len(),
            clean_outputs: clean,
        };
        Ok((report, status))
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D};

    #[test]
    fn one_shot_equivalence_and_witnesses() {
        let v = Verifier::builder().witnesses(true).build();
        let eq = v.verify_source(FIG1_A, FIG1_C).unwrap();
        assert!(eq.report.is_equivalent());
        assert!(eq.report.witnesses.is_empty());

        let neq = v.verify_source(FIG1_A, FIG1_D).unwrap();
        assert_eq!(neq.report.verdict, Verdict::NotEquivalent);
        assert!(neq.report.witnesses.iter().any(|w| w.confirmed));
        assert!(neq.report.stats.witness_time_us > 0);

        let s = v.session_stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.equivalent, 1);
        assert_eq!(s.not_equivalent, 1);
    }

    #[test]
    fn repeat_queries_hit_the_shared_caches() {
        let v = Verifier::new();
        let first = v.verify_source(FIG1_A, FIG1_C).unwrap();
        assert_eq!(first.report.stats.shared_table_hits, 0);
        assert!(first.report.stats.shared_table_inserts > 0);
        let second = v.verify_source(FIG1_A, FIG1_C).unwrap();
        assert!(second.report.stats.shared_table_hits > 0);
        let s = v.session_stats();
        assert!(s.shared_table_entries > 0);
        assert!(s.shared_table_hits > 0);
        // Same thread: repeats are absorbed by the thread-local memo level,
        // so the shared memo only records the first-sight misses here (the
        // cross-thread hits are proven by the concurrency integration test).
        assert!(s.feasibility_misses > 0, "shared memo engaged: {s:?}");
        assert!(s.feasibility_entries > 0);
        assert!(s.combined_hit_rate() > 0.0);
    }

    #[test]
    fn declared_operator_classes_reach_the_checker() {
        let src_a = "#define N 8\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = qmax(X[k], Y[k]); }";
        let src_b = "#define N 8\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) t1: C[k] = qmax(Y[k], X[k]); }";
        let plain = Verifier::new();
        assert_eq!(
            plain.verify_source(src_a, src_b).unwrap().report.verdict,
            Verdict::NotEquivalent,
            "undeclared calls are uninterpreted"
        );
        let declared = Verifier::builder()
            .declare_call("qmax", OperatorClass::AC)
            .build();
        assert!(declared
            .verify_source(src_a, src_b)
            .unwrap()
            .report
            .is_equivalent());
        let via_spec = Verifier::builder()
            .operators(
                OperatorProperties::default()
                    .declare_spec("qmax=ac")
                    .unwrap(),
            )
            .build();
        assert!(via_spec
            .verify_source(src_a, src_b)
            .unwrap()
            .report
            .is_equivalent());
    }

    #[test]
    fn batch_results_keep_request_order() {
        let v = Verifier::builder().workers(4).build();
        let reqs = vec![
            VerifyRequest::source(FIG1_A, FIG1_B),
            VerifyRequest::source(FIG1_A, FIG1_D),
            VerifyRequest::source(FIG1_B, FIG1_C),
            VerifyRequest::source(FIG1_A, "not a program"),
            VerifyRequest::source(FIG1_C, FIG1_A),
        ];
        let outcomes = v.verify_batch(&reqs);
        assert_eq!(outcomes.len(), 5);
        assert!(outcomes[0].as_ref().unwrap().report.is_equivalent());
        assert_eq!(
            outcomes[1].as_ref().unwrap().report.verdict,
            Verdict::NotEquivalent
        );
        assert!(outcomes[2].as_ref().unwrap().report.is_equivalent());
        assert!(outcomes[3].is_err(), "parse failure stays at its index");
        assert!(outcomes[4].as_ref().unwrap().report.is_equivalent());
        let s = v.session_stats();
        assert_eq!(s.queries, 5);
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn addg_requests_skip_witness_extraction() {
        use arrayeq_addg::extract;
        use arrayeq_lang::parser::parse_program;
        let g1 = extract(&parse_program(FIG1_A).unwrap()).unwrap();
        let g2 = extract(&parse_program(FIG1_D).unwrap()).unwrap();
        let v = Verifier::builder().witnesses(true).build();
        let out = v.verify(&VerifyRequest::addgs(g1, g2)).unwrap();
        assert_eq!(out.report.verdict, Verdict::NotEquivalent);
        assert!(out.report.witnesses.is_empty());
    }
}
