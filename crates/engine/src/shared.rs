//! The engine's shared, sharded, lock-striped caches.
//!
//! Both stores follow the same design: a power-of-two number of shards, each
//! a small mutex-guarded hash map, selected by mixing the (already
//! hash-shaped) key.  Contention is bounded by the stripe count rather than
//! a single global lock, and every shard enforces a capacity with the same
//! epoch-eviction policy the thread-local feasibility memo uses: when a
//! shard fills up it is cleared wholesale — cheap, and the working set of an
//! active session refills quickly.

use arrayeq_core::{SharedEquivalenceTable, SharedTableKey, TableProvenance};
use arrayeq_omega::FeasibilityCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Finalizing mix so consecutive or low-entropy keys spread over the shards.
fn spread(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 32;
    z.wrapping_mul(0xd6e8_feb8_6659_fd93)
}

/// A lock-striped map from 64-bit-hash-shaped keys to values.
struct Striped<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    mask: usize,
    cap_per_shard: usize,
}

impl<K: std::hash::Hash + Eq, V: Copy> Striped<K, V> {
    fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.next_power_of_two().max(1);
        Striped {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: shards - 1,
            cap_per_shard: (capacity / shards).max(16),
        }
    }

    fn shard(&self, spread_key: u64) -> &Mutex<HashMap<K, V>> {
        &self.shards[(spread_key as usize) & self.mask]
    }

    // Shard locks recover from poisoning: a worker thread unwinding while
    // holding one (possible only between complete map operations — entries
    // are single-`insert` facts, never partially published) must not wedge
    // or crash the surviving workers and later requests of the session.
    fn get(&self, spread_key: u64, key: &K) -> Option<V> {
        self.shard(spread_key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .copied()
    }

    fn put(&self, spread_key: u64, key: K, value: V) {
        let mut shard = self
            .shard(spread_key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if shard.len() >= self.cap_per_shard {
            shard.clear(); // epoch eviction, same policy as the omega memo
        }
        shard.insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }
}

impl<K: std::hash::Hash + Eq + Clone + Ord, V: Copy> Striped<K, V> {
    /// A point-in-time copy of every entry, in key order (deterministic
    /// regardless of shard layout or insertion interleaving).  Walks the
    /// shards one lock at a time; concurrent writers are not blocked
    /// globally, so the snapshot is per-shard consistent — exactly enough
    /// for baseline export, where entries are facts that never mutate.
    fn snapshot(&self) -> Vec<(K, V)> {
        let mut all: Vec<(K, V)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(guard.iter().map(|(k, v)| (k.clone(), *v)));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

/// The cross-query equivalence table shared by every query (and worker
/// thread) of one [`crate::Verifier`].
///
/// Each value carries a provenance bit: entries established by this
/// process's own queries are [`TableProvenance::Memory`]; entries seeded at
/// startup from a persistent [`crate::ProofStore`] are
/// [`TableProvenance::Store`], so the checker can report store-discharged
/// proofs separately from in-memory reuse.
pub(crate) struct ShardedEquivalenceTable {
    map: Striped<SharedTableKey, (bool, TableProvenance)>,
    pub(crate) lookups: AtomicU64,
    pub(crate) hits: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) seeded: AtomicU64,
}

impl ShardedEquivalenceTable {
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        ShardedEquivalenceTable {
            map: Striped::new(shards, capacity),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            seeded: AtomicU64::new(0),
        }
    }

    pub(crate) fn entries(&self) -> usize {
        self.map.len()
    }

    /// Seeds an entry loaded from a persistent proof store.  Stored entries
    /// are always positive assumption-free sub-proofs (the flush path writes
    /// only [`ShardedEquivalenceTable::proven_entries`]), so the value is
    /// `true` by construction; seeding bypasses the insert counter so
    /// session stats keep reporting only sub-proofs published by this
    /// process's own queries.
    pub(crate) fn seed(&self, key: SharedTableKey) {
        self.seeded.fetch_add(1, Ordering::Relaxed);
        self.map
            .put(table_spread(&key), key, (true, TableProvenance::Store));
    }

    /// Every *established* sub-proof currently held, in key order.  The
    /// checker only ever publishes positive, assumption-free sub-proofs
    /// here (see the [`SharedEquivalenceTable`] contract), so this is
    /// precisely the set of entries a baseline may carry; the filter is
    /// belt-and-braces against future negative caching.
    pub(crate) fn proven_entries(&self) -> Vec<SharedTableKey> {
        self.map
            .snapshot()
            .into_iter()
            .filter_map(|(k, (established, _))| established.then_some(k))
            .collect()
    }
}

fn table_spread(key: &SharedTableKey) -> u64 {
    spread(key.0 ^ key.1.rotate_left(17) ^ key.2.rotate_left(31) ^ key.3.rotate_left(47))
}

impl SharedEquivalenceTable for ShardedEquivalenceTable {
    fn get(&self, key: &SharedTableKey) -> Option<bool> {
        self.get_with_provenance(key).map(|(e, _)| e)
    }

    fn put(&self, key: SharedTableKey, established: bool) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.map.put(
            table_spread(&key),
            key,
            (established, TableProvenance::Memory),
        );
    }

    fn get_with_provenance(&self, key: &SharedTableKey) -> Option<(bool, TableProvenance)> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let found = self.map.get(table_spread(key), key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }
}

/// The cross-thread feasibility memo installed (via
/// [`arrayeq_omega::with_feasibility_cache`]) around every query, promoting
/// the per-thread memo of `omega` to session scope.
pub(crate) struct SharedFeasibilityMemo {
    map: Striped<u64, bool>,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
}

impl SharedFeasibilityMemo {
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        SharedFeasibilityMemo {
            map: Striped::new(shards, capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub(crate) fn entries(&self) -> usize {
        self.map.len()
    }

    /// Seeds an entry loaded from a persistent proof store without touching
    /// the hit/miss counters.  Feasibility keys are content hashes of the
    /// relation being tested, so persisted entries mean the same thing in
    /// every process.
    pub(crate) fn seed(&self, key: u64, feasible: bool) {
        self.map.put(spread(key), key, feasible);
    }

    /// A point-in-time copy of the memo in key order, for persisting.
    pub(crate) fn snapshot_entries(&self) -> Vec<(u64, bool)> {
        self.map.snapshot()
    }
}

impl FeasibilityCache for SharedFeasibilityMemo {
    fn get(&self, key: u64) -> Option<bool> {
        let found = self.map.get(spread(key), &key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: u64, feasible: bool) {
        self.map.put(spread(key), key, feasible);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_table_round_trips_and_counts() {
        let t = ShardedEquivalenceTable::new(8, 1024);
        let k = (1u64, 2u64, 3u64, 4u64);
        assert_eq!(t.get(&k), None);
        t.put(k, true);
        assert_eq!(t.get(&k), Some(true));
        assert_eq!(t.lookups.load(Ordering::Relaxed), 2);
        assert_eq!(t.hits.load(Ordering::Relaxed), 1);
        assert_eq!(t.inserts.load(Ordering::Relaxed), 1);
        assert_eq!(t.entries(), 1);
    }

    #[test]
    fn shard_capacity_evicts_by_epoch_instead_of_growing() {
        let t = SharedFeasibilityMemo::new(1, 16);
        for i in 0..200u64 {
            t.put(i, true);
        }
        assert!(t.entries() <= 16, "bounded: {}", t.entries());
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let m = SharedFeasibilityMemo::new(4, 256);
        assert_eq!(m.get(9), None);
        m.put(9, false);
        assert_eq!(m.get(9), Some(false));
        assert_eq!(m.hits.load(Ordering::Relaxed), 1);
        assert_eq!(m.misses.load(Ordering::Relaxed), 1);
    }
}
