//! Baseline export and import for incremental re-verification.
//!
//! A *baseline* is the persisted residue of an earlier verification run:
//! the proven, assumption-free sub-equivalence entries of the engine's
//! cross-query table (content-fingerprint keyed, so they mean the same
//! thing in any later process) plus the per-output position fingerprints of
//! the pair that produced them.  `arrayeq verify --emit-baseline out.json`
//! writes one; `--baseline out.json` feeds it back into
//! [`crate::Verifier::verify_incremental`], which classifies outputs
//! clean/dirty against it and re-checks only the dirty cone.
//!
//! Baselines are *proof carriers*, not caches of verdicts: every entry is a
//! positive sub-proof valid only under the [`CheckOptions`] that produced
//! it.  The header therefore carries an options fingerprint, and a baseline
//! whose fingerprint does not match the consuming engine — or that fails to
//! parse, or that belongs to a different program interface — is rejected
//! with a typed [`BaselineRejection`] and the run degrades to a clean
//! from-scratch check.  A rejected baseline can cost time; it can never
//! change a verdict.

use crate::json::{hex64, parse_hex64, string, JsonValue};
use arrayeq_core::{CheckOptions, SharedTableKey};
use arrayeq_omega::structural_hash_of;
use std::fmt;

/// Magic string identifying the baseline format (bumped on layout changes).
pub const BASELINE_FORMAT: &str = "arrayeq-baseline-v1";

/// A parsed baseline: options-fingerprint header, per-output position
/// fingerprints of the producing pair, and the proven entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Fingerprint of the verdict-relevant options the entries were proven
    /// under (see [`options_fingerprint`]).
    pub options_fp: u64,
    /// `(output name, original-side fingerprint, transformed-side
    /// fingerprint, domain hash)` of the producing run, in its output
    /// order.  The domain hash is the structural hash of the identity
    /// relation on the output's defined elements, recorded by the producing
    /// run; together with the two fingerprints it reconstructs the output's
    /// root tabling key, so the consumer classifies clean outputs without
    /// re-running the Omega domain computation.  `None` when the producing
    /// run never reached the output's traversal (domain mismatch, skipped) —
    /// such an output can never be classified clean.
    pub outputs: Vec<(String, u64, u64, Option<u64>)>,
    /// The proven sub-proof entries (positive and assumption-free by the
    /// shared-table publishing contract).
    pub entries: Vec<SharedTableKey>,
}

impl Baseline {
    /// Parses a baseline document produced by [`baseline_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural problem
    /// (parse failure, wrong format marker, missing or mistyped member) —
    /// the payload of [`BaselineRejection::Malformed`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let format = v
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or("missing `format` member")?;
        if format != BASELINE_FORMAT {
            return Err(format!(
                "unknown baseline format `{format}` (expected `{BASELINE_FORMAT}`)"
            ));
        }
        let options_fp = v
            .get("options_fp")
            .and_then(parse_hex64)
            .ok_or("missing or malformed `options_fp`")?;
        let mut outputs = Vec::new();
        for o in v
            .get("outputs")
            .and_then(JsonValue::as_array)
            .ok_or("missing `outputs` array")?
        {
            let name = o
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("output entry without `name`")?;
            let fa = o
                .get("original_fp")
                .and_then(parse_hex64)
                .ok_or("output entry without `original_fp`")?;
            let fb = o
                .get("transformed_fp")
                .and_then(parse_hex64)
                .ok_or("output entry without `transformed_fp`")?;
            let dh = match o.get("domain_h") {
                None => None,
                Some(raw) => {
                    Some(parse_hex64(raw).ok_or("output entry with malformed `domain_h`")?)
                }
            };
            outputs.push((name.to_owned(), fa, fb, dh));
        }
        let mut entries = Vec::new();
        for e in v
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("missing `entries` array")?
        {
            let parts = e.as_array().ok_or("entry is not an array")?;
            if parts.len() != 4 {
                return Err(format!("entry has {} components, expected 4", parts.len()));
            }
            let mut key = [0u64; 4];
            for (slot, part) in key.iter_mut().zip(parts) {
                *slot = parse_hex64(part).ok_or("malformed entry component")?;
            }
            entries.push((key[0], key[1], key[2], key[3]));
        }
        Ok(Baseline {
            options_fp,
            outputs,
            entries,
        })
    }
}

/// Renders a baseline document: format marker, options fingerprint,
/// per-output fingerprints and the proven entries (all fingerprints as
/// fixed-width hex strings — they use the full u64 range).
pub fn baseline_to_json(
    options_fp: u64,
    outputs: &[(String, u64, u64, Option<u64>)],
    entries: &[SharedTableKey],
) -> String {
    let outputs: Vec<String> = outputs
        .iter()
        .map(|(name, fa, fb, dh)| {
            let domain = match dh {
                Some(h) => format!(",\"domain_h\":{}", hex64(*h)),
                None => String::new(),
            };
            format!(
                "{{\"name\":{},\"original_fp\":{},\"transformed_fp\":{}{}}}",
                string(name),
                hex64(*fa),
                hex64(*fb),
                domain,
            )
        })
        .collect();
    let entries: Vec<String> = entries
        .iter()
        .map(|(a, b, c, d)| format!("[{},{},{},{}]", hex64(*a), hex64(*b), hex64(*c), hex64(*d)))
        .collect();
    format!(
        concat!(
            "{{\"format\":{},\"options_fp\":{},\n",
            "\"outputs\":[{}],\n",
            "\"entries\":[{}]}}\n"
        ),
        string(BASELINE_FORMAT),
        hex64(options_fp),
        outputs.join(","),
        entries.join(",\n"),
    )
}

/// Fingerprints the *verdict-relevant* subset of [`CheckOptions`]: method,
/// operator algebra, tabling keying scheme and focus — everything under
/// which a sub-proof entry is (in)valid.  Budgets (`max_work`), parallelism
/// (`jobs`) and the cone focus itself (`assume_clean`) are deliberately
/// excluded: they change how much work a run does, never which sub-proofs
/// hold, so a baseline stays consumable across budget and jobs settings.
pub fn options_fingerprint(opts: &CheckOptions) -> u64 {
    let mut canonical = format!(
        concat!(
            "method={:?};operators={:?};tabling={};string_table_keys={};",
            "position_table_keys={};focus={:?};check_def_use={};check_class={}"
        ),
        opts.method,
        opts.operators,
        opts.tabling,
        opts.string_table_keys,
        opts.position_table_keys,
        opts.focus,
        opts.check_def_use,
        opts.check_class,
    );
    // Parameter promotion changes what is being proven (a sub-proof at
    // `N = 1024` says nothing about symbolic `N`), so it invalidates
    // baselines.  Appended conditionally to keep existing param-free
    // fingerprints — and the baselines stamped with them — stable.
    if !opts.params.is_empty() {
        canonical.push_str(&format!(";params={:?}", opts.params));
    }
    structural_hash_of(&("baseline-options-v1", canonical))
}

/// Why a supplied baseline was not consulted.  Every variant degrades the
/// run to a clean from-scratch check — a rejection is a warning, never a
/// verdict change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineRejection {
    /// The baseline was produced under different verdict-relevant options.
    OptionsMismatch {
        /// Fingerprint of this engine's options.
        expected: u64,
        /// Fingerprint recorded in the baseline header.
        found: u64,
    },
    /// The baseline document is truncated, corrupted or structurally wrong.
    Malformed {
        /// Description of the first structural problem.
        message: String,
    },
    /// The baseline belongs to a program with a different output interface.
    ProgramMismatch {
        /// Output arrays of the current request.
        expected: Vec<String>,
        /// Output arrays recorded in the baseline.
        found: Vec<String>,
    },
}

impl BaselineRejection {
    /// Stable machine-readable slug for JSON output.
    pub fn slug(&self) -> &'static str {
        match self {
            BaselineRejection::OptionsMismatch { .. } => "options_mismatch",
            BaselineRejection::Malformed { .. } => "malformed",
            BaselineRejection::ProgramMismatch { .. } => "program_mismatch",
        }
    }
}

impl fmt::Display for BaselineRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineRejection::OptionsMismatch { expected, found } => write!(
                f,
                "baseline was produced under different options \
                 (engine {expected:016x}, baseline {found:016x}); running from scratch"
            ),
            BaselineRejection::Malformed { message } => {
                write!(f, "baseline unusable ({message}); running from scratch")
            }
            BaselineRejection::ProgramMismatch { expected, found } => write!(
                f,
                "baseline belongs to a different program (outputs [{}] vs [{}]); \
                 running from scratch",
                found.join(", "),
                expected.join(", "),
            ),
        }
    }
}

/// How the baseline fared on one incremental request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineStatus {
    /// The baseline was consulted; the listed outputs were classified clean
    /// and skipped.
    Applied {
        /// Proven entries carried by the baseline.
        entries: usize,
        /// Outputs whose root obligations the baseline proved.
        clean_outputs: Vec<String>,
    },
    /// The baseline was rejected; the run was a plain from-scratch check.
    Rejected(BaselineRejection),
}

/// The result of [`crate::Verifier::verify_incremental`]: the ordinary
/// [`crate::Outcome`] plus what happened to the supplied baseline.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// Verdict, report and session snapshot — same contract as
    /// [`crate::Verifier::verify`]; byte-identical stable rendering to a
    /// from-scratch run on the same pair.
    pub outcome: crate::Outcome,
    /// Whether the baseline was applied or rejected (and why).
    pub baseline: BaselineStatus,
}

/// Renders an [`IncrementalOutcome`]: the ordinary outcome document plus a
/// `baseline` member carrying the applied/rejected status.
pub fn incremental_outcome_to_json(o: &IncrementalOutcome) -> String {
    let status = match &o.baseline {
        BaselineStatus::Applied {
            entries,
            clean_outputs,
        } => {
            let outputs: Vec<String> = clean_outputs.iter().map(|s| string(s)).collect();
            format!(
                "{{\"status\":\"applied\",\"entries\":{},\"clean_outputs\":[{}]}}",
                entries,
                outputs.join(","),
            )
        }
        BaselineStatus::Rejected(rejection) => format!(
            "{{\"status\":\"rejected\",\"reason\":{},\"message\":{}}}",
            string(rejection.slug()),
            string(&rejection.to_string()),
        ),
    };
    format!(
        "{{\"report\":{},\"wall_time_us\":{},\"session\":{},\"baseline\":{}}}",
        crate::report_to_json(&o.outcome.report),
        o.outcome.wall_time_us,
        crate::session_to_json(&o.outcome.session),
        status,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_json() {
        let outputs = vec![
            ("C".to_owned(), 0xdead_beef_0123_4567, u64::MAX, Some(9)),
            ("D".to_owned(), 1, 2, None),
        ];
        let entries = vec![(1, 2, 3, 4), (u64::MAX, 0, 7, u64::MAX - 1)];
        let text = baseline_to_json(0x1234_5678_9abc_def0, &outputs, &entries);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.options_fp, 0x1234_5678_9abc_def0);
        assert_eq!(parsed.outputs, outputs);
        assert_eq!(parsed.entries, entries);
    }

    #[test]
    fn malformed_baselines_report_the_problem() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{}").unwrap_err().contains("format"));
        let wrong = baseline_to_json(1, &[], &[]).replace(BASELINE_FORMAT, "other-format");
        assert!(Baseline::parse(&wrong)
            .unwrap_err()
            .contains("other-format"));
        // Truncation lands in the JSON parser.
        let full = baseline_to_json(1, &[("C".into(), 2, 3, Some(4))], &[(1, 2, 3, 4)]);
        let truncated = &full[..full.len() / 2];
        assert!(Baseline::parse(truncated).is_err());
    }

    #[test]
    fn options_fingerprint_tracks_verdict_relevant_options_only() {
        let base = CheckOptions::default();
        let same_proofs = CheckOptions {
            max_work: 42,
            jobs: 8,
            assume_clean: vec!["C".into()],
            ..CheckOptions::default()
        };
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&same_proofs)
        );
        let different = CheckOptions::basic();
        assert_ne!(options_fingerprint(&base), options_fingerprint(&different));
        let keyed = CheckOptions::default().with_string_table_keys();
        assert_ne!(options_fingerprint(&base), options_fingerprint(&keyed));
        // Parameter promotion changes what is proven, so it must re-key.
        let parametric = CheckOptions::default().with_params(vec![("N".into(), 1)]);
        assert_ne!(options_fingerprint(&base), options_fingerprint(&parametric));
        let wider = CheckOptions::default().with_params(vec![("N".into(), 16)]);
        assert_ne!(
            options_fingerprint(&parametric),
            options_fingerprint(&wider)
        );
    }
}
