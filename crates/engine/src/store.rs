//! The persistent on-disk proof store behind `arrayeq serve` and
//! `arrayeq verify --store`.
//!
//! A store is a directory holding two JSON-lines files:
//!
//! * `snapshot.jsonl` — a compacted snapshot of every persisted entry,
//!   rewritten wholesale on checkpoint (atomically, via temp file + rename);
//! * `log.jsonl` — an append-only log of entries persisted since the last
//!   checkpoint.
//!
//! Both files open with a header line carrying the format marker, the
//! store's *epoch* (bumped on every compaction so a stale log from another
//! compaction generation is never mixed in) and the options fingerprint of
//! the producing engine ([`crate::options_fingerprint`] — the PR 6 guard:
//! sub-proofs are only valid under the same verdict-relevant options).
//! Every entry line ends with a per-line integrity hash over its payload,
//! and the snapshot closes with a footer recording the entry count, so bit
//! flips and truncation are both detected.
//!
//! Entries are the engine's cross-query facts: proven sub-equivalences
//! (`SharedTableKey`s — rename-invariant content fingerprints, so they mean
//! the same thing in every process, program and machine) and feasibility
//! memo entries (content hashes of the relation tested).  Only positive,
//! assumption-free sub-proofs ever reach the shared table, so the store
//! inherits the same soundness contract as baselines: a loaded entry
//! discharges a sub-traversal with exactly the verdict a from-scratch run
//! would re-derive, failures always re-derive their diagnostics, and
//! rendered reports stay byte-identical.
//!
//! **Degradation policy:** a store that is corrupt, truncated, from another
//! format version, epoch or options set degrades to a cold start (for the
//! affected file) with a typed [`StoreWarning`] — never a changed verdict,
//! never a crash.  A torn log tail keeps its integrity-valid prefix.  A
//! store produced under *different options* additionally disables writing,
//! so a misdirected `--store` flag can never mix incompatible sub-proofs
//! into somebody else's store.

use crate::json::{hex64, parse_hex64, string, JsonValue};
use arrayeq_core::SharedTableKey;
use arrayeq_omega::structural_hash_of;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic string identifying the store format (bumped on layout changes).
pub const STORE_FORMAT: &str = "arrayeq-store-v1";

/// Auto-compaction threshold: a flush that would leave more than this many
/// entry lines in the log compacts into a fresh snapshot instead.
const COMPACT_LOG_LINES: usize = 8192;

/// Fault-injection hook: `ARRAYEQ_STORE_FSYNC_DELAY_MS` sleeps this many
/// milliseconds between writing store bytes and making them durable, widening
/// the window in which a `SIGKILL` lands mid-flush so the crash-recovery
/// tests can hit it deterministically.  Unset, empty or unparsable means no
/// delay; the env var is re-read on every flush so a long-lived daemon can
/// be driven from the outside.
fn fsync_delay() {
    if let Some(ms) = std::env::var("ARRAYEQ_STORE_FSYNC_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
    {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Why (part of) a store was ignored at load time.  Every variant degrades
/// to a cold start for the affected file — a warning, never a verdict
/// change or a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreWarningKind {
    /// A header or entry line failed to parse or its integrity hash did not
    /// match (bit flip, partial write, hand editing).
    Corrupt,
    /// The file ends mid-entry or the snapshot footer is missing or
    /// inconsistent; for a log the integrity-valid prefix was kept.
    Truncated,
    /// The file carries an unknown format marker or kind.
    FormatMismatch,
    /// The file was produced under different verdict-relevant options;
    /// writing is disabled too, so incompatible sub-proofs are never mixed.
    OptionsMismatch,
    /// The log belongs to a different compaction generation than the
    /// snapshot.
    EpochMismatch,
    /// The file exists but could not be read.
    Io,
}

/// A typed warning emitted while opening a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreWarning {
    /// What went wrong.
    pub kind: StoreWarningKind,
    /// File the problem was found in (`snapshot.jsonl` or `log.jsonl`).
    pub file: String,
    /// Human-readable description of the first problem found.
    pub message: String,
}

impl StoreWarning {
    /// Stable machine-readable slug for JSON output.
    pub fn slug(&self) -> &'static str {
        match self.kind {
            StoreWarningKind::Corrupt => "corrupt",
            StoreWarningKind::Truncated => "truncated",
            StoreWarningKind::FormatMismatch => "format_mismatch",
            StoreWarningKind::OptionsMismatch => "options_mismatch",
            StoreWarningKind::EpochMismatch => "epoch_mismatch",
            StoreWarningKind::Io => "io",
        }
    }
}

impl fmt::Display for StoreWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proof store {}: {}", self.file, self.message)
    }
}

/// What one [`ProofStore::flush`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFlush {
    /// Equivalence entries newly persisted by this flush.
    pub appended_eq: usize,
    /// Feasibility entries newly persisted by this flush.
    pub appended_fs: usize,
    /// Whether the flush compacted into a fresh snapshot (epoch bump).
    pub compacted: bool,
    /// Whether the flush was skipped because writing is disabled (the store
    /// on disk belongs to a different options set).
    pub disabled: bool,
}

/// Everything loaded from / persisted to one store directory.
struct StoreState {
    /// Entries already durable on disk (snapshot ∪ valid log prefix).
    eq: HashSet<SharedTableKey>,
    fs: HashMap<u64, bool>,
    /// Entry lines currently in the log file.
    log_lines: usize,
    /// Current compaction generation.
    epoch: u64,
    /// The log had a torn tail (or other damage) at open; the next flush
    /// compacts instead of appending, which rewrites both files cleanly.
    needs_rewrite: bool,
}

/// A persistent store of assumption-free sub-proof entries, shared by the
/// daemon and the one-shot CLI (see the module docs for format and
/// soundness).  All methods take `&self`; the store is safe to share behind
/// an `Arc` across the engine's worker threads.
pub struct ProofStore {
    dir: PathBuf,
    options_fp: u64,
    writes_enabled: bool,
    warnings: Vec<StoreWarning>,
    state: Mutex<StoreState>,
    /// Entry counts as loaded at open time (before any flush).
    loaded_eq: usize,
    loaded_fs: usize,
}

impl ProofStore {
    /// Opens (creating if necessary) the store directory and loads every
    /// valid entry.
    ///
    /// Problems inside the files degrade to a cold start with typed
    /// [`StoreWarning`]s (see [`ProofStore::warnings`]); only failure to
    /// create or access the directory itself is a hard error.
    pub fn open(dir: &Path, options_fp: u64) -> io::Result<ProofStore> {
        fs::create_dir_all(dir)?;
        let mut warnings = Vec::new();
        let mut writes_enabled = true;

        let snap_path = dir.join("snapshot.jsonl");
        let log_path = dir.join("log.jsonl");

        let mut eq = HashSet::new();
        let mut fs_entries = HashMap::new();
        let mut epoch = 0u64;
        let mut needs_rewrite = false;

        // Snapshot: all-or-nothing.  Its entries were written in one
        // compaction, so a single bad line means the write (or the disk)
        // cannot be trusted and the whole file is ignored.
        let mut snapshot_epoch = None;
        match read_optional(&snap_path) {
            Err(e) => warnings.push(StoreWarning {
                kind: StoreWarningKind::Io,
                file: "snapshot.jsonl".into(),
                message: format!("unreadable ({e}); ignoring file"),
            }),
            Ok(None) => {}
            Ok(Some(text)) => match parse_snapshot(&text, options_fp) {
                Ok(loaded) => {
                    snapshot_epoch = Some(loaded.epoch);
                    epoch = loaded.epoch;
                    eq.extend(loaded.eq);
                    fs_entries.extend(loaded.fs);
                }
                Err(w) => {
                    if w.kind == StoreWarningKind::OptionsMismatch
                        || w.kind == StoreWarningKind::FormatMismatch
                    {
                        writes_enabled = false;
                    }
                    warnings.push(w);
                }
            },
        }

        // Log: prefix-valid.  Entries are appended one at a time, so a torn
        // tail invalidates only the lines from the first bad one on.
        match read_optional(&log_path) {
            Err(e) => warnings.push(StoreWarning {
                kind: StoreWarningKind::Io,
                file: "log.jsonl".into(),
                message: format!("unreadable ({e}); ignoring file"),
            }),
            Ok(None) => {}
            Ok(Some(text)) => {
                let parsed = parse_log(&text, options_fp, snapshot_epoch);
                if let Some(w) = parsed.warning {
                    if w.kind == StoreWarningKind::OptionsMismatch
                        || w.kind == StoreWarningKind::FormatMismatch
                    {
                        writes_enabled = false;
                    }
                    needs_rewrite = true;
                    warnings.push(w);
                }
                if let Some(log_epoch) = parsed.epoch {
                    // With no valid snapshot the log's generation is the
                    // store's generation.
                    if snapshot_epoch.is_none() {
                        epoch = log_epoch;
                    }
                }
                eq.extend(parsed.eq);
                fs_entries.extend(parsed.fs);
            }
        }

        let loaded_eq = eq.len();
        let loaded_fs = fs_entries.len();
        let log_lines = 0; // recounted below from what survived
        let mut state = StoreState {
            eq,
            fs: fs_entries,
            log_lines,
            epoch,
            needs_rewrite,
        };
        // Conservative: treat every surviving entry as log-resident when a
        // log file exists; the only consequence is a slightly earlier
        // auto-compaction.
        if log_path.exists() {
            state.log_lines = loaded_eq + loaded_fs;
        }

        Ok(ProofStore {
            dir: dir.to_path_buf(),
            options_fp,
            writes_enabled,
            warnings,
            state: Mutex::new(state),
            loaded_eq,
            loaded_fs,
        })
    }

    /// Typed warnings collected while opening the store (empty for a clean
    /// or brand-new store).
    pub fn warnings(&self) -> &[StoreWarning] {
        &self.warnings
    }

    /// Whether flush/checkpoint will write (false when the on-disk store
    /// belongs to a different options set or format).
    pub fn writes_enabled(&self) -> bool {
        self.writes_enabled
    }

    /// Equivalence entries loaded at open time, for seeding a shared table.
    pub fn eq_entries(&self) -> Vec<SharedTableKey> {
        let mut v: Vec<_> = self.state.lock().unwrap().eq.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Feasibility entries loaded at open time, for seeding the memo.
    pub fn fs_entries(&self) -> Vec<(u64, bool)> {
        let mut v: Vec<_> = self
            .state
            .lock()
            .unwrap()
            .fs
            .iter()
            .map(|(k, f)| (*k, *f))
            .collect();
        v.sort_unstable();
        v
    }

    /// `(equivalence, feasibility)` entry counts as loaded at open time.
    pub fn loaded_counts(&self) -> (usize, usize) {
        (self.loaded_eq, self.loaded_fs)
    }

    /// Current compaction generation.
    pub fn epoch(&self) -> u64 {
        self.state.lock().unwrap().epoch
    }

    /// Persists any of the given entries not yet on disk, appending to the
    /// log (or compacting into a fresh snapshot when the log has grown past
    /// the auto-compaction threshold or was damaged at open).
    pub fn flush(
        &self,
        eq: impl IntoIterator<Item = SharedTableKey>,
        fs_entries: impl IntoIterator<Item = (u64, bool)>,
    ) -> io::Result<StoreFlush> {
        if !self.writes_enabled {
            return Ok(StoreFlush {
                disabled: true,
                ..StoreFlush::default()
            });
        }
        let mut state = self.state.lock().unwrap();
        let mut new_eq: Vec<SharedTableKey> =
            eq.into_iter().filter(|k| !state.eq.contains(k)).collect();
        let mut new_fs: Vec<(u64, bool)> = fs_entries
            .into_iter()
            .filter(|(k, _)| !state.fs.contains_key(k))
            .collect();
        new_eq.sort_unstable();
        new_eq.dedup();
        new_fs.sort_unstable();
        new_fs.dedup_by_key(|(k, _)| *k);

        if new_eq.is_empty() && new_fs.is_empty() && !state.needs_rewrite {
            return Ok(StoreFlush::default());
        }

        let appended = new_eq.len() + new_fs.len();
        let compact = state.needs_rewrite || state.log_lines + appended > COMPACT_LOG_LINES;
        if compact {
            for k in &new_eq {
                state.eq.insert(*k);
            }
            for (k, f) in &new_fs {
                state.fs.insert(*k, *f);
            }
            self.write_snapshot(&mut state)?;
        } else {
            self.append_log(&mut state, &new_eq, &new_fs)?;
            for k in &new_eq {
                state.eq.insert(*k);
            }
            for (k, f) in &new_fs {
                state.fs.insert(*k, *f);
            }
        }
        Ok(StoreFlush {
            appended_eq: new_eq.len(),
            appended_fs: new_fs.len(),
            compacted: compact,
            disabled: false,
        })
    }

    /// Compacts everything (persisted ∪ given entries) into a fresh
    /// snapshot, bumps the epoch and truncates the log.  Returns the new
    /// epoch, or `None` when writing is disabled.
    pub fn checkpoint(
        &self,
        eq: impl IntoIterator<Item = SharedTableKey>,
        fs_entries: impl IntoIterator<Item = (u64, bool)>,
    ) -> io::Result<Option<u64>> {
        if !self.writes_enabled {
            return Ok(None);
        }
        let mut state = self.state.lock().unwrap();
        state.eq.extend(eq);
        for (k, f) in fs_entries {
            state.fs.entry(k).or_insert(f);
        }
        self.write_snapshot(&mut state)?;
        Ok(Some(state.epoch))
    }

    /// Writes a fresh snapshot of everything in `state` (epoch + 1),
    /// atomically via temp file + rename, then drops the log.
    fn write_snapshot(&self, state: &mut StoreState) -> io::Result<()> {
        let epoch = state.epoch + 1;
        let mut eq: Vec<_> = state.eq.iter().copied().collect();
        eq.sort_unstable();
        let mut fs_entries: Vec<_> = state.fs.iter().map(|(k, f)| (*k, *f)).collect();
        fs_entries.sort_unstable();

        let mut text = String::new();
        text.push_str(&header_line("snapshot", epoch, self.options_fp));
        text.push('\n');
        for k in &eq {
            text.push_str(&eq_line(k));
            text.push('\n');
        }
        for (k, f) in &fs_entries {
            text.push_str(&fs_line(*k, *f));
            text.push('\n');
        }
        let count = (eq.len() + fs_entries.len()) as u64;
        text.push_str(&end_line(count));
        text.push('\n');

        let tmp = self.dir.join("snapshot.jsonl.tmp");
        let final_path = self.dir.join("snapshot.jsonl");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            fsync_delay();
            // The tmp file must be durable *before* the rename publishes it:
            // a crash after an un-synced rename could otherwise leave the
            // final name pointing at garbage — the one corruption the
            // snapshot's all-or-nothing load cannot distinguish from a
            // legitimate full file.
            file.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Make the rename itself durable.  Directory fsync is best-effort:
        // not every filesystem supports opening a directory for sync, and a
        // failure here only narrows durability, never correctness.
        if let Ok(dir) = fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        let log_path = self.dir.join("log.jsonl");
        if log_path.exists() {
            fs::remove_file(&log_path)?;
        }
        state.epoch = epoch;
        state.log_lines = 0;
        state.needs_rewrite = false;
        Ok(())
    }

    /// Appends entry lines to the log, creating it (with a header at the
    /// current epoch) when absent.
    fn append_log(
        &self,
        state: &mut StoreState,
        new_eq: &[SharedTableKey],
        new_fs: &[(u64, bool)],
    ) -> io::Result<()> {
        let log_path = self.dir.join("log.jsonl");
        let mut text = String::new();
        if !log_path.exists() {
            text.push_str(&header_line("log", state.epoch, self.options_fp));
            text.push('\n');
        }
        for k in new_eq {
            text.push_str(&eq_line(k));
            text.push('\n');
        }
        for (k, f) in new_fs {
            text.push_str(&fs_line(*k, *f));
            text.push('\n');
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        file.write_all(text.as_bytes())?;
        fsync_delay();
        // An unsynced append can tear or vanish on power loss.  The format
        // tolerates a torn *tail* (prefix-valid parse), so syncing here caps
        // the damage a crash can do at exactly the entries of the flush in
        // flight — never a previously acknowledged one.
        file.sync_all()?;
        state.log_lines += new_eq.len() + new_fs.len();
        Ok(())
    }
}

/// Reads a file that may legitimately not exist yet.
fn read_optional(path: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Line formats.  Every entry line is a JSON array whose last element is the
// integrity hash (fixed-width hex) of the payload before it.

fn header_line(kind: &str, epoch: u64, options_fp: u64) -> String {
    format!(
        "{{\"format\":{},\"kind\":{},\"epoch\":{},\"options_fp\":{}}}",
        string(STORE_FORMAT),
        string(kind),
        epoch,
        hex64(options_fp),
    )
}

fn eq_line_sum(k: &SharedTableKey) -> u64 {
    structural_hash_of(&("store-line-v1", "eq", k.0, k.1, k.2, k.3))
}

fn fs_line_sum(key: u64, feasible: bool) -> u64 {
    structural_hash_of(&("store-line-v1", "fs", key, feasible))
}

fn end_line_sum(count: u64) -> u64 {
    structural_hash_of(&("store-line-v1", "end", count))
}

fn eq_line(k: &SharedTableKey) -> String {
    format!(
        "[\"eq\",{},{},{},{},{}]",
        hex64(k.0),
        hex64(k.1),
        hex64(k.2),
        hex64(k.3),
        hex64(eq_line_sum(k)),
    )
}

fn fs_line(key: u64, feasible: bool) -> String {
    format!(
        "[\"fs\",{},{},{}]",
        hex64(key),
        feasible,
        hex64(fs_line_sum(key, feasible)),
    )
}

fn end_line(count: u64) -> String {
    format!("[\"end\",{},{}]", count, hex64(end_line_sum(count)))
}

/// What one entry line carried.
enum Entry {
    Eq(SharedTableKey),
    Fs(u64, bool),
    End(u64),
}

/// Parses one entry line, validating its integrity hash.
fn parse_entry(line: &str) -> Result<Entry, String> {
    let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
    let parts = v.as_array().ok_or("entry is not an array")?;
    let tag = parts
        .first()
        .and_then(JsonValue::as_str)
        .ok_or("entry without tag")?;
    match tag {
        "eq" => {
            if parts.len() != 6 {
                return Err(format!("eq entry has {} components", parts.len()));
            }
            let mut key = [0u64; 4];
            for (slot, part) in key.iter_mut().zip(&parts[1..5]) {
                *slot = parse_hex64(part).ok_or("malformed eq component")?;
            }
            let key = (key[0], key[1], key[2], key[3]);
            let sum = parse_hex64(&parts[5]).ok_or("malformed eq checksum")?;
            if sum != eq_line_sum(&key) {
                return Err("eq entry integrity hash mismatch".into());
            }
            Ok(Entry::Eq(key))
        }
        "fs" => {
            if parts.len() != 4 {
                return Err(format!("fs entry has {} components", parts.len()));
            }
            let key = parse_hex64(&parts[1]).ok_or("malformed fs key")?;
            let feasible = parts[2].as_bool().ok_or("malformed fs value")?;
            let sum = parse_hex64(&parts[3]).ok_or("malformed fs checksum")?;
            if sum != fs_line_sum(key, feasible) {
                return Err("fs entry integrity hash mismatch".into());
            }
            Ok(Entry::Fs(key, feasible))
        }
        "end" => {
            if parts.len() != 3 {
                return Err(format!("end entry has {} components", parts.len()));
            }
            let count = parts[1].as_i64().ok_or("malformed end count")? as u64;
            let sum = parse_hex64(&parts[2]).ok_or("malformed end checksum")?;
            if sum != end_line_sum(count) {
                return Err("end entry integrity hash mismatch".into());
            }
            Ok(Entry::End(count))
        }
        other => Err(format!("unknown entry tag `{other}`")),
    }
}

/// Parses a header line, checking format, kind and options fingerprint.
fn parse_header(
    line: &str,
    expected_kind: &str,
    options_fp: u64,
    file: &str,
) -> Result<u64, StoreWarning> {
    let warn = |kind, message: String| StoreWarning {
        kind,
        file: file.into(),
        message,
    };
    let v = JsonValue::parse(line).map_err(|e| {
        warn(
            StoreWarningKind::Corrupt,
            format!("header unreadable ({e}); ignoring file"),
        )
    })?;
    let format = v.get("format").and_then(JsonValue::as_str).ok_or_else(|| {
        warn(
            StoreWarningKind::Corrupt,
            "header without `format`; ignoring file".into(),
        )
    })?;
    if format != STORE_FORMAT {
        return Err(warn(
            StoreWarningKind::FormatMismatch,
            format!("unknown format `{format}` (expected `{STORE_FORMAT}`); ignoring file"),
        ));
    }
    let kind = v.get("kind").and_then(JsonValue::as_str).ok_or_else(|| {
        warn(
            StoreWarningKind::Corrupt,
            "header without `kind`; ignoring file".into(),
        )
    })?;
    if kind != expected_kind {
        return Err(warn(
            StoreWarningKind::FormatMismatch,
            format!("header kind `{kind}` (expected `{expected_kind}`); ignoring file"),
        ));
    }
    let found_fp = v.get("options_fp").and_then(parse_hex64).ok_or_else(|| {
        warn(
            StoreWarningKind::Corrupt,
            "header without `options_fp`; ignoring file".into(),
        )
    })?;
    if found_fp != options_fp {
        return Err(warn(
            StoreWarningKind::OptionsMismatch,
            format!(
                "produced under different options (engine {options_fp:016x}, \
                 store {found_fp:016x}); ignoring file and disabling writes"
            ),
        ));
    }
    let epoch = v.get("epoch").and_then(JsonValue::as_i64).ok_or_else(|| {
        warn(
            StoreWarningKind::Corrupt,
            "header without `epoch`; ignoring file".into(),
        )
    })?;
    Ok(epoch as u64)
}

struct LoadedSnapshot {
    epoch: u64,
    eq: Vec<SharedTableKey>,
    fs: Vec<(u64, bool)>,
}

/// Parses a snapshot file.  All-or-nothing: any problem drops the whole
/// file with a typed warning.
fn parse_snapshot(text: &str, options_fp: u64) -> Result<LoadedSnapshot, StoreWarning> {
    let file = "snapshot.jsonl";
    let warn = |kind, message: String| StoreWarning {
        kind,
        file: file.into(),
        message,
    };
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| warn(StoreWarningKind::Truncated, "empty file".into()))?;
    let epoch = parse_header(header, "snapshot", options_fp, file)?;
    let mut eq = Vec::new();
    let mut fs_entries = Vec::new();
    let mut footer_count = None;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        if footer_count.is_some() {
            return Err(warn(
                StoreWarningKind::Corrupt,
                format!("data after footer at line {}; ignoring file", i + 2),
            ));
        }
        match parse_entry(line) {
            Ok(Entry::Eq(k)) => eq.push(k),
            Ok(Entry::Fs(k, f)) => fs_entries.push((k, f)),
            Ok(Entry::End(count)) => footer_count = Some(count),
            Err(e) => {
                return Err(warn(
                    StoreWarningKind::Corrupt,
                    format!("line {}: {e}; ignoring file", i + 2),
                ));
            }
        }
    }
    let count = footer_count.ok_or_else(|| {
        warn(
            StoreWarningKind::Truncated,
            "missing footer (file truncated?); ignoring file".into(),
        )
    })?;
    if count != (eq.len() + fs_entries.len()) as u64 {
        return Err(warn(
            StoreWarningKind::Truncated,
            format!(
                "footer records {count} entries but {} present; ignoring file",
                eq.len() + fs_entries.len()
            ),
        ));
    }
    Ok(LoadedSnapshot {
        epoch,
        eq,
        fs: fs_entries,
    })
}

struct LoadedLog {
    epoch: Option<u64>,
    eq: Vec<SharedTableKey>,
    fs: Vec<(u64, bool)>,
    warning: Option<StoreWarning>,
}

/// Parses a log file.  Prefix-valid: the first bad line truncates the rest
/// with a typed warning; header problems drop the whole file.
fn parse_log(text: &str, options_fp: u64, snapshot_epoch: Option<u64>) -> LoadedLog {
    let file = "log.jsonl";
    let empty = |warning| LoadedLog {
        epoch: None,
        eq: Vec::new(),
        fs: Vec::new(),
        warning,
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return empty(Some(StoreWarning {
            kind: StoreWarningKind::Truncated,
            file: file.into(),
            message: "empty file".into(),
        }));
    };
    let epoch = match parse_header(header, "log", options_fp, file) {
        Ok(e) => e,
        Err(w) => return empty(Some(w)),
    };
    if let Some(snap_epoch) = snapshot_epoch {
        if epoch != snap_epoch {
            return empty(Some(StoreWarning {
                kind: StoreWarningKind::EpochMismatch,
                file: file.into(),
                message: format!(
                    "log epoch {epoch} does not match snapshot epoch {snap_epoch}; \
                     ignoring file"
                ),
            }));
        }
    }
    let mut eq = Vec::new();
    let mut fs_entries = Vec::new();
    let mut warning = None;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_entry(line) {
            Ok(Entry::Eq(k)) => eq.push(k),
            Ok(Entry::Fs(k, f)) => fs_entries.push((k, f)),
            Ok(Entry::End(_)) => {
                warning = Some(StoreWarning {
                    kind: StoreWarningKind::Corrupt,
                    file: file.into(),
                    message: format!("unexpected footer at line {}; keeping prefix", i + 2),
                });
                break;
            }
            Err(e) => {
                warning = Some(StoreWarning {
                    kind: StoreWarningKind::Truncated,
                    file: file.into(),
                    message: format!(
                        "line {}: {e}; keeping {} valid entries",
                        i + 2,
                        eq.len() + fs_entries.len()
                    ),
                });
                break;
            }
        }
    }
    LoadedLog {
        epoch: Some(epoch),
        eq,
        fs: fs_entries,
        warning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arrayeq-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_through_log_and_snapshot() {
        let dir = tmp_dir("roundtrip");
        let store = ProofStore::open(&dir, 7).unwrap();
        assert!(store.warnings().is_empty());
        assert_eq!(store.loaded_counts(), (0, 0));
        let flush = store
            .flush(
                vec![(1, 2, 3, 4), (5, 6, 7, 8)],
                vec![(9, true), (10, false)],
            )
            .unwrap();
        assert_eq!((flush.appended_eq, flush.appended_fs), (2, 2));
        assert!(!flush.compacted);

        // Reopen: everything loads from the log.
        let store2 = ProofStore::open(&dir, 7).unwrap();
        assert!(store2.warnings().is_empty());
        assert_eq!(store2.loaded_counts(), (2, 2));
        assert_eq!(store2.eq_entries(), vec![(1, 2, 3, 4), (5, 6, 7, 8)]);
        assert_eq!(store2.fs_entries(), vec![(9, true), (10, false)]);

        // A second flush of the same entries is a no-op.
        let again = store2.flush(vec![(1, 2, 3, 4)], vec![(9, true)]).unwrap();
        assert_eq!(again, StoreFlush::default());

        // Checkpoint compacts and bumps the epoch; the log disappears.
        let epoch = store2
            .checkpoint(vec![(11, 12, 13, 14)], Vec::new())
            .unwrap();
        assert_eq!(epoch, Some(1));
        assert!(!dir.join("log.jsonl").exists());
        let store3 = ProofStore::open(&dir, 7).unwrap();
        assert!(store3.warnings().is_empty());
        assert_eq!(store3.loaded_counts(), (3, 2));
        assert_eq!(store3.epoch(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_mismatch_degrades_cold_and_disables_writes() {
        let dir = tmp_dir("optmismatch");
        let store = ProofStore::open(&dir, 7).unwrap();
        store.flush(vec![(1, 2, 3, 4)], Vec::new()).unwrap();
        let before = fs::read_to_string(dir.join("log.jsonl")).unwrap();

        let other = ProofStore::open(&dir, 8).unwrap();
        assert_eq!(other.loaded_counts(), (0, 0));
        assert!(!other.writes_enabled());
        assert_eq!(other.warnings().len(), 1);
        assert_eq!(other.warnings()[0].kind, StoreWarningKind::OptionsMismatch);
        let flush = other.flush(vec![(9, 9, 9, 9)], Vec::new()).unwrap();
        assert!(flush.disabled);
        assert_eq!(other.checkpoint(Vec::new(), Vec::new()).unwrap(), None);
        // The foreign store was left byte-identical.
        assert_eq!(fs::read_to_string(dir.join("log.jsonl")).unwrap(), before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_keeps_valid_prefix() {
        let dir = tmp_dir("tornlog");
        let store = ProofStore::open(&dir, 7).unwrap();
        store
            .flush(vec![(1, 2, 3, 4), (5, 6, 7, 8)], vec![(9, true)])
            .unwrap();
        let log = dir.join("log.jsonl");
        let text = fs::read_to_string(&log).unwrap();
        // Drop the second half of the last line: a torn append.
        let cut = text.trim_end().len() - 10;
        fs::write(&log, &text[..cut]).unwrap();

        let store2 = ProofStore::open(&dir, 7).unwrap();
        assert_eq!(store2.warnings().len(), 1);
        assert_eq!(store2.warnings()[0].kind, StoreWarningKind::Truncated);
        let (eq, fs_count) = store2.loaded_counts();
        assert_eq!(eq + fs_count, 2, "prefix of 2 of the 3 entries survives");
        // The next flush heals the store by compacting.
        let flush = store2.flush(vec![(21, 22, 23, 24)], Vec::new()).unwrap();
        assert!(flush.compacted);
        let store3 = ProofStore::open(&dir, 7).unwrap();
        assert!(store3.warnings().is_empty());
        assert_eq!(store3.loaded_counts().0, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_snapshot_is_dropped_with_typed_warning() {
        let dir = tmp_dir("bitflip");
        let store = ProofStore::open(&dir, 7).unwrap();
        store
            .checkpoint(vec![(1, 2, 3, 4), (5, 6, 7, 8)], vec![(9, false)])
            .unwrap();
        let snap = dir.join("snapshot.jsonl");
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();

        let store2 = ProofStore::open(&dir, 7).unwrap();
        assert_eq!(store2.loaded_counts(), (0, 0), "cold start");
        assert_eq!(store2.warnings().len(), 1);
        assert!(matches!(
            store2.warnings()[0].kind,
            StoreWarningKind::Corrupt | StoreWarningKind::Truncated
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_format_is_a_typed_warning() {
        let dir = tmp_dir("format");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("snapshot.jsonl"),
            "{\"format\":\"arrayeq-store-v999\",\"kind\":\"snapshot\",\"epoch\":0,\"options_fp\":\"0000000000000007\"}\n",
        )
        .unwrap();
        let store = ProofStore::open(&dir, 7).unwrap();
        assert_eq!(store.warnings().len(), 1);
        assert_eq!(store.warnings()[0].kind, StoreWarningKind::FormatMismatch);
        assert!(!store.writes_enabled());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_log_epoch_is_ignored() {
        let dir = tmp_dir("epoch");
        let store = ProofStore::open(&dir, 7).unwrap();
        store.checkpoint(vec![(1, 2, 3, 4)], Vec::new()).unwrap();
        // Forge a log from a previous generation (epoch 0; snapshot is 1).
        let mut text = header_line("log", 0, 7);
        text.push('\n');
        text.push_str(&eq_line(&(5, 6, 7, 8)));
        text.push('\n');
        fs::write(dir.join("log.jsonl"), text).unwrap();

        let store2 = ProofStore::open(&dir, 7).unwrap();
        assert_eq!(store2.loaded_counts(), (1, 0), "stale log ignored");
        assert_eq!(store2.warnings().len(), 1);
        assert_eq!(store2.warnings()[0].kind, StoreWarningKind::EpochMismatch);
        let _ = fs::remove_dir_all(&dir);
    }
}
