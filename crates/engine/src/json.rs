//! Hand-rolled JSON rendering and parsing for engine results.
//!
//! The build environment has no crates.io access, so there is no `serde`;
//! this module renders [`Report`]s, [`CheckStats`], [`Witness`]es and
//! [`SessionStats`] to plain JSON text and provides a small recursive-descent
//! parser ([`JsonValue::parse`]) so the CLI's output can be consumed — and
//! round-trip-tested — without external dependencies.

use crate::{Outcome, SessionStats};
use arrayeq_core::{BudgetExhausted, CheckStats, Diagnostic, Report, Verdict, Witness};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a JSON string literal (quoted and escaped).
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a 64-bit fingerprint as a fixed-width lowercase hex *string*.
/// Fingerprints use the full u64 range, and JSON integers are parsed as
/// `i64` here, so a numeric spelling would overflow for half of all hashes.
pub fn hex64(v: u64) -> String {
    format!("\"{v:016x}\"")
}

/// Parses a fingerprint spelled by [`hex64`].
pub fn parse_hex64(v: &JsonValue) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

fn string_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| string(s)).collect();
    format!("[{}]", inner.join(","))
}

fn int_array(items: &[i64]) -> String {
    let inner: Vec<String> = items.iter().map(|v| v.to_string()).collect();
    format!("[{}]", inner.join(","))
}

fn opt_string(s: &Option<String>) -> String {
    match s {
        Some(s) => string(s),
        None => "null".into(),
    }
}

fn opt_int(v: Option<i64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

/// The stable JSON spelling of a verdict (`"equivalent"`,
/// `"not_equivalent"`, `"inconclusive"`).
pub fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Equivalent => "equivalent",
        Verdict::NotEquivalent => "not_equivalent",
        Verdict::Inconclusive => "inconclusive",
    }
}

/// Parses a verdict spelled by [`verdict_str`].
pub fn verdict_from_str(s: &str) -> Option<Verdict> {
    match s {
        "equivalent" => Some(Verdict::Equivalent),
        "not_equivalent" => Some(Verdict::NotEquivalent),
        "inconclusive" => Some(Verdict::Inconclusive),
        _ => None,
    }
}

fn budget_to_json(b: &Option<BudgetExhausted>) -> String {
    match b {
        None => "null".into(),
        Some(BudgetExhausted::WorkLimit { max_work }) => {
            format!("{{\"reason\":\"work_limit\",\"max_work\":{max_work}}}")
        }
        Some(BudgetExhausted::DeadlineExceeded { elapsed_ms }) => {
            format!("{{\"reason\":\"deadline_exceeded\",\"elapsed_ms\":{elapsed_ms}}}")
        }
        Some(BudgetExhausted::Cancelled) => "{\"reason\":\"cancelled\"}".into(),
        Some(BudgetExhausted::ArithOverflow { events }) => {
            format!("{{\"reason\":\"arith_overflow\",\"events\":{events}}}")
        }
        Some(BudgetExhausted::UnsupportedFragment { op }) => {
            format!(
                "{{\"reason\":\"unsupported_fragment\",\"op\":\"{}\"}}",
                escape(op)
            )
        }
        Some(BudgetExhausted::WorkerPanicked { message }) => {
            format!(
                "{{\"reason\":\"worker_panicked\",\"message\":\"{}\"}}",
                escape(message)
            )
        }
    }
}

/// Renders [`CheckStats`] as a JSON object.
pub fn stats_to_json(s: &CheckStats) -> String {
    format!(
        concat!(
            "{{\"paths_compared\":{},\"compositions\":{},\"mapping_equalities\":{},",
            "\"table_lookups\":{},\"table_hits\":{},\"table_entries\":{},",
            "\"hash_collisions\":{},\"flattenings\":{},\"matchings\":{},",
            "\"terms_flattened\":{},\"arena_interns\":{},\"arena_hits\":{},",
            "\"fast_term_matches\":{},\"term_memo_hits\":{},",
            "\"parallel_tasks\":{},\"algebraic_piece_tasks\":{},",
            "\"shared_table_lookups\":{},\"shared_table_hits\":{},",
            "\"shared_table_inserts\":{},\"store_hits\":{},",
            "\"cone_positions\":{},\"baseline_hits\":{},",
            "\"conjuncts_subsumed\":{},\"bigint_fallbacks\":{},",
            "\"check_time_us\":{},\"witness_time_us\":{}}}"
        ),
        s.paths_compared,
        s.compositions,
        s.mapping_equalities,
        s.table_lookups,
        s.table_hits,
        s.table_entries,
        s.hash_collisions,
        s.flattenings,
        s.matchings,
        s.terms_flattened,
        s.arena_interns,
        s.arena_hits,
        s.fast_term_matches,
        s.term_memo_hits,
        s.parallel_tasks,
        s.algebraic_piece_tasks,
        s.shared_table_lookups,
        s.shared_table_hits,
        s.shared_table_inserts,
        s.store_hits,
        s.cone_positions,
        s.baseline_hits,
        s.conjuncts_subsumed,
        s.bigint_fallbacks,
        s.check_time_us,
        s.witness_time_us,
    )
}

/// Rebuilds [`CheckStats`] from an object produced by [`stats_to_json`].
pub fn stats_from_json(v: &JsonValue) -> Option<CheckStats> {
    let g = |k: &str| v.get(k).and_then(JsonValue::as_i64).map(|n| n as u64);
    Some(CheckStats {
        paths_compared: g("paths_compared")?,
        compositions: g("compositions")?,
        mapping_equalities: g("mapping_equalities")?,
        table_lookups: g("table_lookups")?,
        table_hits: g("table_hits")?,
        table_entries: g("table_entries")?,
        hash_collisions: g("hash_collisions")?,
        flattenings: g("flattenings")?,
        matchings: g("matchings")?,
        terms_flattened: g("terms_flattened")?,
        arena_interns: g("arena_interns")?,
        arena_hits: g("arena_hits")?,
        fast_term_matches: g("fast_term_matches")?,
        term_memo_hits: g("term_memo_hits")?,
        parallel_tasks: g("parallel_tasks")?,
        algebraic_piece_tasks: g("algebraic_piece_tasks")?,
        shared_table_lookups: g("shared_table_lookups")?,
        shared_table_hits: g("shared_table_hits")?,
        shared_table_inserts: g("shared_table_inserts")?,
        store_hits: g("store_hits")?,
        cone_positions: g("cone_positions")?,
        baseline_hits: g("baseline_hits")?,
        // Added after the first persisted format: default to 0 so documents
        // written by older builds still parse.
        conjuncts_subsumed: g("conjuncts_subsumed").unwrap_or(0),
        bigint_fallbacks: g("bigint_fallbacks").unwrap_or(0),
        check_time_us: g("check_time_us")?,
        witness_time_us: g("witness_time_us")?,
    })
}

/// Renders a [`Witness`] as a JSON object.
pub fn witness_to_json(w: &Witness) -> String {
    format!(
        concat!(
            "{{\"output\":{},\"point\":{},\"params\":{},\"original_value\":{},",
            "\"transformed_value\":{},\"confirmed\":{},\"replays\":{},",
            "\"original_slice\":{},\"transformed_slice\":{}}}"
        ),
        string(&w.output),
        int_array(&w.point),
        int_array(&w.params),
        opt_int(w.original_value),
        opt_int(w.transformed_value),
        w.confirmed,
        w.replays,
        string_array(&w.original_slice),
        string_array(&w.transformed_slice),
    )
}

fn diagnostic_to_json(d: &Diagnostic) -> String {
    format!(
        concat!(
            "{{\"kind\":{},\"output_array\":{},\"message\":{},",
            "\"original_statements\":{},\"transformed_statements\":{},",
            "\"expressions\":{},\"original_mapping\":{},\"transformed_mapping\":{},",
            "\"failing_domain\":{}}}"
        ),
        string(&format!("{:?}", d.kind)),
        opt_string(&d.output_array),
        string(&d.message),
        string_array(&d.original_statements),
        string_array(&d.transformed_statements),
        string_array(&d.expressions),
        opt_string(&d.original_mapping),
        opt_string(&d.transformed_mapping),
        opt_string(&d.failing_domain.as_ref().map(|s| s.to_string())),
    )
}

/// Renders a full [`Report`] as a JSON object (verdict, typed budget reason,
/// stats, diagnostics, witnesses, blame).
pub fn report_to_json(r: &Report) -> String {
    let diagnostics: Vec<String> = r.diagnostics.iter().map(diagnostic_to_json).collect();
    let witnesses: Vec<String> = r.witnesses.iter().map(witness_to_json).collect();
    let blame: Vec<String> = r
        .blame()
        .iter()
        .map(|(stmt, n)| format!("{{\"statement\":{},\"failing_paths\":{}}}", string(stmt), n))
        .collect();
    // Per-output position fingerprints (hex-string spelled; see `hex64`):
    // what lets a baseline consumer correlate proven entries with source
    // positions.  Empty when the run computed no fingerprints.
    let fingerprints: Vec<String> = r
        .output_fingerprints
        .iter()
        .map(|(name, fa, fb)| {
            format!(
                "{{\"name\":{},\"original_fp\":{},\"transformed_fp\":{}}}",
                string(name),
                hex64(*fa),
                hex64(*fb),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"verdict\":{},\"budget_exhausted\":{},\"outputs_checked\":{},",
            "\"output_fingerprints\":[{}],",
            "\"stats\":{},\"diagnostics\":[{}],\"witnesses\":[{}],\"blame\":[{}]}}"
        ),
        string(verdict_str(&r.verdict)),
        budget_to_json(&r.budget_exhausted),
        string_array(&r.outputs_checked),
        fingerprints.join(","),
        stats_to_json(&r.stats),
        diagnostics.join(","),
        witnesses.join(","),
        blame.join(","),
    )
}

/// Renders [`SessionStats`] as a JSON object.
pub fn session_to_json(s: &SessionStats) -> String {
    format!(
        concat!(
            "{{\"queries\":{},\"equivalent\":{},\"not_equivalent\":{},",
            "\"inconclusive\":{},\"errors\":{},\"shared_table_entries\":{},",
            "\"shared_table_lookups\":{},\"shared_table_hits\":{},",
            "\"feasibility_entries\":{},\"feasibility_hits\":{},",
            "\"feasibility_misses\":{},\"table_lookups\":{},\"table_hits\":{},",
            "\"store_hits\":{},\"store_eq_loaded\":{},\"store_fs_loaded\":{},",
            "\"check_time_us\":{},\"witness_time_us\":{}}}"
        ),
        s.queries,
        s.equivalent,
        s.not_equivalent,
        s.inconclusive,
        s.errors,
        s.shared_table_entries,
        s.shared_table_lookups,
        s.shared_table_hits,
        s.feasibility_entries,
        s.feasibility_hits,
        s.feasibility_misses,
        s.table_lookups,
        s.table_hits,
        s.store_hits,
        s.store_eq_loaded,
        s.store_fs_loaded,
        s.check_time_us,
        s.witness_time_us,
    )
}

/// Renders an [`Outcome`] (report + request timing + session snapshot).
pub fn outcome_to_json(o: &Outcome) -> String {
    format!(
        "{{\"report\":{},\"wall_time_us\":{},\"session\":{}}}",
        report_to_json(&o.report),
        o.wall_time_us,
        session_to_json(&o.session),
    )
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input (including
    /// trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

/// Parses the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(at, "non-ASCII \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| err(at, "invalid \\u escape"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a `\uDC00`–`\uDFFF` escape must
                            // follow; the pair combines into one code point.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(err(*pos, "unpaired low surrogate"));
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| err(*pos, "invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty by get() above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| err(start, "invalid number"))
    } else {
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| err(start, "integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let v =
            JsonValue::parse(r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0],
            JsonValue::Int(1)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            JsonValue::Float(3.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse(r#""\q""#).is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = format!("{{\"k\":{}}}", string(nasty));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = JsonValue::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}"));
        let v = JsonValue::parse("\"A\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}"));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_fail() {
        // The ensure_ascii spelling of 😀 as emitted by conventional
        // serializers.
        let v = JsonValue::parse("\"\\ud83d\\ude00!\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}!"));
        assert!(JsonValue::parse("\"\\ud83d\"").is_err(), "unpaired high");
        assert!(JsonValue::parse("\"\\ud83dx\"").is_err(), "high + garbage");
        assert!(JsonValue::parse("\"\\ude00\"").is_err(), "unpaired low");
        assert!(
            JsonValue::parse("\"\\ud83d\\u0041\"").is_err(),
            "high followed by a non-surrogate escape"
        );
    }
}
