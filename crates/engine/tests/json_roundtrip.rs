//! Property test: the hand-rolled JSON rendering of a report re-parses to
//! the same verdict, stats and witness points, across a generated corpus of
//! equivalent pairs, the paper's Fig. 1 pairs and the fault-injection
//! mutants (whose reports carry diagnostics and replay-confirmed witnesses).

use arrayeq_core::Report;
use arrayeq_engine::{
    report_to_json, stats_from_json, verdict_from_str, verdict_str, JsonValue, Verifier,
    VerifyRequest,
};
use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D};
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::mutate::fault_corpus;
use arrayeq_transform::random_pipeline;
use proptest::prelude::*;

/// Renders, parses back and cross-checks one report.
fn assert_roundtrip(report: &Report) {
    let text = report_to_json(report);
    let value =
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("rendered JSON must parse: {e}\n{text}"));

    // Verdict.
    let verdict = value
        .get("verdict")
        .and_then(JsonValue::as_str)
        .and_then(verdict_from_str)
        .expect("verdict round-trips");
    assert_eq!(verdict, report.verdict);
    assert_eq!(verdict_str(&report.verdict), verdict_str(&verdict));

    // Stats, field for field.
    let stats =
        stats_from_json(value.get("stats").expect("stats object")).expect("stats round-trip");
    assert_eq!(stats, report.stats);

    // Outputs.
    let outputs: Vec<&str> = value
        .get("outputs_checked")
        .and_then(JsonValue::as_array)
        .expect("outputs array")
        .iter()
        .map(|v| v.as_str().expect("output name"))
        .collect();
    assert_eq!(outputs, report.outputs_checked);

    // Per-output position fingerprints (rendered as fixed-width hex strings
    // — the values use the full u64 range, which JSON integers can't carry).
    let fingerprints = value
        .get("output_fingerprints")
        .and_then(JsonValue::as_array)
        .expect("output_fingerprints array");
    assert_eq!(fingerprints.len(), report.output_fingerprints.len());
    for (rendered, (name, fa, fb)) in fingerprints.iter().zip(&report.output_fingerprints) {
        assert_eq!(
            rendered.get("name").and_then(JsonValue::as_str),
            Some(name.as_str())
        );
        let hex = |member: &str| {
            let digits = rendered
                .get(member)
                .and_then(JsonValue::as_str)
                .expect("hex fingerprint string");
            assert_eq!(digits.len(), 16, "fixed-width hex: {digits}");
            u64::from_str_radix(digits, 16).expect("hex fingerprint parses")
        };
        assert_eq!(hex("original_fp"), *fa);
        assert_eq!(hex("transformed_fp"), *fb);
    }

    // Witness points and values.
    let witnesses = value
        .get("witnesses")
        .and_then(JsonValue::as_array)
        .expect("witness array");
    assert_eq!(witnesses.len(), report.witnesses.len());
    for (rendered, original) in witnesses.iter().zip(&report.witnesses) {
        assert_eq!(
            rendered.get("output").and_then(JsonValue::as_str),
            Some(original.output.as_str())
        );
        let point: Vec<i64> = rendered
            .get("point")
            .and_then(JsonValue::as_array)
            .expect("point array")
            .iter()
            .map(|v| v.as_i64().expect("point coordinate"))
            .collect();
        assert_eq!(point, original.point);
        assert_eq!(
            rendered.get("confirmed").and_then(JsonValue::as_bool),
            Some(original.confirmed)
        );
        assert_eq!(
            rendered.get("original_value").and_then(JsonValue::as_i64),
            original.original_value
        );
        assert_eq!(
            rendered
                .get("transformed_value")
                .and_then(JsonValue::as_i64),
            original.transformed_value
        );
    }

    // Diagnostics survive with their messages intact.
    let diagnostics = value
        .get("diagnostics")
        .and_then(JsonValue::as_array)
        .expect("diagnostics array");
    assert_eq!(diagnostics.len(), report.diagnostics.len());
    for (rendered, original) in diagnostics.iter().zip(&report.diagnostics) {
        assert_eq!(
            rendered.get("message").and_then(JsonValue::as_str),
            Some(original.message.as_str())
        );
    }
}

#[test]
fn fig1_reports_roundtrip_including_witnesses() {
    let verifier = Verifier::builder().witnesses(true).build();
    for (a, b) in [
        (FIG1_A, FIG1_B),
        (FIG1_A, FIG1_C),
        (FIG1_B, FIG1_C),
        (FIG1_A, FIG1_D),
        (FIG1_D, FIG1_A),
    ] {
        let outcome = verifier.verify_source(a, b).unwrap();
        assert!(
            !outcome.report.output_fingerprints.is_empty(),
            "engine runs record per-output fingerprints"
        );
        assert_roundtrip(&outcome.report);
    }
}

#[test]
fn fault_corpus_reports_roundtrip() {
    let verifier = Verifier::builder().witnesses(true).build();
    for case in fault_corpus().into_iter().take(10) {
        let outcome = verifier
            .verify(&VerifyRequest::programs(case.original, case.mutant))
            .unwrap();
        assert!(
            !outcome.report.is_equivalent(),
            "corpus mutant {} must be rejected",
            case.name
        );
        assert_roundtrip(&outcome.report);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn generated_reports_roundtrip(layers in 2usize..6, seed in 0u64..1000) {
        let original = generate_kernel(&GeneratorConfig {
            n: 64,
            layers,
            inputs: 2,
            fanin: 2,
            seed,
            ..Default::default()
        });
        let (transformed, _) = random_pipeline(&original, 3, seed.wrapping_add(1));
        let verifier = Verifier::builder().witnesses(true).build();
        let outcome = verifier
            .verify(&VerifyRequest::programs(original, transformed))
            .unwrap();
        assert_roundtrip(&outcome.report);
    }
}
