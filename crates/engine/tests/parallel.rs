//! Guarantees of the intra-query parallel checker:
//!
//! * **Determinism** — the same request at `jobs = 1, 2, 8` yields identical
//!   verdicts and a byte-identical stable rendering
//!   ([`Report::render_stable`]) across the Fig. 1 corpus, the
//!   fault-injection corpus and generated (including wide multi-output)
//!   kernels;
//! * **Stats consistency** — `jobs = 1` takes the sequential path and
//!   reproduces the plain sequential run's counters exactly; merged
//!   parallel counters respect the same internal identities;
//! * **Cache sharing** — the workers of one parallel engine query feed the
//!   session's shared feasibility memo and equivalence table across
//!   threads (the PR3 session snapshot showed `feasibility_hits: 0`: the
//!   shared level was dead weight behind the thread-local memo — now the
//!   memo is scoped per installed cache and a single parallel query
//!   produces cross-thread hits).

use arrayeq_core::{verify_programs, CheckOptions};
use arrayeq_engine::{Verifier, VerifyRequest};
use arrayeq_lang::ast::Program;
use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D, KERNELS};
use arrayeq_lang::parser::parse_program;
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::mutate::fault_corpus;
use arrayeq_transform::random_pipeline;

/// Every pair of the determinism corpus: the Fig. 1 pairs (equivalent and
/// not), the curated fault-injection mutants (all inequivalent, diagnostics
/// heavy), self-checks of the realistic kernels, and generated kernels —
/// deep chains and wide multi-output ones.
fn determinism_corpus() -> Vec<(String, Program, Program)> {
    let parse = |s: &str| parse_program(s).expect("corpus parses");
    let mut pairs = vec![
        ("fig1-a-b".to_owned(), parse(FIG1_A), parse(FIG1_B)),
        ("fig1-a-c".to_owned(), parse(FIG1_A), parse(FIG1_C)),
        ("fig1-a-d".to_owned(), parse(FIG1_A), parse(FIG1_D)),
        ("fig1-c-b".to_owned(), parse(FIG1_C), parse(FIG1_B)),
    ];
    for (name, src) in KERNELS.iter() {
        let p = parse(src);
        pairs.push(((*name).to_owned(), p.clone(), p));
    }
    for (i, case) in fault_corpus().into_iter().enumerate() {
        pairs.push((
            format!("mutant-{i}-{}", case.name),
            case.original,
            case.mutant,
        ));
    }
    for (layers, outputs, seed) in [(6usize, 1usize, 3u64), (2, 6, 4), (3, 4, 5)] {
        let original = generate_kernel(&GeneratorConfig {
            n: 64,
            layers,
            outputs,
            seed,
            ..Default::default()
        });
        let (transformed, _) = random_pipeline(&original, 4, seed + 100);
        pairs.push((format!("gen-L{layers}-O{outputs}"), original, transformed));
    }
    pairs
}

#[test]
fn same_request_at_jobs_1_2_8_renders_byte_identically() {
    for (name, original, transformed) in determinism_corpus() {
        let seq = verify_programs(&original, &transformed, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let baseline = seq.render_stable();
        for jobs in [1usize, 2, 8] {
            let par = verify_programs(
                &original,
                &transformed,
                &CheckOptions::default().with_jobs(jobs),
            )
            .unwrap_or_else(|e| panic!("{name} jobs={jobs}: {e}"));
            assert_eq!(seq.verdict, par.verdict, "{name} jobs={jobs}");
            assert_eq!(
                baseline,
                par.render_stable(),
                "{name}: stable report differs at jobs={jobs}"
            );
        }
    }
}

#[test]
fn jobs_1_reproduces_the_sequential_counters_exactly() {
    // jobs = 1 must take the sequential path: not just the same verdict but
    // the identical CheckStats (the counters are deterministic there).
    for (a, b) in [(FIG1_A, FIG1_C), (FIG1_A, FIG1_D)] {
        let pa = parse_program(a).unwrap();
        let pb = parse_program(b).unwrap();
        let seq = verify_programs(&pa, &pb, &CheckOptions::default()).unwrap();
        let one = verify_programs(&pa, &pb, &CheckOptions::default().with_jobs(1)).unwrap();
        let mut seq_stats = seq.stats;
        let mut one_stats = one.stats;
        seq_stats.check_time_us = 0;
        one_stats.check_time_us = 0;
        assert_eq!(seq_stats, one_stats);
    }
}

#[test]
fn merged_parallel_counters_respect_the_internal_identities() {
    let original = generate_kernel(&GeneratorConfig {
        n: 64,
        layers: 3,
        outputs: 6,
        seed: 11,
        ..Default::default()
    });
    let (transformed, _) = random_pipeline(&original, 4, 211);
    let par = verify_programs(
        &original,
        &transformed,
        &CheckOptions::default().with_jobs(4),
    )
    .unwrap();
    assert!(par.is_equivalent(), "{}", par.summary());
    let s = par.stats;
    assert!(s.table_hits <= s.table_lookups);
    assert!(s.table_entries <= s.table_lookups);
    assert!(s.shared_table_hits <= s.shared_table_lookups);
    assert_eq!(s.hash_collisions, 0);
    assert!(s.paths_compared > 0);
    // The pool genuinely decomposed the obligation: a wide kernel yields
    // many independent root tasks, so work happened on several outputs.
    assert_eq!(par.outputs_checked.len(), 6);
}

#[test]
fn one_parallel_query_produces_cross_thread_feasibility_hits() {
    // Regression for the dead shared FeasibilityCache (BENCH_PR3.json:
    // feasibility_hits 0 vs 1931 entries): the workers of a single
    // parallel query are fresh OS threads sharing the session memo — their
    // thread-local L1s start cold, so the same canonical conjuncts arriving
    // on two workers must produce shared-level hits.
    let original = generate_kernel(&GeneratorConfig {
        n: 128,
        layers: 3,
        outputs: 8,
        seed: 21,
        ..Default::default()
    });
    let (transformed, _) = random_pipeline(&original, 4, 321);
    let verifier = Verifier::builder().jobs(8).build();
    let outcome = verifier
        .verify(&VerifyRequest::programs(original, transformed))
        .unwrap();
    assert!(outcome.report.is_equivalent());
    let session = verifier.session_stats();
    assert!(
        session.feasibility_hits > 0,
        "workers must hit the shared feasibility memo: {session:?}"
    );
    assert!(session.feasibility_entries > 0);
}

#[test]
fn parallel_workers_share_the_session_equivalence_table_within_one_run() {
    // The wide kernel's chains hang off one shared base layer; with
    // rename-invariant keys the sub-proof of that shared region is
    // established once and discharged on every other worker through the
    // session table — visible as shared-table hits on the *first* query.
    let original = generate_kernel(&GeneratorConfig {
        n: 128,
        layers: 4,
        outputs: 8,
        seed: 31,
        ..Default::default()
    });
    let (transformed, _) = random_pipeline(&original, 4, 431);
    let verifier = Verifier::builder().jobs(8).build();
    let outcome = verifier
        .verify(&VerifyRequest::programs(original, transformed))
        .unwrap();
    assert!(outcome.report.is_equivalent());
    assert!(
        outcome.report.stats.shared_table_inserts > 0,
        "workers publish sub-proofs: {:?}",
        outcome.report.stats
    );
}

#[test]
fn thread_local_memo_rescopes_when_a_session_store_appears() {
    // Warm this thread's feasibility memo *outside* any engine session,
    // then query through an engine: the pre-session entries must not mask
    // the session store — the engine's memo still receives the verdicts
    // (entries > 0), so other threads of the session can hit them.
    let pa = parse_program(FIG1_A).unwrap();
    let pc = parse_program(FIG1_C).unwrap();
    let warm = verify_programs(&pa, &pc, &CheckOptions::default()).unwrap();
    assert!(warm.is_equivalent());

    let verifier = Verifier::new();
    let outcome = verifier
        .verify(&VerifyRequest::programs(pa.clone(), pc.clone()))
        .unwrap();
    assert!(outcome.report.is_equivalent());
    let session = verifier.session_stats();
    assert!(
        session.feasibility_entries > 0,
        "session store was populated despite the warm thread-local memo: {session:?}"
    );
}
