//! Incremental re-verification against exported baselines: the verdict and
//! the stable report rendering must be byte-identical to a from-scratch run
//! on every pair — equivalence-preserving single-statement edits reuse the
//! baseline, fault-injected mutants are caught inside the dirty cone with
//! replay-confirmed witnesses, and every baseline rejection path degrades
//! to a clean from-scratch check with a typed warning.

use arrayeq_engine::{
    incremental_outcome_to_json, BaselineRejection, BaselineStatus, Method, Verifier, VerifyRequest,
};
use arrayeq_lang::corpus::{FIG1_A, FIG1_C};
use arrayeq_transform::algebraic::commute_statement;
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::mutate::fault_corpus;
use arrayeq_transform::random_pipeline;
use proptest::prelude::*;

/// A wide kernel with every chain distinct, so a single-statement edit
/// dirties one chain and leaves the others clean.
fn wide_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n: 48,
        layers: 3,
        outputs: 4,
        distinct_chains: 0,
        inputs: 2,
        fanin: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn unchanged_pair_is_fully_clean() {
    let producer = Verifier::new();
    let first = producer.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(first.report.is_equivalent());
    let baseline = producer.export_baseline(&first.report);

    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();
    let consumer = Verifier::new();
    let inc = consumer
        .verify_incremental(&VerifyRequest::source(FIG1_A, FIG1_C), &baseline)
        .unwrap();
    match &inc.baseline {
        BaselineStatus::Applied {
            entries,
            clean_outputs,
        } => {
            assert!(*entries > 0, "baseline carries sub-proofs");
            assert_eq!(
                clean_outputs, &inc.outcome.report.outputs_checked,
                "every output of the unchanged pair is clean"
            );
        }
        rejected => panic!("baseline must apply: {rejected:?}"),
    }
    assert_eq!(
        inc.outcome.report.stats.paths_compared, 0,
        "nothing left to traverse"
    );
    assert_eq!(inc.outcome.report.stats.cone_positions, 0);
    assert_eq!(
        inc.outcome.report.render_stable(),
        scratch.report.render_stable()
    );
    let json = incremental_outcome_to_json(&inc);
    assert!(json.contains("\"status\":\"applied\""));
}

#[test]
fn targeted_edit_re_checks_only_its_cone() {
    let original = generate_kernel(&wide_config(11));
    let (transformed, _) = random_pipeline(&original, 4, 12);
    let producer = Verifier::new();
    let first = producer
        .verify(&VerifyRequest::programs(
            original.clone(),
            transformed.clone(),
        ))
        .unwrap();
    assert!(first.report.is_equivalent());
    let baseline = producer.export_baseline(&first.report);

    // Commute one statement of one chain: an equivalence-preserving edit
    // whose cone is a single output.
    let label = transformed
        .statements()
        .map(|s| s.label.clone())
        .find(|l| {
            let (p, n) = commute_statement(&transformed, l);
            n > 0
                && p.statements().count() == transformed.statements().count()
                && l.starts_with("s3")
        })
        .expect("some chain-3 statement commutes");
    let (edited, changed) = commute_statement(&transformed, &label);
    assert!(changed > 0);

    let request = VerifyRequest::programs(original, edited);
    let scratch = Verifier::new().verify(&request).unwrap();
    assert!(scratch.report.is_equivalent());
    let inc = Verifier::new()
        .verify_incremental(&request, &baseline)
        .unwrap();
    let outputs = inc.outcome.report.outputs_checked.len() as u64;
    match &inc.baseline {
        BaselineStatus::Applied { clean_outputs, .. } => {
            assert!(
                !clean_outputs.is_empty(),
                "untouched chains stay clean: {clean_outputs:?}"
            );
            assert!(
                !clean_outputs.contains(&"OUT3".to_owned()),
                "the edited chain is dirty"
            );
        }
        rejected => panic!("baseline must apply: {rejected:?}"),
    }
    let stats = &inc.outcome.report.stats;
    assert!(
        stats.cone_positions < outputs,
        "dirty cone is a strict subset: {} of {outputs}",
        stats.cone_positions
    );
    assert_eq!(
        inc.outcome.report.render_stable(),
        scratch.report.render_stable()
    );
}

#[test]
fn in_cone_sub_proofs_discharge_from_the_baseline() {
    // Force one output into the dirty cone by removing its *root* entry
    // from an otherwise intact baseline: the traversal must re-enter that
    // output, and every interior sub-obligation must then discharge from
    // the baseline's remaining entries rather than being re-derived.
    use arrayeq_addg::{extract, fingerprints};
    use arrayeq_core::output_root_key;
    use arrayeq_engine::{baseline_to_json, Baseline};

    let original = generate_kernel(&wide_config(11));
    let (transformed, _) = random_pipeline(&original, 4, 12);
    let producer = Verifier::new();
    let first = producer
        .verify(&VerifyRequest::programs(
            original.clone(),
            transformed.clone(),
        ))
        .unwrap();
    assert!(first.report.is_equivalent());
    let exported = Baseline::parse(&producer.export_baseline(&first.report)).unwrap();

    let g1 = extract(&original).unwrap();
    let g2 = extract(&transformed).unwrap();
    let (fpa, fpb) = (fingerprints(&g1), fingerprints(&g2));
    let root = output_root_key(&g1, &g2, (&fpa, &fpb), "OUT3").expect("OUT3 domains match");
    let kept: Vec<_> = exported
        .entries
        .iter()
        .copied()
        .filter(|k| *k != root)
        .collect();
    assert_eq!(kept.len(), exported.entries.len() - 1, "root entry present");
    let doctored = baseline_to_json(exported.options_fp, &exported.outputs, &kept);

    let request = VerifyRequest::programs(original, transformed);
    let scratch = Verifier::new().verify(&request).unwrap();
    let inc = Verifier::new()
        .verify_incremental(&request, &doctored)
        .unwrap();
    match &inc.baseline {
        BaselineStatus::Applied { clean_outputs, .. } => {
            assert!(!clean_outputs.contains(&"OUT3".to_owned()));
            assert_eq!(clean_outputs.len() as u64, 3);
        }
        rejected => panic!("baseline must apply: {rejected:?}"),
    }
    let stats = &inc.outcome.report.stats;
    assert_eq!(stats.cone_positions, 1, "only OUT3 is re-entered");
    assert!(
        stats.baseline_hits > 0,
        "interior sub-proofs discharge from the baseline: {stats:?}"
    );
    assert_eq!(
        inc.outcome.report.render_stable(),
        scratch.report.render_stable()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn equivalence_preserving_edits_stay_byte_identical(seed in 0u64..500) {
        let original = generate_kernel(&wide_config(seed));
        let (transformed, _) = random_pipeline(&original, 3, seed.wrapping_add(1));
        let producer = Verifier::new();
        let first = producer
            .verify(&VerifyRequest::programs(original.clone(), transformed.clone()))
            .unwrap();
        prop_assert!(first.report.is_equivalent());
        let baseline = producer.export_baseline(&first.report);

        // One more random equivalence-preserving step is the "edit".
        let (edited, _) = random_pipeline(&transformed, 1, seed.wrapping_add(7));
        let request = VerifyRequest::programs(original, edited);
        let scratch = Verifier::new().verify(&request).unwrap();
        let inc = Verifier::new().verify_incremental(&request, &baseline).unwrap();
        prop_assert!(matches!(inc.baseline, BaselineStatus::Applied { .. }));
        prop_assert!(inc.outcome.report.is_equivalent());
        prop_assert_eq!(
            scratch.report.render_stable(),
            inc.outcome.report.render_stable()
        );
    }
}

#[test]
fn fault_mutants_are_caught_in_the_dirty_cone() {
    for case in fault_corpus().into_iter().take(6) {
        // The baseline captures the pre-edit state: the original verified
        // against itself (every sub-proof of its own cone established).
        let producer = Verifier::builder().witnesses(true).build();
        let good = producer
            .verify(&VerifyRequest::programs(
                case.original.clone(),
                case.original.clone(),
            ))
            .unwrap();
        assert!(good.report.is_equivalent(), "{}", case.name);
        let baseline = producer.export_baseline(&good.report);

        let request = VerifyRequest::programs(case.original.clone(), case.mutant.clone());
        let scratch = Verifier::builder()
            .witnesses(true)
            .build()
            .verify(&request)
            .unwrap();
        let inc = Verifier::builder()
            .witnesses(true)
            .build()
            .verify_incremental(&request, &baseline)
            .unwrap();
        assert!(
            matches!(inc.baseline, BaselineStatus::Applied { .. }),
            "{}: {:?}",
            case.name,
            inc.baseline
        );
        assert!(
            !inc.outcome.report.is_equivalent(),
            "mutant {} must be rejected inside the dirty cone",
            case.name
        );
        assert!(
            inc.outcome.report.witnesses.iter().any(|w| w.confirmed),
            "{}: witness replay confirms the bug",
            case.name
        );
        assert_eq!(
            inc.outcome.report.render_stable(),
            scratch.report.render_stable(),
            "{}",
            case.name
        );
    }
}

#[test]
fn rejected_baselines_degrade_to_from_scratch() {
    let request = VerifyRequest::source(FIG1_A, FIG1_C);
    let stable = Verifier::new()
        .verify(&request)
        .unwrap()
        .report
        .render_stable();

    // Options mismatch: produced under the basic method, consumed by an
    // extended-method engine.
    let basic = Verifier::builder().method(Method::Basic).build();
    let produced = basic.verify(&request).unwrap();
    let mismatched = basic.export_baseline(&produced.report);
    let consumer = Verifier::new();
    let inc = consumer.verify_incremental(&request, &mismatched).unwrap();
    match &inc.baseline {
        BaselineStatus::Rejected(BaselineRejection::OptionsMismatch { expected, found }) => {
            assert_eq!(*expected, consumer.options_fingerprint());
            assert_ne!(expected, found);
        }
        other => panic!("expected options mismatch: {other:?}"),
    }
    assert_eq!(inc.outcome.report.render_stable(), stable);
    let json = incremental_outcome_to_json(&inc);
    assert!(json.contains("\"status\":\"rejected\""));
    assert!(json.contains("\"reason\":\"options_mismatch\""));

    // Malformed: truncated, wrong format marker, garbage, empty.
    let producer = Verifier::new();
    let outcome = producer.verify(&request).unwrap();
    let good = producer.export_baseline(&outcome.report);
    let truncated = &good[..good.len() / 2];
    for bad in [truncated, "{\"format\":\"nope\"}", "not json at all", ""] {
        let inc = Verifier::new().verify_incremental(&request, bad).unwrap();
        assert!(
            matches!(
                inc.baseline,
                BaselineStatus::Rejected(BaselineRejection::Malformed { .. })
            ),
            "doc {bad:?} gave {:?}",
            inc.baseline
        );
        assert_eq!(inc.outcome.report.render_stable(), stable);
        assert!(incremental_outcome_to_json(&inc).contains("\"reason\":\"malformed\""));
    }

    // Program mismatch: a baseline recorded for a different kernel under
    // the same options.
    let producer = Verifier::new();
    let wide = generate_kernel(&wide_config(3));
    let (wide_t, _) = random_pipeline(&wide, 3, 4);
    let w = producer
        .verify(&VerifyRequest::programs(wide, wide_t))
        .unwrap();
    assert!(w.report.is_equivalent());
    let foreign = producer.export_baseline(&w.report);
    let inc = Verifier::new()
        .verify_incremental(&request, &foreign)
        .unwrap();
    match &inc.baseline {
        BaselineStatus::Rejected(BaselineRejection::ProgramMismatch { expected, found }) => {
            assert!(!expected.is_empty() && !found.is_empty());
            assert_ne!(expected, found);
        }
        other => panic!("expected program mismatch: {other:?}"),
    }
    assert_eq!(inc.outcome.report.render_stable(), stable);
    assert!(incremental_outcome_to_json(&inc).contains("\"reason\":\"program_mismatch\""));
}
