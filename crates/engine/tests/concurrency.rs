//! Concurrency and budget guarantees of the persistent [`Verifier`]:
//!
//! * two threads sharing one engine observe *cross-thread* table hits, and
//!   the session stats prove the reuse;
//! * a tiny wall-clock deadline and a cancelled token both yield
//!   [`Verdict::Inconclusive`] with the typed reason, in bounded time —
//!   never a hang.

use arrayeq_engine::{BudgetExhausted, Verdict, Verifier, VerifyRequest};
use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C};
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::random_pipeline;
use std::time::{Duration, Instant};

/// A deterministic equivalent pair big enough that its check performs
/// thousands of traversal steps.
fn big_pair(seed: u64) -> VerifyRequest {
    let original = generate_kernel(&GeneratorConfig {
        n: 256,
        layers: 12,
        inputs: 3,
        fanin: 3,
        seed,
        ..Default::default()
    });
    let (transformed, _) = random_pipeline(&original, 4, seed ^ 0x5eed);
    VerifyRequest::programs(original, transformed)
}

#[test]
fn two_threads_sharing_one_verifier_observe_cross_thread_hits() {
    let verifier = Verifier::new();
    let request = big_pair(7);

    // Thread 1 populates the shared table...
    let first = std::thread::scope(|s| {
        s.spawn(|| verifier.verify(&request).unwrap())
            .join()
            .unwrap()
    });
    assert!(first.report.is_equivalent());
    assert!(
        first.report.stats.shared_table_inserts > 0,
        "first query published sub-proofs: {:?}",
        first.report.stats
    );
    assert_eq!(first.report.stats.shared_table_hits, 0);

    // ...and thread 2, a different OS thread, consumes it.
    let second = std::thread::scope(|s| {
        s.spawn(|| verifier.verify(&request).unwrap())
            .join()
            .unwrap()
    });
    assert!(second.report.is_equivalent());
    assert!(
        second.report.stats.shared_table_hits > 0,
        "second thread reused the first thread's sub-proofs: {:?}",
        second.report.stats
    );

    // Session stats prove the reuse end-to-end.
    let stats = verifier.session_stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.equivalent, 2);
    assert!(stats.shared_table_entries > 0);
    assert!(stats.shared_table_hits >= second.report.stats.shared_table_hits);
    assert!(
        stats.feasibility_hits > 0,
        "the promoted feasibility memo is shared across threads too: {stats:?}"
    );
    assert!(stats.combined_hit_rate() > 0.0);
}

#[test]
fn batch_workers_share_the_session_caches() {
    let verifier = Verifier::builder().workers(4).build();
    // The same pair four times: whichever worker wins the race publishes,
    // the others (and a final sequential query) reuse.
    let requests: Vec<VerifyRequest> = (0..4).map(|_| big_pair(11)).collect();
    let outcomes = verifier.verify_batch(&requests);
    assert!(outcomes
        .iter()
        .all(|o| o.as_ref().unwrap().report.is_equivalent()));
    let follow_up = verifier.verify(&big_pair(11)).unwrap();
    assert!(
        follow_up.report.stats.shared_table_hits > 0,
        "after the batch, the session answers sub-proofs from cache: {:?}",
        follow_up.report.stats
    );
}

#[test]
fn tiny_deadline_yields_typed_inconclusive_in_bounded_time() {
    let verifier = Verifier::builder()
        .deadline(Duration::from_millis(1))
        .build();
    let started = Instant::now();
    let outcome = verifier.verify(&big_pair(23)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(outcome.report.verdict, Verdict::Inconclusive);
    assert!(
        matches!(
            outcome.report.budget_exhausted,
            Some(BudgetExhausted::DeadlineExceeded { .. })
        ),
        "typed reason: {:?}",
        outcome.report.budget_exhausted
    );
    // Winding down is prompt: far under a second for a 1 ms budget.
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline overrun must not hang (took {elapsed:?})"
    );
    assert_eq!(verifier.session_stats().inconclusive, 1);
}

#[test]
fn cancelled_token_stops_current_and_future_requests() {
    let verifier = Verifier::new();
    let token = verifier.cancel_token();
    token.cancel();
    let started = Instant::now();
    let outcome = verifier.verify(&big_pair(31)).unwrap();
    assert_eq!(outcome.report.verdict, Verdict::Inconclusive);
    assert_eq!(
        outcome.report.budget_exhausted,
        Some(BudgetExhausted::Cancelled)
    );
    assert!(started.elapsed() < Duration::from_secs(10));

    // Batches observe the same token, at every index.
    let outcomes = verifier.verify_batch(&[
        VerifyRequest::source(FIG1_A, FIG1_B),
        VerifyRequest::source(FIG1_A, FIG1_C),
    ]);
    for o in &outcomes {
        assert_eq!(o.as_ref().unwrap().report.verdict, Verdict::Inconclusive);
    }
}

#[test]
fn work_limit_is_typed_through_the_engine() {
    let verifier = Verifier::builder().max_work(5).build();
    let outcome = verifier.verify_source(FIG1_A, FIG1_C).unwrap();
    assert_eq!(outcome.report.verdict, Verdict::Inconclusive);
    assert_eq!(
        outcome.report.budget_exhausted,
        Some(BudgetExhausted::WorkLimit { max_work: 5 })
    );
}
