//! Soundness under adversity: worker panics and solver arithmetic overflow
//! must degrade to *typed inconclusive* verdicts — never a wrong verdict,
//! never a crash, never a poisoned session.
//!
//! * A panicking parallel worker poisons only its own obligation: the run
//!   reports `Inconclusive` with a [`BudgetExhausted::WorkerPanicked`]
//!   reason and a [`DiagnosticKind::WorkerPanicked`] diagnostic naming the
//!   output, and the session's shared tables stay usable — the next verify
//!   on the *same* engine is byte-identical to a fresh engine's.
//! * Solver arithmetic that would exceed `i64` trips a sticky overflow flag
//!   harvested into [`BudgetExhausted::ArithOverflow`]; the verdict is
//!   withheld rather than silently wrong.

use arrayeq_core::{
    inject_worker_panic_on_task, verify_programs, verify_source, BudgetExhausted, CheckOptions,
    DiagnosticKind, Verdict,
};
use arrayeq_engine::{Verifier, VerifyRequest};
use arrayeq_lang::ast::Program;
use arrayeq_transform::generator::{generate_kernel, GeneratorConfig};
use arrayeq_transform::random_pipeline;
use std::sync::Mutex;

/// The panic-injection hook is a process-global one-shot: serialize every
/// test that arms it so concurrent test threads cannot steal each other's
/// injection.
static INJECTION_LOCK: Mutex<()> = Mutex::new(());

/// A wide multi-output kernel pair: enough independent root obligations
/// that the parallel pool genuinely decomposes, so poisoning one task
/// leaves real work standing.
fn wide_pair() -> (Program, Program) {
    let original = generate_kernel(&GeneratorConfig {
        n: 64,
        layers: 2,
        outputs: 6,
        seed: 4,
        ..Default::default()
    });
    let (transformed, _) = random_pipeline(&original, 4, 104);
    (original, transformed)
}

#[test]
fn injected_worker_panic_poisons_only_its_obligation() {
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (original, transformed) = wide_pair();
    let opts = CheckOptions::default().with_jobs(4);

    // Uninjected baseline: the pair is equivalent.
    let clean = verify_programs(&original, &transformed, &opts).unwrap();
    assert_eq!(clean.verdict, Verdict::Equivalent, "{}", clean.summary());

    inject_worker_panic_on_task(Some(0));
    let poisoned = verify_programs(&original, &transformed, &opts).unwrap();
    inject_worker_panic_on_task(None);

    assert_eq!(
        poisoned.verdict,
        Verdict::Inconclusive,
        "a panicked obligation neither proves nor refutes: {}",
        poisoned.summary()
    );
    match &poisoned.budget_exhausted {
        Some(BudgetExhausted::WorkerPanicked { message }) => {
            assert!(
                message.contains("injected worker panic"),
                "reason carries the panic payload: {message}"
            )
        }
        other => panic!("expected WorkerPanicked reason, got {other:?}"),
    }
    let panic_diags: Vec<_> = poisoned
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagnosticKind::WorkerPanicked)
        .collect();
    assert_eq!(
        panic_diags.len(),
        1,
        "exactly the injected task is poisoned: {:?}",
        poisoned.diagnostics
    );
    assert!(
        panic_diags[0].output_array.is_some(),
        "the diagnostic names the poisoned output"
    );

    // The injection is one-shot: the very next run is clean and
    // byte-identical to the baseline.
    let healed = verify_programs(&original, &transformed, &opts).unwrap();
    assert_eq!(clean.render_stable(), healed.render_stable());
}

#[test]
fn session_survives_a_worker_panic_byte_identically() {
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (original, transformed) = wide_pair();

    // Engine A eats the panic on its first query; engine B never sees one.
    let poisoned_engine = Verifier::builder().jobs(4).build();
    inject_worker_panic_on_task(Some(1));
    let poisoned = poisoned_engine
        .verify(&VerifyRequest::programs(
            original.clone(),
            transformed.clone(),
        ))
        .unwrap();
    inject_worker_panic_on_task(None);
    assert_eq!(poisoned.report.verdict, Verdict::Inconclusive);

    // The shared session tables were fed by the surviving workers while the
    // panicking one was quarantined; whatever they hold must be complete
    // facts — the follow-up answer has to match a fresh engine's byte for
    // byte.
    let after = poisoned_engine
        .verify(&VerifyRequest::programs(
            original.clone(),
            transformed.clone(),
        ))
        .unwrap();
    let fresh = Verifier::builder()
        .jobs(4)
        .build()
        .verify(&VerifyRequest::programs(original, transformed))
        .unwrap();
    assert_eq!(after.report.verdict, Verdict::Equivalent);
    assert_eq!(after.report.render_stable(), fresh.report.render_stable());
}

/// Both branches compute the same value, so A ≡ B regardless of the guard
/// — but the guards carry coefficients around `4e9` whose solver-internal
/// combinations exceed `i64`.  Overflow degrades conservatively
/// ("feasible"), which in the frontend's class checks surfaces as a
/// *rejection* (spurious DSA overlap) and in the checker as a typed
/// inconclusive — either is sound; claiming NOT EQUIVALENT for this
/// equivalent pair, or EQUIVALENT with a silently wrapped computation,
/// would not be.
const OVERFLOW_A: &str = r#"
#define N 16
foo(int A[], int C[])
{
    int k, j;
    for(k=0; k<N; k++)
      for(j=0; j<N; j++){
        if (1000003*k - 4000000007*j >= 1)
s1:       C[16*k + j] = A[k];
        else
s2:       C[16*k + j] = A[k];
      }
}
"#;

/// See [`OVERFLOW_A`]: the same function under a different adversarial
/// guard split.
const OVERFLOW_B: &str = r#"
#define N 16
foo(int A[], int C[])
{
    int k, j;
    for(k=0; k<N; k++)
      for(j=0; j<N; j++){
        if (4000000009*k - 1000033*j >= 1)
t1:       C[16*k + j] = A[k];
        else
t2:       C[16*k + j] = A[k];
      }
}
"#;

#[test]
fn huge_coefficient_sources_never_yield_a_wrong_verdict() {
    for jobs in [0usize, 4] {
        let opts = CheckOptions::default().with_jobs(jobs);
        match verify_source(OVERFLOW_A, OVERFLOW_B, &opts) {
            // Conservative frontend rejection: overflow during the class
            // checks reports "feasible", which reads as a spurious DSA
            // overlap — a typed error, not a wrong verdict.
            Err(arrayeq_core::CoreError::Lang(_)) => {}
            Ok(report) => match report.verdict {
                // The pair IS equivalent, so proving it is correct…
                Verdict::Equivalent => {}
                // …and withholding is fine only with a typed reason: either
                // residual overflow, or — now that the big-int fallback
                // decides the overflowed conjuncts exactly and lets the pair
                // past the front end — an obligation whose subtract cannot
                // eliminate its existentials exactly.
                Verdict::Inconclusive => assert!(
                    matches!(
                        report.budget_exhausted,
                        Some(BudgetExhausted::ArithOverflow { .. })
                            | Some(BudgetExhausted::UnsupportedFragment { .. })
                    ),
                    "jobs={jobs}: inconclusive without typed reason: {:?}",
                    report.budget_exhausted
                ),
                Verdict::NotEquivalent => {
                    panic!("jobs={jobs}: wrong verdict on an equivalent pair")
                }
            },
            Err(e) => panic!("jobs={jobs}: unexpected pipeline error: {e}"),
        }
    }
}

#[test]
fn solver_overflow_withholds_the_verdict_as_typed_inconclusive() {
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (original, transformed) = wide_pair();
    let opts = CheckOptions::default();

    arrayeq_core::inject_arith_overflow_once();
    let report = verify_programs(&original, &transformed, &opts).unwrap();
    assert_eq!(
        report.verdict,
        Verdict::Inconclusive,
        "overflow must withhold the verdict: {}",
        report.summary()
    );
    match &report.budget_exhausted {
        Some(BudgetExhausted::ArithOverflow { events }) => {
            assert!(*events > 0, "the reason counts the overflow events")
        }
        other => panic!("expected ArithOverflow reason, got {other:?}"),
    }

    // One-shot: the next run is clean again.
    let healed = verify_programs(&original, &transformed, &opts).unwrap();
    assert_eq!(healed.verdict, Verdict::Equivalent, "{}", healed.summary());
}

#[test]
fn solver_overflow_is_harvested_from_parallel_workers_too() {
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (original, transformed) = wide_pair();
    for jobs in [2usize, 4] {
        arrayeq_core::inject_arith_overflow_once();
        let report = verify_programs(
            &original,
            &transformed,
            &CheckOptions::default().with_jobs(jobs),
        )
        .unwrap();
        assert_eq!(report.verdict, Verdict::Inconclusive, "jobs={jobs}");
        assert!(
            matches!(
                report.budget_exhausted,
                Some(BudgetExhausted::ArithOverflow { .. })
            ),
            "jobs={jobs}: {:?}",
            report.budget_exhausted
        );
    }
}
