//! Persistent proof store integration: warm engines discharge sub-proofs
//! from disk with byte-identical stable reports, and every corruption mode
//! (bit flip, truncation, format/options/epoch mismatch) degrades to a cold
//! start with a typed warning — never a changed verdict, never a crash.

use arrayeq_engine::{RequestLimits, StoreWarningKind, Verifier, VerifyRequest};
use arrayeq_lang::corpus::{FIG1_A, FIG1_C, FIG1_D};
use arrayeq_transform::mutate::fault_corpus;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arrayeq-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Builds a store by verifying the Fig. 1 pair and flushing.
fn primed_store(tag: &str) -> PathBuf {
    let dir = tmp_store(tag);
    let v = Verifier::builder().store(&dir).build();
    assert!(v.store_warnings().is_empty());
    let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(out.report.is_equivalent());
    let flush = v.flush_store().unwrap().expect("store attached");
    assert!(flush.appended_eq > 0, "sub-proofs persisted: {flush:?}");
    dir
}

#[test]
fn warm_engine_discharges_from_store_with_identical_report() {
    let dir = primed_store("warm");
    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();

    let warm = Verifier::builder().store(&dir).build();
    assert!(warm.store_warnings().is_empty());
    let s = warm.session_stats();
    assert!(s.store_eq_loaded > 0, "entries seeded: {s:?}");

    let out = warm.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(out.report.is_equivalent());
    assert!(
        out.report.stats.store_hits > 0,
        "store discharges sub-proofs: {:?}",
        out.report.stats
    );
    assert!(
        out.report.stats.store_hits <= out.report.stats.shared_table_hits,
        "store hits are a subset of shared-table hits"
    );
    assert_eq!(
        out.report.render_stable(),
        scratch.report.render_stable(),
        "store reuse never changes the stable rendering"
    );
    assert!(out.session.store_hits > 0);
    assert!(out.report.summary().contains("proof store"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_never_changes_a_negative_verdict() {
    let dir = primed_store("negative");
    let scratch = Verifier::builder()
        .witnesses(true)
        .build()
        .verify_source(FIG1_A, FIG1_D)
        .unwrap();

    let warm = Verifier::builder().store(&dir).witnesses(true).build();
    let out = warm.verify_source(FIG1_A, FIG1_D).unwrap();
    assert!(!out.report.is_equivalent());
    assert_eq!(
        out.report.render_stable(),
        scratch.report.render_stable(),
        "failures re-derive their full diagnostics"
    );
    assert!(out.report.witnesses.iter().any(|w| w.confirmed));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_store_degrades_cold_with_identical_verdicts() {
    let dir = primed_store("bitflip");
    // Compact so both file shapes (snapshot) are exercised, then prime a
    // fresh log on top.
    {
        let v = Verifier::builder().store(&dir).build();
        v.checkpoint_store().unwrap();
        let v2 = Verifier::builder().store(&dir).build();
        v2.verify_source(FIG1_A, FIG1_D).unwrap();
        v2.flush_store().unwrap();
    }
    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();

    for file in ["snapshot.jsonl", "log.jsonl"] {
        let path = dir.join(file);
        if !path.exists() {
            continue;
        }
        let original = fs::read(&path).unwrap();
        let mut flipped = original.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        fs::write(&path, &flipped).unwrap();

        let v = Verifier::builder().store(&dir).build();
        assert!(
            !v.store_warnings().is_empty(),
            "{file}: corruption must warn"
        );
        let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
        assert_eq!(
            out.report.render_stable(),
            scratch.report.render_stable(),
            "{file}: bit flip never changes the stable rendering"
        );
        fs::write(&path, &original).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_degrades_cold_with_identical_verdicts() {
    let dir = primed_store("truncate");
    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();

    let log = dir.join("log.jsonl");
    let text = fs::read_to_string(&log).unwrap();
    fs::write(&log, &text[..text.len() * 2 / 3]).unwrap();

    let v = Verifier::builder().store(&dir).build();
    assert!(v.store_warnings().iter().any(|w| matches!(
        w.kind,
        StoreWarningKind::Truncated | StoreWarningKind::Corrupt
    )));
    let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(out.report.is_equivalent());
    assert_eq!(
        out.report.render_stable(),
        scratch.report.render_stable(),
        "truncation never changes the stable rendering"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn options_mismatched_store_is_ignored_and_protected() {
    let dir = primed_store("options");
    let before = fs::read_to_string(dir.join("log.jsonl")).unwrap();

    // A basic-method engine must not consume (or overwrite) extended-method
    // sub-proofs.
    let v = Verifier::builder()
        .method(arrayeq_engine::Method::Basic)
        .store(&dir)
        .build();
    assert!(v
        .store_warnings()
        .iter()
        .any(|w| w.kind == StoreWarningKind::OptionsMismatch));
    assert_eq!(v.session_stats().store_eq_loaded, 0, "cold start");
    let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert_eq!(out.report.stats.store_hits, 0);
    let flush = v.flush_store().unwrap().unwrap();
    assert!(flush.disabled, "writes disabled on options mismatch");
    assert_eq!(
        fs::read_to_string(dir.join("log.jsonl")).unwrap(),
        before,
        "the foreign store is left untouched"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fault_corpus_verdicts_are_byte_identical_with_a_warm_store() {
    // Prime a store across a slice of the fault corpus, then re-verify warm
    // and from scratch: every stable rendering must match byte for byte.
    let dir = tmp_store("faults");
    let cases: Vec<_> = fault_corpus().into_iter().take(6).collect();
    {
        let v = Verifier::builder().store(&dir).build();
        for case in &cases {
            v.verify(&VerifyRequest::programs(
                case.original.clone(),
                case.mutant.clone(),
            ))
            .unwrap();
            // Also prove the reflexive pair so the store carries positive
            // sub-proofs covering the mutants' shared structure.
            v.verify(&VerifyRequest::programs(
                case.original.clone(),
                case.original.clone(),
            ))
            .unwrap();
        }
        v.flush_store().unwrap();
    }
    let warm = Verifier::builder().store(&dir).build();
    assert!(warm.session_stats().store_eq_loaded > 0);
    let mut store_hits = 0;
    for case in &cases {
        let scratch = Verifier::new()
            .verify(&VerifyRequest::programs(
                case.original.clone(),
                case.mutant.clone(),
            ))
            .unwrap();
        let out = warm
            .verify(&VerifyRequest::programs(
                case.original.clone(),
                case.mutant.clone(),
            ))
            .unwrap();
        assert!(!out.report.is_equivalent(), "{}: mutant caught", case.name);
        assert_eq!(
            out.report.render_stable(),
            scratch.report.render_stable(),
            "{}: byte-identical to from-scratch",
            case.name
        );
        store_hits += out.report.stats.store_hits;
    }
    assert!(store_hits > 0, "the warm store discharged some sub-proofs");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_epoch_log_degrades_cold_and_heals_on_next_flush() {
    // A log from an older compaction generation than the snapshot must be
    // ignored with a typed warning, never merged — and the next flush must
    // rewrite the store clean so the warning does not recur forever.
    let dir = primed_store("epoch");
    let stale_log = fs::read(dir.join("log.jsonl")).unwrap();

    // Compact: snapshot moves to the next epoch, the log is consumed.
    Verifier::builder()
        .store(&dir)
        .build()
        .checkpoint_store()
        .unwrap();
    assert!(
        !dir.join("log.jsonl").exists(),
        "checkpoint consumed the log"
    );

    // Resurrect the pre-compaction log, as a crash between the snapshot
    // rename and the log unlink would.
    fs::write(dir.join("log.jsonl"), &stale_log).unwrap();
    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();

    let v = Verifier::builder().store(&dir).build();
    assert!(
        v.store_warnings()
            .iter()
            .any(|w| w.kind == StoreWarningKind::EpochMismatch),
        "stale generation is a typed warning: {:?}",
        v.store_warnings()
    );
    assert!(
        v.session_stats().store_eq_loaded > 0,
        "the snapshot itself still seeds the session"
    );
    let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert_eq!(
        out.report.render_stable(),
        scratch.report.render_stable(),
        "a stale log never changes the stable rendering"
    );

    // The open marked the store for rewrite: this flush compacts, leaving
    // a single-generation store that reopens warning-free.
    v.flush_store().unwrap().unwrap();
    let healed = Verifier::builder().store(&dir).build();
    assert!(
        healed.store_warnings().is_empty(),
        "healed store reopens clean: {:?}",
        healed.store_warnings()
    );
    assert!(healed.session_stats().store_eq_loaded > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_during_checkpoint_leaves_a_loadable_store() {
    // A crash after writing `snapshot.jsonl.tmp` but before the rename
    // leaves the tmp file behind; the published files are untouched, so the
    // reopen must be warning-free and byte-identical, and the next
    // checkpoint must simply write over the debris.
    let dir = primed_store("crashckpt");
    fs::write(
        dir.join("snapshot.jsonl.tmp"),
        "{\"half\":\"written snapshot, no footer",
    )
    .unwrap();
    let scratch = Verifier::new().verify_source(FIG1_A, FIG1_C).unwrap();

    let v = Verifier::builder().store(&dir).build();
    assert!(
        v.store_warnings().is_empty(),
        "an orphaned tmp file is not part of the store: {:?}",
        v.store_warnings()
    );
    assert!(v.session_stats().store_eq_loaded > 0);
    let out = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(out.report.stats.store_hits > 0);
    assert_eq!(out.report.render_stable(), scratch.report.render_stable());

    // Re-checkpoint: the tmp name is reused and consumed by the rename.
    v.checkpoint_store().unwrap();
    assert!(dir.join("snapshot.jsonl").exists());
    assert!(
        !dir.join("snapshot.jsonl.tmp").exists(),
        "the checkpoint consumed the orphaned tmp file"
    );
    let reopened = Verifier::builder().store(&dir).build();
    assert!(reopened.store_warnings().is_empty());
    assert!(reopened.session_stats().store_eq_loaded > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn per_request_limits_override_budgets_without_cross_talk() {
    let v = Verifier::new();
    // A starved request comes back inconclusive...
    let starved = v
        .verify_with_limits(
            &VerifyRequest::source(FIG1_A, FIG1_C),
            &RequestLimits {
                max_work: Some(1),
                ..RequestLimits::default()
            },
        )
        .unwrap();
    assert!(!starved.report.is_equivalent());
    assert!(starved.report.budget_exhausted.is_some());
    // ...and the next ordinary request on the same engine is unaffected.
    let ok = v.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(ok.report.is_equivalent());

    // A pre-cancelled per-request token starves only its own request.
    let token = arrayeq_engine::CancelToken::new();
    token.cancel();
    let cancelled = v
        .verify_with_limits(
            &VerifyRequest::source(FIG1_A, FIG1_C),
            &RequestLimits {
                cancel: Some(token),
                ..RequestLimits::default()
            },
        )
        .unwrap();
    assert!(!cancelled.report.is_equivalent());
    let ok2 = v
        .verify_with_limits(
            &VerifyRequest::source(FIG1_A, FIG1_C),
            &RequestLimits {
                deadline: Some(Duration::from_secs(60)),
                ..RequestLimits::default()
            },
        )
        .unwrap();
    assert!(ok2.report.is_equivalent());
}
