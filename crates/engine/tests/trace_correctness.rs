//! Correctness of the proof-trace subsystem.
//!
//! The hard invariant: tracing is *observation only*.  Whether the
//! collector is off, recording for JSONL or recording for a Chrome
//! profile, the verdict and the byte content of `render_stable()` are
//! identical at every `--jobs` count over the Fig. 1 and fault-injection
//! corpora.  On top of that, the sinks themselves must be well-formed:
//! every JSONL line parses with the engine's own `JsonValue` parser, span
//! open/close events balance per worker, and a mutant's trace names the
//! failing output's provenance.
//!
//! Trace state (collector, metrics registry, worker ids) is process-global,
//! so every test here serializes on one mutex — and they all live in this
//! one integration-test binary so no other test process observes an
//! installed collector.

use arrayeq_engine::{JsonValue, Verifier, VerifyRequest};
use arrayeq_lang::corpus::{FIG1_A, FIG1_B, FIG1_C, FIG1_D};
use arrayeq_trace::{Collector, Event, Phase};
use arrayeq_transform::mutate::fault_corpus;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

/// Runs one request on a fresh engine and returns `(render_stable,
/// verdict)` plus the collector when `traced`.
fn run_once(
    request: &VerifyRequest,
    jobs: usize,
    traced: bool,
) -> (String, String, Option<Arc<Collector>>) {
    let collector = traced.then(|| Arc::new(Collector::new()));
    let mut builder = Verifier::builder().jobs(jobs);
    if let Some(c) = &collector {
        builder = builder.trace_sink(c.clone());
    }
    let verifier = builder.build();
    let outcome = verifier.verify(request).expect("pipeline ok");
    if collector.is_some() {
        arrayeq_trace::uninstall();
    } else {
        assert!(!arrayeq_trace::enabled(), "no collector leaked");
    }
    (
        outcome.report.render_stable(),
        outcome.report.verdict.to_string(),
        collector,
    )
}

fn corpus() -> Vec<(String, VerifyRequest)> {
    let mut pairs = vec![
        ("fig1-a-b".to_owned(), VerifyRequest::source(FIG1_A, FIG1_B)),
        ("fig1-a-c".to_owned(), VerifyRequest::source(FIG1_A, FIG1_C)),
        ("fig1-a-d".to_owned(), VerifyRequest::source(FIG1_A, FIG1_D)),
        ("fig1-c-b".to_owned(), VerifyRequest::source(FIG1_C, FIG1_B)),
    ];
    for (i, case) in fault_corpus().into_iter().enumerate() {
        pairs.push((
            format!("mutant-{i}-{}", case.name),
            VerifyRequest::programs(case.original, case.mutant),
        ));
    }
    pairs
}

/// The acceptance property: tracing (off, recording-for-JSONL,
/// recording-for-Chrome) yields byte-identical `render_stable()` and
/// identical verdicts at jobs 1 and 8, over the Fig. 1 + fault corpora.
/// Both serializations of every recorded run must also be well-formed.
#[test]
fn tracing_never_changes_reports_at_any_job_count() {
    let _g = LOCK.lock().unwrap();
    for (name, request) in corpus() {
        for jobs in [1usize, 8] {
            let (stable_off, verdict_off, _) = run_once(&request, jobs, false);
            // "JSONL" and "chrome" share the recording path; exercise both
            // serializations from independently recorded runs anyway, so a
            // serialization-order bug in either sink would surface here.
            let (stable_jsonl, verdict_jsonl, sink_a) = run_once(&request, jobs, true);
            let (stable_chrome, verdict_chrome, sink_b) = run_once(&request, jobs, true);
            assert_eq!(
                stable_off, stable_jsonl,
                "{name} jobs={jobs}: tracing (jsonl) changed render_stable"
            );
            assert_eq!(
                stable_off, stable_chrome,
                "{name} jobs={jobs}: tracing (chrome) changed render_stable"
            );
            assert_eq!(verdict_off, verdict_jsonl, "{name} jobs={jobs}");
            assert_eq!(verdict_off, verdict_chrome, "{name} jobs={jobs}");

            let sink_a = sink_a.unwrap();
            let sink_b = sink_b.unwrap();
            assert!(!sink_a.is_empty(), "{name} jobs={jobs}: trace recorded");
            for line in sink_a.to_jsonl().lines() {
                JsonValue::parse(line)
                    .unwrap_or_else(|e| panic!("{name} jobs={jobs}: bad JSONL line {line}: {e:?}"));
            }
            let chrome = JsonValue::parse(&sink_b.to_chrome())
                .unwrap_or_else(|e| panic!("{name} jobs={jobs}: bad chrome doc: {e:?}"));
            let trace_events = chrome
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .expect("chrome doc has a traceEvents array");
            assert!(!trace_events.is_empty());
        }
    }
}

/// Every JSONL line parses, carries the required keys, and span open/close
/// events balance per worker lane — on a parallel run with real worker
/// lanes in the stream.
#[test]
fn jsonl_wellformed_and_spans_balance_per_worker() {
    let _g = LOCK.lock().unwrap();
    let collector = Arc::new(Collector::new());
    let verifier = Verifier::builder()
        .jobs(8)
        .trace_sink(collector.clone())
        .build();
    verifier
        .verify(&VerifyRequest::source(FIG1_A, FIG1_C))
        .unwrap();
    arrayeq_trace::uninstall();

    let jsonl = collector.to_jsonl();
    assert!(!jsonl.is_empty());
    let mut depth: HashMap<i64, i64> = HashMap::new();
    for line in jsonl.lines() {
        let v = JsonValue::parse(line).expect("line parses");
        let worker = v.get("worker").and_then(|w| w.as_i64()).expect("worker");
        let ph = v.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(v.get("ts").and_then(|t| t.as_i64()).is_some(), "ts");
        assert!(v.get("name").and_then(|n| n.as_str()).is_some(), "name");
        match ph {
            "B" => *depth.entry(worker).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(worker).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "close without open on worker {worker}");
                assert!(v.get("dur").and_then(|t| t.as_i64()).is_some(), "dur");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (worker, d) in depth {
        assert_eq!(d, 0, "worker {worker} ended with {d} unclosed spans");
    }
}

/// A fault-injected mutant's trace names the failing output: the stream
/// carries its `output_verdict` (ok=false) and at least one provenance /
/// span event attributed to that output.
#[test]
fn mutant_trace_contains_failing_output_provenance() {
    let _g = LOCK.lock().unwrap();
    let case = fault_corpus().into_iter().next().expect("corpus non-empty");
    let collector = Arc::new(Collector::new());
    let verifier = Verifier::builder().trace_sink(collector.clone()).build();
    let outcome = verifier
        .verify(&VerifyRequest::programs(case.original, case.mutant))
        .unwrap();
    arrayeq_trace::uninstall();
    assert!(
        !outcome.report.is_equivalent(),
        "fault corpus case is inequivalent"
    );
    let failing: Vec<String> = outcome
        .report
        .diagnostics
        .iter()
        .filter_map(|d| d.output_array.clone())
        .collect();
    assert!(!failing.is_empty(), "diagnostics name their output");

    let events = collector.events();
    let field_str = |ev: &Event, key: &str| -> Option<String> {
        ev.fields.iter().find_map(|(k, v)| match v {
            arrayeq_trace::Value::Str(s) if *k == key => Some(s.clone()),
            _ => None,
        })
    };
    let output = &failing[0];
    let verdict_event = events.iter().any(|ev| {
        ev.name == "output_verdict"
            && field_str(ev, "output").as_deref() == Some(output)
            && ev
                .fields
                .iter()
                .any(|(k, v)| *k == "ok" && *v == arrayeq_trace::Value::Bool(false))
    });
    assert!(verdict_event, "output_verdict(ok=false) for {output}");
    let attributed_span = events.iter().any(|ev| {
        matches!(ev.phase, Phase::Open)
            && (ev.name == "output" || ev.name == "task")
            && field_str(ev, "output").as_deref() == Some(output)
    });
    assert!(attributed_span, "an output/task span names {output}");
}

/// The session metrics registry accumulates across queries and snapshots
/// to well-formed JSON.
#[test]
fn metrics_registry_accumulates_and_serializes() {
    let _g = LOCK.lock().unwrap();
    let verifier = Verifier::builder().metrics(true).build();
    verifier
        .verify(&VerifyRequest::source(FIG1_A, FIG1_C))
        .unwrap();
    verifier
        .verify(&VerifyRequest::source(FIG1_A, FIG1_B))
        .unwrap();
    let snapshot = verifier.metrics_snapshot().expect("metrics enabled");
    arrayeq_trace::uninstall_metrics();

    let total: u64 = snapshot.metrics.iter().map(|m| m.count).sum();
    assert!(total > 0, "some latency samples were recorded");
    let feas = &snapshot.metrics[0];
    assert_eq!(feas.name, "feasibility");
    assert!(feas.count > 0, "feasibility computes were metered");
    assert_eq!(feas.buckets.iter().sum::<u64>(), feas.count);

    let json = JsonValue::parse(&snapshot.to_json()).expect("snapshot JSON parses");
    let metrics = json
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    assert_eq!(metrics.len(), 5);
    for m in metrics {
        assert!(m.get("name").and_then(|v| v.as_str()).is_some());
        assert_eq!(m.get("unit").and_then(|v| v.as_str()), Some("us"));
        assert!(m.get("count").and_then(|v| v.as_i64()).is_some());
    }
}

/// `--explain`'s renderer, driven end-to-end through an incremental run:
/// clean outputs are credited to the baseline and every checked output
/// names a discharge mechanism or a direct proof.
#[test]
fn explain_renders_incremental_provenance() {
    let _g = LOCK.lock().unwrap();
    let producer = Verifier::new();
    let first = producer.verify_source(FIG1_A, FIG1_C).unwrap();
    assert!(first.report.is_equivalent());
    let baseline = producer.export_baseline(&first.report);

    let collector = Arc::new(Collector::new());
    let consumer = Verifier::builder().trace_sink(collector.clone()).build();
    let inc = consumer
        .verify_incremental(&VerifyRequest::source(FIG1_A, FIG1_C), &baseline)
        .unwrap();
    arrayeq_trace::uninstall();
    assert!(inc.outcome.report.is_equivalent());

    let text = arrayeq_trace::explain::render(&collector);
    assert!(
        text.contains("discharged by baseline (clean"),
        "clean outputs credited to the baseline:\n{text}"
    );
}
