//! Regenerates every table of `EXPERIMENTS.md` (experiments E1–E12) and
//! prints them to stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p arrayeq-bench --bin run_experiments            # all
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp e6
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr1 \
//!     [--out BENCH_PR1.json]   # tabling keying-scheme comparison snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr4 \
//!     [--out BENCH_PR4.json] [--quick]   # parallel checking snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr6 \
//!     [--out BENCH_PR6.json] [--quick]   # incremental re-verification snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr7 \
//!     [--out BENCH_PR7.json] [--quick]   # tracing-overhead snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr8 \
//!     [--out BENCH_PR8.json] [--quick]   # persistent store + daemon snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr9 \
//!     [--out BENCH_PR9.json] [--quick]   # checked-arithmetic overhead snapshot
//! cargo run --release -p arrayeq-bench --bin run_experiments -- --exp pr10 \
//!     [--out BENCH_PR10.json] [--quick]  # DNF engine + parametric-bounds snapshot
//! ```

use arrayeq_bench::*;
use arrayeq_core::{verify_source, CheckOptions, Focus};
use arrayeq_lang::corpus::*;
use arrayeq_lang::parser::parse_program;
use arrayeq_omega::Relation;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let run = |id: &str| only.as_deref().map(|o| o == id).unwrap_or(true);

    if run("e1") {
        e1_fig1_verdicts();
    }
    if run("e2") {
        e2_algebraic_properties();
    }
    if run("e3") {
        e3_flattening_and_matching();
    }
    if run("e4") {
        e4_diagnostics();
    }
    if run("e5") {
        e5_scaling_addg_size();
    }
    if run("e6") {
        e6_scaling_loop_bounds();
    }
    if run("e7") {
        e7_extended_overhead();
    }
    if run("e8") {
        e8_realistic_kernels();
    }
    if run("e9") {
        e9_tabling_ablation();
    }
    if run("e10") {
        e10_recurrences();
    }
    if run("e11") {
        e11_focused_checking();
    }
    if run("e12") {
        e12_omega_ops();
    }
    // These write files, so they only run when explicitly requested.
    if only.as_deref() == Some("pr1") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR1.json".to_owned());
        pr1_tabling_keying(&out);
    }
    if only.as_deref() == Some("pr2") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR2.json".to_owned());
        pr2_witness_engine(&out);
    }
    if only.as_deref() == Some("pr3") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR3.json".to_owned());
        pr3_cross_query(&out);
    }
    if only.as_deref() == Some("pr5") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR5.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr5_normalization(&out, quick);
    }
    if only.as_deref() == Some("pr4") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR4.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr4_parallel_checking(&out, quick);
    }
    if only.as_deref() == Some("pr6") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR6.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr6_incremental(&out, quick);
    }
    if only.as_deref() == Some("pr7") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR7.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr7_trace_overhead(&out, quick);
    }
    if only.as_deref() == Some("pr8") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR8.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr8_persistent_service(&out, quick);
    }
    if only.as_deref() == Some("pr9") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR9.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr9_checked_arithmetic(&out, quick);
    }
    if only.as_deref() == Some("pr10") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR10.json".to_owned());
        let quick = args.iter().any(|a| a == "--quick");
        pr10_dnf_engine(&out, quick);
    }
}

/// Logical CPUs visible to this process — stamped into every `BENCH_*.json`
/// snapshot so a reader can judge whether a recorded scaling number was
/// core-bound on the recording host.
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn e1_fig1_verdicts() {
    header("E1", "Fig. 1 verdicts (paper: a=b=c, d inequivalent)");
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "pair", "verdict", "paths", "time/ms"
    );
    for (name, a, b) in fig1_pairs() {
        let (report, t) = timed(|| verify_source(&a, &b, &CheckOptions::default()).unwrap());
        println!(
            "{:<10} {:>14} {:>12} {:>10}",
            name,
            report.verdict.to_string(),
            report.stats.paths_compared,
            ms(t)
        );
    }
}

fn e2_algebraic_properties() {
    header(
        "E2",
        "Fig. 3 algebraic normalisation (associativity / commutativity / both)",
    );
    let assoc_a = "#define N 32\nvoid f(int X[], int Y[], int Z[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = (X[k] + Y[k]) + Z[k]; }";
    let assoc_b = "#define N 32\nvoid f(int X[], int Y[], int Z[], int C[]) { int k; for (k=0;k<N;k++) t1: C[k] = X[k] + (Y[k] + Z[k]); }";
    let comm_a = "#define N 32\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = X[2*k] * Y[k]; }";
    let comm_b = "#define N 32\nvoid f(int X[], int Y[], int C[]) { int k; for (k=0;k<N;k++) t1: C[k] = Y[k] * X[2*k]; }";
    let both_a = "#define N 32\nvoid f(int X[], int Y[], int Z[], int W[], int C[]) { int k; for (k=0;k<N;k++) s1: C[k] = ((X[k] + Y[k]) + Z[k]) + W[k]; }";
    let both_b = "#define N 32\nvoid f(int X[], int Y[], int Z[], int W[], int C[]) { int k; for (k=0;k<N;k++) t1: C[k] = (W[k] + Z[k]) + (Y[k] + X[k]); }";
    println!("{:<16} {:>10} {:>10}", "property", "basic", "extended");
    for (name, a, b) in [
        ("associativity", assoc_a, assoc_b),
        ("commutativity", comm_a, comm_b),
        ("combination", both_a, both_b),
    ] {
        let basic = verify_source(a, b, &CheckOptions::basic()).unwrap();
        let ext = verify_source(a, b, &CheckOptions::default()).unwrap();
        println!(
            "{:<16} {:>10} {:>10}",
            name,
            if basic.is_equivalent() { "EQ" } else { "NEQ" },
            if ext.is_equivalent() { "EQ" } else { "NEQ" }
        );
    }
}

fn e3_flattening_and_matching() {
    header(
        "E3",
        "Fig. 5: flattening (a)/(c) and the output-input mapping equalities",
    );
    // The four mappings of Section 5.2, rebuilt from the paper's text.
    let d = "0 <= k < 1024";
    let pairs = [
        ("C->B (path p/z)", format!("{{ [k] -> [2k] : {d} }}")),
        ("C->B (path q/x)", format!("{{ [k] -> [k] : {d} }}")),
        ("C->A (path r/y)", format!("{{ [k] -> [2k] : {d} }}")),
        ("C->A (path s/w)", format!("{{ [k] -> [k] : {d} }}")),
    ];
    for (name, text) in &pairs {
        let m = Relation::parse(text).unwrap();
        println!("{:<20} {}", name, m);
    }
    let report = verify_source(FIG1_A, FIG1_C, &CheckOptions::default()).unwrap();
    println!(
        "fig1 (a) vs (c): {}  flattenings={} matchings={} mapping-equalities={}",
        report.verdict,
        report.stats.flattenings,
        report.stats.matchings,
        report.stats.mapping_equalities
    );
}

fn e4_diagnostics() {
    header(
        "E4",
        "Section 6.1 diagnostics for the erroneous version (d)",
    );
    let report = verify_source(FIG1_A, FIG1_D, &CheckOptions::default()).unwrap();
    println!("{}", report.summary());
}

fn e5_scaling_addg_size() {
    header("E5", "checker time vs ADDG size (statements), N = 256");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "statements", "verdict", "paths", "time/ms"
    );
    for layers in [2usize, 4, 8, 16, 32] {
        let w = generated_pair(layers, 256, 11);
        let (r, t) = timed(|| w.check(&CheckOptions::default()));
        println!(
            "{:<14} {:>10} {:>12} {:>10}",
            layers + 1,
            r.verdict.to_string(),
            r.stats.paths_compared,
            ms(t)
        );
    }
}

fn e6_scaling_loop_bounds() {
    header(
        "E6",
        "checker vs simulation as the loop bound N grows (fig1(a)-shaped pair)",
    );
    println!(
        "{:<10} {:>14} {:>16} {:>10}",
        "N", "checker/ms", "simulation/ms", "agree"
    );
    for n in [256i64, 1024, 4096, 16384, 65536] {
        let w = fig1a_pipeline_at_size(n, 4, 3);
        let (r, tc) = timed(|| w.check(&CheckOptions::default()));
        let (agree, ts) = timed(|| simulate_fig1_pair(&w.original, &w.transformed, n));
        println!(
            "{:<10} {:>14} {:>16} {:>10}",
            n,
            ms(tc),
            ms(ts),
            agree && r.is_equivalent()
        );
    }
}

fn e7_extended_overhead() {
    header(
        "E7",
        "extended vs basic method on pairs WITHOUT algebraic transformations",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "statements", "basic/ms", "extended/ms", "ratio"
    );
    for layers in [2usize, 4, 8] {
        // Loop-and-propagation-only pipeline: filter out algebraic steps by
        // checking with both methods on the same pair; the pair itself is
        // produced with a pipeline seed that happens to apply none (seed 17
        // applies loop transformations only for these sizes — verified by the
        // basic run below coming out equivalent).
        let w = generated_pair(layers, 256, 17);
        let basic_eq = w.check(&CheckOptions::basic());
        let (_, tb) = timed(|| w.check(&CheckOptions::basic()));
        let (_, te) = timed(|| w.check(&CheckOptions::default()));
        let ratio = te.as_secs_f64() / tb.as_secs_f64().max(1e-9);
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x   (basic verdict: {})",
            layers + 1,
            ms(tb),
            ms(te),
            ratio,
            basic_eq.verdict
        );
    }
}

fn e8_realistic_kernels() {
    header(
        "E8",
        "realistic kernel suite, random transformation pipelines (paper: < 100 s each)",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "kernel", "verdict", "paths", "time/ms"
    );
    let mut max = Duration::ZERO;
    for w in kernel_suite(23) {
        let (r, t) = timed(|| w.check(&CheckOptions::default()));
        max = max.max(t);
        println!(
            "{:<14} {:>12} {:>12} {:>10}",
            w.name,
            r.verdict.to_string(),
            r.stats.paths_compared,
            ms(t)
        );
    }
    println!("slowest kernel: {} ms (paper bound: 100 000 ms)", ms(max));
}

fn e9_tabling_ablation() {
    header("E9", "tabling ablation (shared sub-ADDGs)");
    println!(
        "{:<14} {:>14} {:>16} {:>12}",
        "statements", "with/ms", "without/ms", "table hits"
    );
    for layers in [4usize, 8, 16] {
        let w = generated_pair(layers, 256, 29);
        let (r1, t1) = timed(|| w.check(&CheckOptions::default()));
        let (_, t2) = timed(|| w.check(&CheckOptions::default().without_tabling()));
        println!(
            "{:<14} {:>14} {:>16} {:>12}",
            layers + 1,
            ms(t1),
            ms(t2),
            r1.stats.table_hits
        );
    }
}

fn e10_recurrences() {
    header("E10", "recurrence (cyclic ADDG) handling");
    let broken = KERNEL_RECURRENCE.replace("Y[0] = X[0] + 0;", "Y[0] = X[0] + 1;");
    for (name, a, b) in [
        (
            "scan vs scan",
            KERNEL_RECURRENCE.to_string(),
            KERNEL_RECURRENCE.to_string(),
        ),
        ("scan vs broken base", KERNEL_RECURRENCE.to_string(), broken),
    ] {
        let (r, t) = timed(|| verify_source(&a, &b, &CheckOptions::default()).unwrap());
        println!(
            "{:<22} {:>14} {:>10} ms",
            name,
            r.verdict.to_string(),
            ms(t)
        );
    }
}

fn e11_focused_checking() {
    header(
        "E11",
        "focused checking (output subset + intermediate correspondences)",
    );
    let full_opts = CheckOptions::default();
    let focused_opts = CheckOptions::default().with_focus(Focus {
        outputs: vec!["C".into()],
        intermediate_pairs: vec![("tmp".into(), "tmp".into()), ("buf".into(), "buf".into())],
    });
    let a = parse_program(FIG1_A).unwrap();
    let b = parse_program(FIG1_B).unwrap();
    let (r1, t1) = timed(|| arrayeq_core::verify_programs(&a, &b, &full_opts).unwrap());
    let (r2, t2) = timed(|| arrayeq_core::verify_programs(&a, &b, &focused_opts).unwrap());
    println!(
        "full:    {} in {} ms ({} path pairs)",
        r1.verdict,
        ms(t1),
        r1.stats.paths_compared
    );
    println!(
        "focused: {} in {} ms ({} path pairs)",
        r2.verdict,
        ms(t2),
        r2.stats.paths_compared
    );
}

/// PR1 acceptance snapshot: checker wall-time on the `scaling_addg_size`
/// workloads with the three tabling configurations — structural-hash keys
/// (default), legacy canonical-string keys and no tabling — measured in one
/// run and written to a JSON file.
fn pr1_tabling_keying(out_path: &str) {
    header(
        "PR1",
        "tabling keying scheme on scaling_addg_size workloads",
    );
    const REPEATS: usize = 5;
    const N: i64 = 256;
    const SEED: u64 = 11;
    let layer_counts = [4usize, 8, 16, 32];
    // Pre-refactor wall-times of the identical workloads (same machine, same
    // best-of-5 methodology), measured at the last commit before the
    // canonicalization/hashing rework ("Bootstrap cargo workspace ...",
    // string-keyed tabling, no feasibility memo, heap-allocated LinExpr).
    // The old keying cannot be rebuilt from the current sources, so the
    // measurement is recorded here as the committed baseline.
    let seed_baseline_ms = [3.308, 17.997, 67.759, 404.804];

    let measure = |w: &Workload, opts: &CheckOptions| -> (f64, arrayeq_core::Report) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPEATS {
            let (r, t) = timed(|| w.check(opts));
            assert!(r.is_equivalent(), "pr1 workload must verify: {}", w.name);
            best = best.min(t.as_secs_f64() * 1e3);
            last = Some(r);
        }
        (best, last.expect("at least one repeat"))
    };

    println!(
        "{:<12} {:>10} {:>14} {:>16} {:>14} {:>10} {:>10}",
        "statements",
        "seed/ms",
        "hash-keys/ms",
        "string-keys/ms",
        "no-table/ms",
        "speedup",
        "lookups"
    );
    let mut rows = Vec::new();
    let mut seed_speedup_log_sum = 0.0;
    let mut key_speedup_log_sum = 0.0;
    for (i, layers) in layer_counts.into_iter().enumerate() {
        let w = generated_pair(layers, N, SEED);
        let (hash_ms, hash_report) = measure(&w, &CheckOptions::default());
        let (string_ms, _) = measure(&w, &CheckOptions::default().with_string_table_keys());
        let (no_tab_ms, _) = measure(&w, &CheckOptions::default().without_tabling());
        let seed_ms = seed_baseline_ms[i];
        let seed_speedup = seed_ms / hash_ms;
        let key_speedup = string_ms / hash_ms;
        seed_speedup_log_sum += seed_speedup.ln();
        key_speedup_log_sum += key_speedup.ln();
        println!(
            "{:<12} {:>10.3} {:>14.3} {:>16.3} {:>14.3} {:>9.2}x {:>10}",
            layers + 1,
            seed_ms,
            hash_ms,
            string_ms,
            no_tab_ms,
            seed_speedup,
            hash_report.stats.table_lookups,
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"statements\": {},\n",
                "      \"seed_string_keyed_baseline_ms\": {:.3},\n",
                "      \"hash_keys_ms\": {:.3},\n",
                "      \"string_keys_ms\": {:.3},\n",
                "      \"no_tabling_ms\": {:.3},\n",
                "      \"speedup_vs_seed_baseline\": {:.3},\n",
                "      \"speedup_hash_vs_string_same_run\": {:.3},\n",
                "      \"table_lookups\": {},\n",
                "      \"table_hits\": {},\n",
                "      \"table_entries\": {}\n",
                "    }}"
            ),
            layers + 1,
            seed_ms,
            hash_ms,
            string_ms,
            no_tab_ms,
            seed_speedup,
            key_speedup,
            hash_report.stats.table_lookups,
            hash_report.stats.table_hits,
            hash_report.stats.table_entries,
        ));
    }
    let seed_geomean = (seed_speedup_log_sum / layer_counts.len() as f64).exp();
    let key_geomean = (key_speedup_log_sum / layer_counts.len() as f64).exp();
    let (memo_hits, memo_misses) = arrayeq_omega::feasibility_memo_stats();
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR1: checker wall-time on scaling_addg_size, tabling ",
            "keying schemes and pre-refactor baseline\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr1\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"baseline_note\": \"seed_string_keyed_baseline_ms measured pre-refactor ",
            "(string tabling keys, no feasibility memo, heap LinExpr) on the same ",
            "machine with the same best-of-N methodology and is the faithful ",
            "end-to-end baseline; string_keys_ms re-runs the legacy key ",
            "construction in this run on top of the optimised substrate and the ",
            "widened tabling coverage, isolating the keying cost only\",\n",
            "  \"config\": {{ \"n\": {}, \"seed\": {}, \"repeats\": {}, ",
            "\"timing\": \"best of repeats, ms\" }},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"geomean_speedup_vs_seed_baseline\": {:.3},\n",
            "  \"geomean_speedup_hash_vs_string_same_run\": {:.3},\n",
            "  \"feasibility_memo\": {{ \"hits\": {}, \"misses\": {} }}\n",
            "}}\n"
        ),
        host_parallelism(),
        N,
        SEED,
        REPEATS,
        rows.join(",\n"),
        seed_geomean,
        key_geomean,
        memo_hits,
        memo_misses,
    );
    std::fs::write(out_path, &json).expect("write PR1 snapshot");
    println!("geomean speedup vs pre-refactor seed baseline: {seed_geomean:.2}x");
    println!("geomean speedup hash vs string keys (same run): {key_geomean:.2}x");
    println!("snapshot written to {out_path}");
}

/// PR2 acceptance snapshot: the witness engine over the fault-injection
/// corpus — per case, the checker wall-time and the witness-extraction
/// wall-time (sampling + replay + slicing), plus the aggregate detection and
/// confirmation rates.  Written to a JSON file.
fn pr2_witness_engine(out_path: &str) {
    use arrayeq_core::{verify_programs, Verdict};
    use arrayeq_transform::mutate::fault_corpus;
    use arrayeq_witness::{extract_witnesses, WitnessOptions};
    header(
        "PR2",
        "witness extraction over the fault-injection corpus (check vs witness time)",
    );
    const REPEATS: usize = 3;
    let corpus = fault_corpus();
    let wopts = WitnessOptions::default();
    println!(
        "{:<42} {:>10} {:>12} {:>10} {:>10}",
        "case", "check/ms", "witness/ms", "verdict", "confirmed"
    );
    let mut rows = Vec::new();
    let mut detected = 0usize;
    let mut confirmed = 0usize;
    let mut total_check = 0.0f64;
    let mut total_witness = 0.0f64;
    for case in &corpus {
        let mut check_ms = f64::INFINITY;
        let mut witness_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPEATS {
            let (report, tc) = timed(|| {
                verify_programs(&case.original, &case.mutant, &CheckOptions::default())
                    .expect("corpus case verifies")
            });
            let (ws, tw) = timed(|| {
                extract_witnesses(&case.original, &case.mutant, &report, &wopts)
                    .expect("witness extraction runs")
            });
            check_ms = check_ms.min(tc.as_secs_f64() * 1e3);
            witness_ms = witness_ms.min(tw.as_secs_f64() * 1e3);
            last = Some((report, ws));
        }
        let (mut report, witnesses) = last.expect("at least one repeat");
        let is_detected = report.verdict == Verdict::NotEquivalent;
        let is_confirmed = witnesses.iter().any(|w| w.confirmed);
        detected += is_detected as usize;
        confirmed += is_confirmed as usize;
        total_check += check_ms;
        total_witness += witness_ms;
        println!(
            "{:<42} {:>10.3} {:>12.3} {:>10} {:>10}",
            case.name,
            check_ms,
            witness_ms,
            if is_detected { "NEQ" } else { "??" },
            is_confirmed
        );
        // PR3 unified the timing into CheckStats (check_time_us is stamped
        // by the checker; witness_time_us is stamped here from the measured
        // extraction), so every experiment row carries the same struct.
        report.witnesses = witnesses;
        report.stats.witness_time_us = (witness_ms * 1e3) as u64;
        rows.push(format!(
            concat!(
                "    {{ \"case\": \"{}\", \"check_ms\": {:.3}, \"witness_ms\": {:.3}, ",
                "\"detected\": {}, \"witness_confirmed\": {}, \"stats\": {} }}"
            ),
            case.name,
            check_ms,
            witness_ms,
            is_detected,
            is_confirmed,
            arrayeq_engine::stats_to_json(&report.stats),
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR2: witness engine — checker time vs witness-extraction ",
            "time (sampling + interpreter replay + ADDG slicing) over the fault-injection ",
            "corpus\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr2\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"config\": {{ \"repeats\": {}, \"timing\": \"best of repeats, ms\", ",
            "\"max_points\": {}, \"input_fills\": {} }},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"corpus_size\": {},\n",
            "  \"detected\": {},\n",
            "  \"witness_confirmed\": {},\n",
            "  \"total_check_ms\": {:.3},\n",
            "  \"total_witness_ms\": {:.3}\n",
            "}}\n"
        ),
        host_parallelism(),
        REPEATS,
        wopts.max_points,
        wopts.input_fills.len(),
        rows.join(",\n"),
        corpus.len(),
        detected,
        confirmed,
        total_check,
        total_witness,
    );
    std::fs::write(out_path, &json).expect("write PR2 snapshot");
    println!(
        "detected {detected}/{} mutants, {confirmed}/{} replay-confirmed; \
         total check {total_check:.1} ms, total witness extraction {total_witness:.1} ms",
        corpus.len(),
        corpus.len(),
    );
    println!("snapshot written to {out_path}");
}

/// PR3 acceptance snapshot: cross-query table reuse on the
/// repeated/perturbed corpus ([`pr3_round`]) — one shared-session
/// `Verifier` re-checking the whole sequence versus fresh per-call state,
/// measured in one run and written to a JSON file.  The engine session must
/// come out with a strictly higher combined hit rate *and* lower total wall
/// time, or this experiment aborts.
fn pr3_cross_query(out_path: &str) {
    use arrayeq_engine::{Verifier, VerifyRequest};
    header(
        "PR3",
        "cross-query table reuse: shared-session engine vs fresh per-call state",
    );
    const ROUNDS: u64 = 4;
    let rounds: Vec<Vec<VerifyRequest>> = (0..ROUNDS)
        .map(|r| {
            pr3_round(r)
                .into_iter()
                .map(|w| VerifyRequest::programs(w.original, w.transformed))
                .collect()
        })
        .collect();
    let queries_per_round = rounds[0].len();

    // Each pass runs on its own fresh OS thread so both start with a cold
    // thread-local feasibility memo (that memo outlives engines within a
    // thread, and letting the first pass warm it for the second would
    // contaminate the comparison in either direction).

    // Fresh per-call state: a new engine per query, so every query pays the
    // same fingerprinting overhead as the session but nothing carries over.
    let (fresh_round_ms, fresh_lookups, fresh_hits, fresh_total) = std::thread::scope(|s| {
        s.spawn(|| {
            let mut round_ms = Vec::new();
            let mut lookups = 0u64;
            let mut hits = 0u64;
            let (_, total) = timed(|| {
                for round in &rounds {
                    let (_, t) = timed(|| {
                        for request in round {
                            let engine = Verifier::new();
                            let outcome = engine.verify(request).expect("pr3 workload verifies");
                            assert!(outcome.report.is_equivalent(), "pr3 pairs are equivalent");
                            lookups += outcome.report.stats.table_lookups;
                            hits += outcome.report.stats.table_hits
                                + outcome.report.stats.shared_table_hits;
                        }
                    });
                    round_ms.push(t.as_secs_f64() * 1e3);
                }
            });
            (round_ms, lookups, hits, total)
        })
        .join()
        .expect("fresh pass runs")
    });

    // Shared session: one engine for the entire sequence.
    let (shared_round_ms, shared_round_hit_rate, session, shared_total) = std::thread::scope(|s| {
        s.spawn(|| {
            let engine = Verifier::new();
            let mut round_ms = Vec::new();
            let mut hit_rates = Vec::new();
            let (_, total) = timed(|| {
                for round in &rounds {
                    let (_, t) = timed(|| {
                        for request in round {
                            let outcome = engine.verify(request).expect("pr3 workload verifies");
                            assert!(outcome.report.is_equivalent(), "pr3 pairs are equivalent");
                        }
                    });
                    round_ms.push(t.as_secs_f64() * 1e3);
                    hit_rates.push(engine.session_stats().combined_hit_rate());
                }
            });
            (round_ms, hit_rates, engine.session_stats(), total)
        })
        .join()
        .expect("shared pass runs")
    });

    let fresh_ms = fresh_total.as_secs_f64() * 1e3;
    let shared_ms = shared_total.as_secs_f64() * 1e3;
    let fresh_rate = if fresh_lookups == 0 {
        0.0
    } else {
        fresh_hits as f64 / fresh_lookups as f64
    };
    let shared_rate = session.combined_hit_rate();

    println!(
        "{:<8} {:>12} {:>12} {:>22}",
        "round", "fresh/ms", "shared/ms", "shared hit rate (cum)"
    );
    let mut rows = Vec::new();
    for r in 0..ROUNDS as usize {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>21.1}%",
            r,
            fresh_round_ms[r],
            shared_round_ms[r],
            shared_round_hit_rate[r] * 100.0
        );
        rows.push(format!(
            concat!(
                "    {{ \"round\": {}, \"fresh_ms\": {:.3}, \"shared_ms\": {:.3}, ",
                "\"shared_cumulative_hit_rate\": {:.4} }}"
            ),
            r, fresh_round_ms[r], shared_round_ms[r], shared_round_hit_rate[r],
        ));
    }
    println!(
        "totals: fresh {fresh_ms:.1} ms ({:.1}% hit rate) vs shared {shared_ms:.1} ms \
         ({:.1}% hit rate), speedup {:.2}x",
        fresh_rate * 100.0,
        shared_rate * 100.0,
        fresh_ms / shared_ms
    );
    println!(
        "session: {} queries, {} shared-table entries, {} shared hits, \
         feasibility memo {} hits / {} misses",
        session.queries,
        session.shared_table_entries,
        session.shared_table_hits,
        session.feasibility_hits,
        session.feasibility_misses,
    );
    assert!(
        shared_rate > fresh_rate,
        "acceptance: shared session must have a strictly higher hit rate \
         ({shared_rate:.4} vs {fresh_rate:.4})"
    );
    // The hit-rate assert above is deterministic; the wall-clock comparison
    // is not (shared CI runners have noisy neighbours), so a timing
    // inversion warns instead of failing the run.
    if shared_ms >= fresh_ms {
        eprintln!(
            "WARNING: shared session was not faster this run \
             ({shared_ms:.1} ms vs {fresh_ms:.1} ms) — timing noise?"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR3: cross-query table reuse — one shared-session ",
            "Verifier re-checking a repeated/perturbed corpus vs fresh per-call state\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr3\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"corpus_note\": \"per round: 6 repeated pairs (identical every round: ",
            "generated L4/L8/L16 + fig1 a-b/a-c/b-c) and 2 perturbed pairs (same ",
            "original, round-specific transformation pipeline)\",\n",
            "  \"config\": {{ \"rounds\": {}, \"queries_per_round\": {}, ",
            "\"timing\": \"single pass, ms\" }},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"fresh_total_ms\": {:.3},\n",
            "  \"shared_total_ms\": {:.3},\n",
            "  \"speedup_shared_vs_fresh\": {:.3},\n",
            "  \"fresh_combined_hit_rate\": {:.4},\n",
            "  \"shared_combined_hit_rate\": {:.4},\n",
            "  \"session\": {}\n",
            "}}\n"
        ),
        host_parallelism(),
        ROUNDS,
        queries_per_round,
        rows.join(",\n"),
        fresh_ms,
        shared_ms,
        fresh_ms / shared_ms,
        fresh_rate,
        shared_rate,
        arrayeq_engine::session_to_json(&session),
    );
    std::fs::write(out_path, &json).expect("write PR3 snapshot");
    println!("snapshot written to {out_path}");
}

/// PR4 acceptance snapshot: intra-query parallel checking + rename-invariant
/// tabling keys, on wide multi-output kernels.
///
/// Measures, per workload:
///
/// * **Parallel scaling** — one-request wall time at `jobs ∈ {1, 2, 4, 8}`
///   (fresh engine per measurement so nothing carries over), with the
///   verdict and the stable report rendering asserted identical at every
///   worker count.  The `≥ 2×` speedup assertion at 4 threads is enforced
///   by the *full* experiment whenever the host actually has ≥ 4 cores;
///   `--quick` (the bounded CI smoke) asserts `≥ 1×` (no regression) on
///   multi-core hosts instead — best-of-1 timing on one small workload is
///   too noisy for the 2× gate.  On 1-core hosts (this container) the
///   measured numbers and the core count are recorded and the run only
///   warns: a wall-time speedup on fewer cores than workers is physically
///   impossible, not a regression.
/// * **Rename-invariant keys** — the same request checked sequentially with
///   the default fingerprint keys vs the positional-key baseline
///   (`position_table_keys`).  Because one fingerprint-key hit can discharge
///   a whole repeated chain, raw hit *rates* are not comparable across the
///   two schemes (the better scheme visits fewer sub-obligations); the
///   apples-to-apples number is the **effective hit rate**: the fraction of
///   the *baseline's* tabling lookups that the fingerprint scheme absorbs
///   from the table (directly or via an ancestor's hit), i.e.
///   `1 − fp_derived / pos_lookups`.  Also recorded: distinct sub-proofs
///   actually derived and relation compositions performed (the work that
///   sharing avoids).  The aggregate effective rate must beat the baseline
///   rate, or the experiment aborts.
/// * **Shared feasibility memo** — a `jobs = 8` session's feasibility-memo
///   hits (the PR3 snapshot recorded `feasibility_hits: 0`; the scoped
///   thread-local memo plus fresh worker threads make the shared level
///   live).
fn pr4_parallel_checking(out_path: &str, quick: bool) {
    use arrayeq_engine::{Verifier, VerifyRequest};
    header(
        "PR4",
        "intra-query parallel checking + rename-invariant tabling keys",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let repeats = if quick { 1 } else { 3 };
    let workloads: Vec<Workload> = if quick {
        vec![wide_pair(4, 8, 2, 128, 7)]
    } else {
        vec![
            wide_pair(6, 8, 1, 256, 7),
            wide_pair(4, 12, 2, 256, 7),
            wide_pair(3, 16, 2, 256, 7),
        ]
    };
    let job_counts = [1usize, 2, 4, 8];

    println!(
        "host: {cores} core(s) available — wall-time scaling beyond {cores} worker(s) \
         is not physically possible here"
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "workload", "jobs=1/ms", "jobs=2/ms", "jobs=4/ms", "jobs=8/ms", "spd@4", "spd@8"
    );

    let mut rows = Vec::new();
    let mut speedup4 = Vec::new();
    // (fp sub-proofs derived, positional sub-proofs derived, positional
    // lookups) accumulated across the workloads for the aggregate assert.
    let mut totals = (0u64, 0u64, 0u64);
    for w in &workloads {
        let request = VerifyRequest::programs(w.original.clone(), w.transformed.clone());
        let mut wall = Vec::new();
        let mut stable: Option<String> = None;
        for &jobs in &job_counts {
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let engine = Verifier::builder().jobs(jobs).build();
                let (outcome, t) = timed(|| engine.verify(&request).expect("pr4 workload runs"));
                assert!(
                    outcome.report.is_equivalent(),
                    "pr4 workload {} must verify at jobs={jobs}: {}",
                    w.name,
                    outcome.report.summary()
                );
                let rendering = outcome.report.render_stable();
                match &stable {
                    None => stable = Some(rendering),
                    Some(expected) => assert_eq!(
                        expected, &rendering,
                        "stable report must be byte-identical at jobs={jobs} ({})",
                        w.name
                    ),
                }
                best = best.min(t.as_secs_f64() * 1e3);
            }
            wall.push(best);
        }
        let spd4 = wall[0] / wall[2];
        let spd8 = wall[0] / wall[3];
        speedup4.push(spd4);
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>8.2}x",
            w.name, wall[0], wall[1], wall[2], wall[3], spd4, spd8
        );

        // Rename-invariant keying, sequential one-shot, same request.
        let fp = w.check(&CheckOptions::default());
        let pos = w.check(&CheckOptions::default().with_position_table_keys());
        assert_eq!(fp.verdict, pos.verdict);
        let fp_derived = fp.stats.table_lookups - fp.stats.table_hits;
        let pos_derived = pos.stats.table_lookups - pos.stats.table_hits;
        let effective = 1.0 - fp_derived as f64 / pos.stats.table_lookups.max(1) as f64;
        totals.0 += fp_derived;
        totals.1 += pos_derived;
        totals.2 += pos.stats.table_lookups;
        rows.push(format!(
            concat!(
                "    {{ \"workload\": \"{}\", \"wall_ms\": ",
                "{{ \"jobs1\": {:.3}, \"jobs2\": {:.3}, \"jobs4\": {:.3}, \"jobs8\": {:.3} }}, ",
                "\"speedup_4_threads\": {:.3}, \"speedup_8_threads\": {:.3}, ",
                "\"verdicts_identical_across_jobs\": true, ",
                "\"rename_invariance\": {{ ",
                "\"fp_hits\": {}, \"fp_lookups\": {}, \"fp_derived\": {}, ",
                "\"fp_compositions\": {}, ",
                "\"pos_hits\": {}, \"pos_lookups\": {}, \"pos_derived\": {}, ",
                "\"pos_compositions\": {}, ",
                "\"baseline_hit_rate\": {:.4}, \"effective_fp_hit_rate\": {:.4} }} }}"
            ),
            w.name,
            wall[0],
            wall[1],
            wall[2],
            wall[3],
            spd4,
            spd8,
            fp.stats.table_hits,
            fp.stats.table_lookups,
            fp_derived,
            fp.stats.compositions,
            pos.stats.table_hits,
            pos.stats.table_lookups,
            pos_derived,
            pos.stats.compositions,
            pos.stats.table_hit_rate(),
            effective,
        ));
        println!(
            "  rename-invariant keys: {} vs {} sub-proofs derived, {} vs {} compositions, \
             effective hit rate {:.1}% vs baseline {:.1}%",
            fp_derived,
            pos_derived,
            fp.stats.compositions,
            pos.stats.compositions,
            effective * 100.0,
            pos.stats.table_hit_rate() * 100.0,
        );
    }

    // Aggregate rename-invariance acceptance: deterministic, so a hard
    // assert (unlike wall time, which depends on the host's core count).
    let effective_total = 1.0 - totals.0 as f64 / totals.2.max(1) as f64;
    let baseline_total = 1.0 - totals.1 as f64 / totals.2.max(1) as f64;
    assert!(
        effective_total > baseline_total,
        "acceptance: rename-invariant keys must absorb a strictly higher share of the \
         baseline's sub-obligations ({effective_total:.4} vs {baseline_total:.4})"
    );

    // One parallel session: the formerly-dead shared feasibility memo hits.
    let engine = Verifier::builder().jobs(8).build();
    let w0 = &workloads[0];
    engine
        .verify(&VerifyRequest::programs(
            w0.original.clone(),
            w0.transformed.clone(),
        ))
        .expect("session run");
    let session = engine.session_stats();

    let geomean4 = (speedup4.iter().map(|s| s.ln()).sum::<f64>() / speedup4.len() as f64).exp();
    println!(
        "geomean speedup at 4 threads: {geomean4:.2}x on {cores} core(s); \
         feasibility memo hits in one parallel query: {}",
        session.feasibility_hits
    );
    if cores >= 4 && !quick {
        assert!(
            geomean4 >= 2.0,
            "acceptance: >= 2x at 4 threads on a >= 4-core host (got {geomean4:.2}x)"
        );
    } else if cores >= 2 {
        // Quick mode (the CI smoke) and small hosts: parallel checking must
        // not regress.  Best-of-N timing on one bounded workload is too
        // noisy for the full 2x gate, which the full experiment enforces.
        assert!(
            geomean4 >= 1.0,
            "parallel checking must not regress on a multi-core host (got {geomean4:.2}x)"
        );
    } else {
        println!(
            "WARNING: single-core host — recording wall times without speedup assertions \
             (the >= 2x acceptance applies on >= 4 cores)"
        );
    }
    assert!(
        session.feasibility_hits > 0,
        "acceptance: one parallel query must hit the shared feasibility memo"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR4: intra-query parallel checking (one request sharded ",
            "across outputs and sub-proofs) + rename-invariant tabling keys\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr4\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"host\": {{ \"available_cores\": {}, \"note\": \"wall-time scaling is bounded ",
            "by the host's core count; the full experiment enforces the >= 2x @ 4 threads ",
            "acceptance assertion on hosts with >= 4 cores (the quick CI smoke asserts >= 1x ",
            "there), and the deterministic acceptance criteria (identical ",
            "verdicts and stable reports across jobs, higher effective hit rate from ",
            "rename-invariant keys, shared feasibility-memo hits) are asserted on every ",
            "host\" }},\n",
            "  \"config\": {{ \"quick\": {}, \"repeats\": {}, ",
            "\"timing\": \"best of repeats, ms\" }},\n",
            "  \"metric_note\": \"effective_fp_hit_rate = 1 - fp_derived / pos_lookups: the ",
            "share of the positional-key baseline's tabling lookups that the rename-invariant ",
            "scheme answers from the table, directly or by discharging an ancestor ",
            "sub-obligation; raw hit rates are not comparable across schemes because a hit ",
            "near a repeated chain's root removes that chain's lookups entirely\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"geomean_speedup_4_threads\": {:.3},\n",
            "  \"aggregate_effective_fp_hit_rate\": {:.4},\n",
            "  \"aggregate_baseline_hit_rate\": {:.4},\n",
            "  \"parallel_session\": {}\n",
            "}}\n"
        ),
        host_parallelism(),
        cores,
        quick,
        repeats,
        rows.join(",\n"),
        geomean4,
        effective_total,
        baseline_total,
        arrayeq_engine::session_to_json(&session),
    );
    std::fs::write(out_path, &json).expect("write PR4 snapshot");
    println!("snapshot written to {out_path}");
}

/// PR5 acceptance snapshot: the algebraic normalization subsystem.
///
/// * **Scenario corpora** — the factored/expanded, subtraction-shuffle and
///   identity/constant-fold pairs (hand-written corpus pairs plus generated
///   kernels rewritten by `transform::algebraic`): the basic method must
///   answer `NotEquivalent` and the extended method `Equivalent` on every
///   pair — both hard-asserted — with per-pair check wall time recorded.
///   The extended checks run at the configured worker count and every
///   recorded row must show the parallel path engaged
///   (`parallel_tasks > 0`, piecewise chains contributing per-piece tasks).
/// * **Matcher on the PR4 wide kernels** — check wall time plus the
///   normalization counters (flattenings, matchings, flattened terms,
///   arena interns/dedup-hits, id-equality fast matches, match-memo hits)
///   on the wide multi-output kernels the parallel experiments use; the
///   arena must dedup (> 0 hits) and fast-match (> 0), hard-asserted.
/// * **Parallel decomposition** — every scenario pair re-checked at
///   jobs ∈ {1, 8} with byte-identical `render_stable()` hard-asserted,
///   and the piecewise workloads must decompose their flatten/match
///   obligations into > 1 per-piece task (`algebraic_piece_tasks`).
fn pr5_normalization(out_path: &str, quick: bool) {
    use arrayeq_engine::{Verifier, VerifyRequest};
    header(
        "PR5",
        "algebraic normalization: scenario corpora, term arena, per-piece parallel matching",
    );
    let repeats = if quick { 1 } else { 3 };
    let corpus = algebraic_corpus(41);
    assert!(corpus.len() >= 9, "scenario corpus unexpectedly small");

    // 1. Scenario corpora: basic fails, extended succeeds, hard-asserted.
    //    The extended checks run at the configured worker count so the
    //    recorded rows exercise (and record) the parallel path — an earlier
    //    snapshot ran them sequentially and every row carried
    //    `parallel_tasks: 0`.
    let scenario_jobs = 8usize;
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "scenario", "basic", "extended", "check/ms", "pieces", "terms"
    );
    let mut rows = Vec::new();
    let mut total_ms = 0.0f64;
    let mut max_scenario_piece_tasks = 0u64;
    for w in &corpus {
        let basic = w.check(&CheckOptions::basic());
        assert!(
            !basic.is_equivalent(),
            "acceptance: the basic method must fail on {}",
            w.name
        );
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let (r, t) = timed(|| w.check(&CheckOptions::default().with_jobs(scenario_jobs)));
            assert!(
                r.is_equivalent(),
                "acceptance: extended+normalize must verify {}: {}",
                w.name,
                r.summary()
            );
            best = best.min(t.as_secs_f64() * 1e3);
            last = Some(r);
        }
        let r = last.expect("at least one repeat");
        assert!(
            r.stats.parallel_tasks > 0,
            "acceptance: scenario {} must engage the parallel path at jobs={scenario_jobs} \
             ({:?})",
            w.name,
            r.stats
        );
        max_scenario_piece_tasks = max_scenario_piece_tasks.max(r.stats.algebraic_piece_tasks);
        total_ms += best;
        println!(
            "{:<22} {:>10} {:>12} {:>12.3} {:>10} {:>10}",
            w.name, "NEQ", "EQ", best, r.stats.matchings, r.stats.terms_flattened
        );
        rows.push(format!(
            concat!(
                "    {{ \"scenario\": \"{}\", \"basic\": \"not_equivalent\", ",
                "\"extended\": \"equivalent\", \"check_ms\": {:.3}, ",
                "\"stats\": {} }}"
            ),
            w.name,
            best,
            arrayeq_engine::stats_to_json(&r.stats),
        ));
    }
    assert!(
        max_scenario_piece_tasks > 1,
        "acceptance: the recorded scenario rows must include piecewise chains decomposed \
         into > 1 per-piece task (max algebraic_piece_tasks = {max_scenario_piece_tasks})"
    );

    // 2. Matcher + term arena on the PR4 wide kernels.
    let wide: Vec<Workload> = if quick {
        vec![wide_pair(4, 8, 2, 128, 7)]
    } else {
        vec![wide_pair(6, 8, 1, 256, 7), wide_pair(4, 12, 2, 256, 7)]
    };
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "wide kernel", "check/ms", "interns", "dedup-rate", "fast", "memo", "matchings"
    );
    let mut wide_rows = Vec::new();
    for w in &wide {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let (r, t) = timed(|| w.check(&CheckOptions::default()));
            assert!(r.is_equivalent(), "pr5 wide workload verifies: {}", w.name);
            best = best.min(t.as_secs_f64() * 1e3);
            last = Some(r);
        }
        let r = last.expect("at least one repeat");
        assert!(
            r.stats.arena_hits > 0,
            "acceptance: the term arena must dedup on {} ({:?})",
            w.name,
            r.stats
        );
        assert!(
            r.stats.fast_term_matches > 0,
            "acceptance: id-equality fast matching must engage on {}",
            w.name
        );
        // Collision shadowing is compiled out in release builds (where this
        // experiment runs), so `hash_collisions` is asserted by the
        // debug-build unit/property tests, not here.
        println!(
            "{:<24} {:>10.3} {:>10} {:>11.1}% {:>10} {:>10} {:>10}",
            w.name,
            best,
            r.stats.arena_interns,
            r.stats.arena_hit_rate() * 100.0,
            r.stats.fast_term_matches,
            r.stats.term_memo_hits,
            r.stats.matchings,
        );
        wide_rows.push(format!(
            concat!(
                "    {{ \"workload\": \"{}\", \"check_ms\": {:.3}, ",
                "\"arena_hit_rate\": {:.4}, \"stats\": {} }}"
            ),
            w.name,
            best,
            r.stats.arena_hit_rate(),
            arrayeq_engine::stats_to_json(&r.stats),
        ));
    }

    // 3. Parallel decomposition: byte-identical stable reports at jobs 1/8,
    //    and piecewise chains contribute > 1 per-piece task.
    let mut max_piece_tasks = 0u64;
    for w in &corpus {
        let request = VerifyRequest::programs(w.original.clone(), w.transformed.clone());
        let seq = Verifier::builder()
            .jobs(1)
            .build()
            .verify(&request)
            .expect("pr5 sequential run");
        let par = Verifier::builder()
            .jobs(8)
            .build()
            .verify(&request)
            .expect("pr5 parallel run");
        assert_eq!(seq.report.verdict, par.report.verdict, "{}", w.name);
        assert_eq!(
            seq.report.render_stable(),
            par.report.render_stable(),
            "acceptance: stable report must be byte-identical at jobs 1 vs 8 ({})",
            w.name
        );
        max_piece_tasks = max_piece_tasks.max(par.report.stats.algebraic_piece_tasks);
    }
    assert!(
        max_piece_tasks > 1,
        "acceptance: flatten/match must contribute > 1 parallel task \
         (max algebraic_piece_tasks = {max_piece_tasks})"
    );
    println!(
        "parallel: stable reports byte-identical at jobs 1/8 on {} scenario pairs; \
         flatten/match contributed up to {} per-piece tasks in one run",
        corpus.len(),
        max_piece_tasks
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR5: algebraic normalization subsystem — scenario corpora ",
            "(factored/expanded, subtraction shuffle, identity/constant folding), hash-consed ",
            "term arena on the PR4 wide kernels, and per-piece parallel matching\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr5\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"config\": {{ \"quick\": {}, \"repeats\": {}, ",
            "\"timing\": \"best of repeats, ms\" }},\n",
            "  \"acceptance\": \"hard-asserted in-run: basic NEQ + extended EQ on every ",
            "scenario pair; scenario rows recorded at jobs=8 with parallel_tasks > 0 in every ",
            "row and piecewise chains contributing > 1 per-piece task; arena dedup hits > 0 ",
            "and id-equality fast matches > 0 on the wide kernels; render_stable ",
            "byte-identical at jobs 1 vs 8; algebraic_piece_tasks > 1\",\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"scenario_total_check_ms\": {:.3},\n",
            "  \"wide_kernels\": [\n{}\n  ],\n",
            "  \"max_algebraic_piece_tasks\": {}\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        repeats,
        rows.join(",\n"),
        total_ms,
        wide_rows.join(",\n"),
        max_piece_tasks,
    );
    std::fs::write(out_path, &json).expect("write PR5 snapshot");
    println!("snapshot written to {out_path}");
}

/// Commutes the last commutable statement of the transformed program whose
/// label belongs to a per-output chain (`s{j}x{l}` / `o{j}`), i.e. the
/// edit-one-statement workload: an equivalence-preserving change whose
/// dirty cone is one output of a wide kernel.
fn commute_last_chain_statement(w: &Workload) -> arrayeq_lang::ast::Program {
    use arrayeq_transform::algebraic::commute_statement;
    let labels: Vec<String> = w
        .transformed
        .statements()
        .map(|s| s.label.clone())
        .collect();
    for label in labels.iter().rev() {
        if !(label.starts_with('s') || label.starts_with('o')) {
            continue;
        }
        let (edited, changed) = commute_statement(&w.transformed, label);
        if changed > 0 {
            return edited;
        }
    }
    panic!("no commutable chain statement in {}", w.name);
}

/// PR6 acceptance snapshot: incremental re-verification against an exported
/// baseline.
///
/// * **Edit-one-statement workloads** — the PR4 wide-kernel shape with every
///   chain distinct (`distinct_chains = 0`): verify (original, transformed)
///   once, export the baseline, commute a single statement of one chain and
///   re-verify.  The incremental run must apply the baseline, re-enter a
///   strict subset of the outputs (the dirty cone) and render a
///   byte-identical `render_stable()` to the from-scratch run on the edited
///   pair — all hard-asserted.  The full experiment asserts a >= 10x
///   geomean wall-time reduction (the quick CI smoke asserts > 1x).
/// * **Fault mutants** — baselines recorded for the pre-edit state must not
///   mask an inequivalent edit: the dirty cone catches the fault-corpus
///   mutants with replay-confirmed witnesses and byte-identical reports.
/// * **Corpus byte-identity** — on every Fig. 1 pair (including the
///   inequivalent one) a self-produced baseline applies and the incremental
///   report is byte-identical to from-scratch.
fn pr6_incremental(out_path: &str, quick: bool) {
    use arrayeq_engine::{BaselineStatus, Verifier, VerifyRequest};
    use arrayeq_transform::mutate::fault_corpus;
    header(
        "PR6",
        "incremental re-verification: baseline export + dirty-cone re-checking",
    );
    let repeats = if quick { 1 } else { 3 };
    // Long transformation pipelines (steps ≈ statement count) leave every
    // chain non-trivially transformed — the expensive-pair regime where a
    // from-scratch re-check pays the full per-output normalization cost on
    // all O outputs while the incremental path pays it on the dirty cone
    // only.  Short default-4-step pipelines would leave most chains at the
    // cheap plain-traversal floor and understate exactly the cost the
    // baseline is designed to avoid.
    let workloads: Vec<Workload> = if quick {
        vec![wide_pair_steps(3, 8, 0, 96, 24, 7)]
    } else {
        vec![
            wide_pair_steps(5, 24, 0, 192, 120, 7),
            wide_pair_steps(4, 32, 0, 160, 128, 11),
            wide_pair_steps(4, 24, 0, 256, 96, 13),
        ]
    };

    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>6} {:>7} {:>9}",
        "workload", "scratch/ms", "incr/ms", "speedup", "cone", "clean", "entries"
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for w in &workloads {
        // Producer run: establish the baseline for (original, transformed).
        let producer = Verifier::new();
        let first = producer
            .verify(&VerifyRequest::programs(
                w.original.clone(),
                w.transformed.clone(),
            ))
            .expect("pr6 producer run");
        assert!(
            first.report.is_equivalent(),
            "pr6 workload {} must verify: {}",
            w.name,
            first.report.summary()
        );
        let baseline = producer.export_baseline(&first.report);

        // The edit: commute one statement of one chain.
        let edited = commute_last_chain_statement(w);
        let request = VerifyRequest::programs(w.original.clone(), edited);

        // From-scratch vs incremental, fresh engine per measurement.
        let mut scratch_ms = f64::INFINITY;
        let mut scratch_check_us = 0u64;
        let mut scratch_stable = None;
        for _ in 0..repeats {
            let (outcome, t) = timed(|| {
                Verifier::new()
                    .verify(&request)
                    .expect("pr6 from-scratch run")
            });
            assert!(
                outcome.report.is_equivalent(),
                "commute is equivalence-preserving on {}: {}",
                w.name,
                outcome.report.summary()
            );
            scratch_ms = scratch_ms.min(t.as_secs_f64() * 1e3);
            scratch_check_us = outcome.report.stats.check_time_us;
            scratch_stable = Some(outcome.report.render_stable());
        }
        let scratch_stable = scratch_stable.expect("at least one repeat");
        let mut incr_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let (inc, t) = timed(|| {
                Verifier::new()
                    .verify_incremental(&request, &baseline)
                    .expect("pr6 incremental run")
            });
            incr_ms = incr_ms.min(t.as_secs_f64() * 1e3);
            last = Some(inc);
        }
        let inc = last.expect("at least one repeat");
        let outputs = inc.outcome.report.outputs_checked.len() as u64;
        let (entries, clean) = match &inc.baseline {
            BaselineStatus::Applied {
                entries,
                clean_outputs,
            } => (*entries, clean_outputs.len() as u64),
            rejected => panic!(
                "acceptance: baseline must apply on {}: {rejected:?}",
                w.name
            ),
        };
        let cone = inc.outcome.report.stats.cone_positions;
        assert!(
            cone >= 1 && cone < outputs,
            "acceptance: the dirty cone is a non-empty strict subset on {} \
             ({cone} of {outputs})",
            w.name
        );
        assert_eq!(
            clean,
            outputs - cone,
            "clean outputs + dirty cone partition the interface ({})",
            w.name
        );
        assert_eq!(
            inc.outcome.report.render_stable(),
            scratch_stable,
            "acceptance: incremental report must be byte-identical to from-scratch ({})",
            w.name
        );
        let speedup = scratch_ms / incr_ms;
        speedups.push(speedup);
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>8.2}x {:>6} {:>7} {:>9}  (check {:>6}us -> {:>6}us)",
            w.name,
            scratch_ms,
            incr_ms,
            speedup,
            cone,
            clean,
            entries,
            scratch_check_us,
            inc.outcome.report.stats.check_time_us
        );
        rows.push(format!(
            concat!(
                "    {{ \"workload\": \"{}\", \"edit\": \"commute one chain statement\", ",
                "\"scratch_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {:.3}, ",
                "\"scratch_check_us\": {}, \"incremental_check_us\": {}, ",
                "\"outputs\": {}, \"dirty_cone\": {}, \"clean_outputs\": {}, ",
                "\"baseline_entries\": {}, \"baseline_hits\": {}, ",
                "\"byte_identical_to_scratch\": true }}"
            ),
            w.name,
            scratch_ms,
            incr_ms,
            speedup,
            scratch_check_us,
            inc.outcome.report.stats.check_time_us,
            outputs,
            cone,
            clean,
            entries,
            inc.outcome.report.stats.baseline_hits,
        ));
    }

    // Fault mutants: the baseline must never mask an inequivalent edit.
    let mut mutant_rows = Vec::new();
    for case in fault_corpus().into_iter().take(if quick { 1 } else { 3 }) {
        let producer = Verifier::builder().witnesses(true).build();
        let good = producer
            .verify(&VerifyRequest::programs(
                case.original.clone(),
                case.original.clone(),
            ))
            .expect("pr6 mutant producer run");
        assert!(good.report.is_equivalent(), "{}", case.name);
        let baseline = producer.export_baseline(&good.report);

        let request = VerifyRequest::programs(case.original.clone(), case.mutant.clone());
        let scratch = Verifier::builder()
            .witnesses(true)
            .build()
            .verify(&request)
            .expect("pr6 mutant scratch run");
        let inc = Verifier::builder()
            .witnesses(true)
            .build()
            .verify_incremental(&request, &baseline)
            .expect("pr6 mutant incremental run");
        assert!(
            matches!(inc.baseline, BaselineStatus::Applied { .. }),
            "{}: {:?}",
            case.name,
            inc.baseline
        );
        assert!(
            !inc.outcome.report.is_equivalent(),
            "acceptance: mutant {} must be caught inside the dirty cone",
            case.name
        );
        assert!(
            inc.outcome.report.witnesses.iter().any(|wit| wit.confirmed),
            "{}: witness replay confirms the bug",
            case.name
        );
        assert_eq!(
            inc.outcome.report.render_stable(),
            scratch.report.render_stable(),
            "{}",
            case.name
        );
        mutant_rows.push(format!(
            concat!(
                "    {{ \"mutant\": \"{}\", \"verdict\": \"not_equivalent\", ",
                "\"witness_confirmed\": true, \"byte_identical_to_scratch\": true }}"
            ),
            case.name,
        ));
    }
    println!(
        "fault mutants: {} caught in the dirty cone with confirmed witnesses",
        mutant_rows.len()
    );

    // Corpus byte-identity, including the inequivalent Fig. 1 pair.
    let mut corpus_pairs = 0usize;
    for (name, a, b) in fig1_pairs() {
        let producer = Verifier::new();
        let first = producer
            .verify(&VerifyRequest::source(&a, &b))
            .expect("pr6 fig1 producer run");
        let baseline = producer.export_baseline(&first.report);
        let scratch = Verifier::new()
            .verify(&VerifyRequest::source(&a, &b))
            .expect("pr6 fig1 scratch run");
        let inc = Verifier::new()
            .verify_incremental(&VerifyRequest::source(&a, &b), &baseline)
            .expect("pr6 fig1 incremental run");
        assert!(
            matches!(inc.baseline, BaselineStatus::Applied { .. }),
            "{name}: {:?}",
            inc.baseline
        );
        assert_eq!(
            inc.outcome.report.render_stable(),
            scratch.report.render_stable(),
            "acceptance: byte-identical on corpus pair {name}"
        );
        corpus_pairs += 1;
    }
    println!("corpus byte-identity: {corpus_pairs} Fig. 1 pairs byte-identical");

    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("geomean incremental speedup: {geomean:.2}x");
    if quick {
        assert!(
            geomean > 1.0,
            "acceptance (quick): incremental re-verification must beat from-scratch \
             (got {geomean:.2}x)"
        );
    } else {
        assert!(
            geomean >= 10.0,
            "acceptance: >= 10x wall-time reduction on the edit-one-statement workload \
             (got {geomean:.2}x)"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR6: incremental re-verification — diff the ADDG position ",
            "fingerprints against an exported baseline, skip baseline-clean outputs and ",
            "discharge in-cone sub-obligations from the baseline's proven entries\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr6\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"config\": {{ \"quick\": {}, \"repeats\": {}, ",
            "\"timing\": \"best of repeats, ms\" }},\n",
            "  \"acceptance\": \"hard-asserted in-run: baseline applies on every ",
            "edit-one-statement workload with a non-empty strict-subset dirty cone; ",
            "render_stable byte-identical to from-scratch on every workload, every Fig. 1 ",
            "pair (including the inequivalent one) and every fault mutant; mutants caught ",
            "with replay-confirmed witnesses; geomean speedup >= 10x full / > 1x quick\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"fault_mutants\": [\n{}\n  ],\n",
            "  \"fig1_pairs_byte_identical\": {},\n",
            "  \"geomean_speedup\": {:.3}\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        repeats,
        rows.join(",\n"),
        mutant_rows.join(",\n"),
        corpus_pairs,
        geomean,
    );
    std::fs::write(out_path, &json).expect("write PR6 snapshot");
    println!("snapshot written to {out_path}");
}

/// PR7 acceptance snapshot: proof-trace subsystem overhead on the PR1
/// scaling suite.  Two numbers per workload:
///
/// * the *enabled* overhead — the same check re-run with a live collector
///   installed (the JSONL/Chrome sinks share the recording path), as the
///   empirical min-of-N wall-time ratio; and
/// * the *disabled* overhead — instrumentation compiled in but switched
///   off.  Its true cost (one relaxed atomic load per site) sits far below
///   best-of-N run noise on millisecond workloads, so a wall-time diff
///   would only measure noise; the snapshot instead records an analytical
///   upper bound: (recorded event count × 2 safety margin) × the
///   tight-loop-measured per-call cost of `arrayeq_trace::enabled()`.
///
/// Sink serialization (`to_jsonl` / `to_chrome`) happens after the check
/// returns, so it is timed separately rather than folded into the ratios.
///
/// Hard-asserted in-run: disabled bound <= 2% on every workload, geomean
/// enabled-JSONL overhead <= 15%, and tracing never changes
/// `render_stable()`.
fn pr7_trace_overhead(out_path: &str, quick: bool) {
    use std::sync::Arc;
    header("PR7", "tracing overhead on the scaling_addg_size suite");
    let repeats: usize = if quick { 3 } else { 5 };
    const N: i64 = 256;
    const SEED: u64 = 11;
    let layer_counts: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32] };

    assert!(
        !arrayeq_trace::enabled(),
        "pr7 must start with tracing disabled"
    );
    let per_call_ns = {
        let iters = 20_000_000u64;
        let mut acc = false;
        let (_, t) = timed(|| {
            for _ in 0..iters {
                acc ^= std::hint::black_box(arrayeq_trace::enabled());
            }
        });
        std::hint::black_box(acc);
        t.as_secs_f64() * 1e9 / iters as f64
    };
    println!("disabled fast-path cost: {per_call_ns:.3} ns/call");

    println!(
        "{:<12} {:>10} {:>12} {:>8} {:>13} {:>15}",
        "statements", "off/ms", "jsonl/ms", "events", "enabled-ovh", "disabled-bound"
    );
    let mut rows = Vec::new();
    let mut ratio_log_sum = 0.0;
    let mut max_disabled = 0.0f64;
    for layers in layer_counts.iter().copied() {
        let w = generated_pair(layers, N, SEED);
        let opts = CheckOptions::default();

        let mut off_ms = f64::INFINITY;
        let mut off_stable = String::new();
        for _ in 0..repeats {
            let (r, t) = timed(|| w.check(&opts));
            assert!(r.is_equivalent(), "pr7 workload must verify: {}", w.name);
            off_ms = off_ms.min(t.as_secs_f64() * 1e3);
            off_stable = r.render_stable();
        }

        let mut jsonl_ms = f64::INFINITY;
        let mut last_collector = None;
        for _ in 0..repeats {
            let c = Arc::new(arrayeq_trace::Collector::new());
            arrayeq_trace::install(c.clone());
            let (r, t) = timed(|| w.check(&opts));
            arrayeq_trace::uninstall();
            assert_eq!(
                off_stable,
                r.render_stable(),
                "tracing changed the report on {}",
                w.name
            );
            jsonl_ms = jsonl_ms.min(t.as_secs_f64() * 1e3);
            last_collector = Some(c);
        }
        let collector = last_collector.expect("at least one repeat");
        let events = collector.len();
        let (jsonl, ser_jsonl) = timed(|| collector.to_jsonl());
        let (chrome, ser_chrome) = timed(|| collector.to_chrome());

        let enabled_ovh = jsonl_ms / off_ms - 1.0;
        // Every recorded event stands for at most one disabled-path check;
        // the ×2 margin covers the metrics timers and double-checking sites.
        let disabled_bound = (events as f64 * 2.0 * per_call_ns * 1e-9) / (off_ms * 1e-3);
        assert!(
            disabled_bound <= 0.02,
            "disabled-tracing overhead bound {:.4} > 2% on {} statements",
            disabled_bound,
            layers + 1
        );
        ratio_log_sum += (jsonl_ms / off_ms).ln();
        max_disabled = max_disabled.max(disabled_bound);
        println!(
            "{:<12} {:>10.3} {:>12.3} {:>8} {:>12.1}% {:>14.4}%",
            layers + 1,
            off_ms,
            jsonl_ms,
            events,
            enabled_ovh * 100.0,
            disabled_bound * 100.0,
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"statements\": {},\n",
                "      \"untraced_ms\": {:.3},\n",
                "      \"traced_jsonl_ms\": {:.3},\n",
                "      \"events\": {},\n",
                "      \"enabled_jsonl_overhead_frac\": {:.4},\n",
                "      \"disabled_overhead_bound_frac\": {:.6},\n",
                "      \"jsonl_serialize_ms\": {:.3},\n",
                "      \"jsonl_bytes\": {},\n",
                "      \"chrome_serialize_ms\": {:.3},\n",
                "      \"chrome_bytes\": {}\n",
                "    }}"
            ),
            layers + 1,
            off_ms,
            jsonl_ms,
            events,
            enabled_ovh,
            disabled_bound,
            ser_jsonl.as_secs_f64() * 1e3,
            jsonl.len(),
            ser_chrome.as_secs_f64() * 1e3,
            chrome.len(),
        ));
    }
    let geomean_ovh = (ratio_log_sum / layer_counts.len() as f64).exp() - 1.0;
    assert!(
        geomean_ovh <= 0.15,
        "geomean enabled-JSONL overhead {geomean_ovh:.4} > 15%"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR7: proof-trace subsystem overhead — untraced vs ",
            "JSONL-recording runs on the scaling_addg_size suite, plus sink ",
            "serialization cost\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr7\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"config\": {{ \"quick\": {}, \"repeats\": {}, \"n\": {}, \"seed\": {}, ",
            "\"timing\": \"best of repeats, ms\" }},\n",
            "  \"methodology\": \"disabled_overhead_bound_frac is an analytical upper ",
            "bound — (events x 2) x the tight-loop per-call cost of the disabled fast ",
            "path, over the untraced wall-time — because the true cost of one relaxed ",
            "atomic load per site sits below best-of-N run noise on millisecond ",
            "workloads; enabled_jsonl_overhead_frac is the empirical min-of-N ",
            "wall-time ratio minus 1; sink serialization happens after the check ",
            "returns and is timed separately\",\n",
            "  \"enabled_check_cost_ns\": {:.3},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"geomean_enabled_jsonl_overhead_frac\": {:.4},\n",
            "  \"max_disabled_overhead_bound_frac\": {:.6},\n",
            "  \"acceptance\": \"hard-asserted in-run: disabled bound <= 2% on every ",
            "workload, geomean enabled-JSONL overhead <= 15%, render_stable ",
            "byte-identical traced vs untraced on every workload and repeat\"\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        repeats,
        N,
        SEED,
        per_call_ns,
        rows.join(",\n"),
        geomean_ovh,
        max_disabled,
    );
    std::fs::write(out_path, &json).expect("write PR7 snapshot");
    println!(
        "geomean enabled-JSONL overhead: {:.1}%",
        geomean_ovh * 100.0
    );
    println!("max disabled-overhead bound: {:.4}%", max_disabled * 100.0);
    println!("snapshot written to {out_path}");
}

/// PR8 acceptance snapshot: the persistent proof store and verification
/// service.  Three measurements, each hard-asserted in-run:
///
/// 1. **Cold vs warm one-shot re-verification** on the repeated/perturbed
///    PR 3 corpus ([`pr3_round`]) under the `verify --store` model — a
///    fresh engine per query, the warm pass loading a primed store from
///    disk each time.  Warm total wall time must beat cold (`>= 2x` full,
///    `>= 1.2x` under `--quick`'s bounded corpus).
/// 2. **Store-backed verdict identity**: `render_stable()` byte-identical
///    to a from-scratch check across the Fig. 1 pairs (including the
///    non-equivalent a-vs-d) and the fault-injection corpus.
/// 3. **Sustained service throughput**: an in-process daemon on a Unix
///    socket, concurrent clients with mixed equivalent/fault requests,
///    per-client verdict correctness, queries/sec recorded.
fn pr8_persistent_service(out_path: &str, quick: bool) {
    use arrayeq_engine::{Verifier, VerifyRequest};
    use arrayeq_lang::pretty::program_to_string;
    use arrayeq_serve::client::{response_verdict, verify_request_line, Client, VerifyParams};
    use arrayeq_serve::{ServeConfig, Server, SpawnedServer};
    use arrayeq_transform::mutate::fault_corpus;

    header(
        "PR8",
        "persistent proof store: cold vs warm one-shot re-verification, service throughput",
    );
    // The full corpus runs the PR 3 repeated/perturbed shape at heavier
    // kernel sizes, where check time dominates the store's per-query
    // open/seed/flush I/O — the regime persistence targets.  `--quick`
    // keeps the light PR 3 corpus (and a lower speedup floor: on ~4 ms
    // checks the warm pass pays proportionally more I/O).
    let pr8_round = |round: u64| -> Vec<Workload> {
        if quick {
            return pr3_round(round);
        }
        let mut out = Vec::new();
        for layers in [8usize, 16, 32] {
            out.push(generated_pair(layers, 512, 11));
        }
        for (name, a, b) in fig1_pairs().into_iter().take(3) {
            out.push(Workload {
                name,
                original: parse_program(&a).expect("fig1 parses"),
                transformed: parse_program(&b).expect("fig1 parses"),
            });
        }
        out.extend(
            pr3_round(round)
                .into_iter()
                .filter(|w| w.name.starts_with("perturbed")),
        );
        out
    };
    let rounds_n: u64 = if quick { 2 } else { 3 };
    let rounds: Vec<Vec<VerifyRequest>> = (0..rounds_n)
        .map(|r| {
            pr8_round(r)
                .into_iter()
                .map(|w| VerifyRequest::programs(w.original, w.transformed))
                .collect()
        })
        .collect();
    let queries: usize = rounds.iter().map(Vec::len).sum();
    let store_dir =
        std::env::temp_dir().join(format!("arrayeq-bench-pr8-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    // Each pass runs on its own fresh OS thread so all start with a cold
    // thread-local feasibility memo (same methodology as PR 3: that memo
    // outlives engines within a thread and would contaminate the
    // comparison in either direction).
    let (prime_ms, eq_persisted) = std::thread::scope(|s| {
        s.spawn(|| {
            let engine = Verifier::builder().store(&store_dir).build();
            assert!(engine.store_warnings().is_empty(), "fresh store is clean");
            let (_, t) = timed(|| {
                for round in &rounds {
                    for request in round {
                        let outcome = engine.verify(request).expect("pr8 workload verifies");
                        assert!(outcome.report.is_equivalent(), "pr8 pairs are equivalent");
                    }
                }
            });
            let flush = engine.flush_store().unwrap().expect("store attached");
            (t.as_secs_f64() * 1e3, flush.appended_eq)
        })
        .join()
        .expect("prime pass runs")
    });
    assert!(eq_persisted > 0, "priming persisted sub-proofs");

    // Cold: a fresh engine per query, nothing carries over — the baseline
    // every `arrayeq verify` invocation pays without `--store`.
    let cold_ms = std::thread::scope(|s| {
        s.spawn(|| {
            let (_, t) = timed(|| {
                for round in &rounds {
                    for request in round {
                        let engine = Verifier::new();
                        let outcome = engine.verify(request).expect("pr8 workload verifies");
                        assert!(outcome.report.is_equivalent(), "pr8 pairs are equivalent");
                    }
                }
            });
            t.as_secs_f64() * 1e3
        })
        .join()
        .expect("cold pass runs")
    });

    // Warm: still a fresh engine per query, but each one loads the primed
    // store from disk first — the `verify --store` loop, including all of
    // its open/seed/flush I/O.
    let (warm_ms, store_hits) = std::thread::scope(|s| {
        s.spawn(|| {
            let mut hits = 0u64;
            let (_, t) = timed(|| {
                for round in &rounds {
                    for request in round {
                        let engine = Verifier::builder().store(&store_dir).build();
                        let outcome = engine.verify(request).expect("pr8 workload verifies");
                        assert!(outcome.report.is_equivalent(), "pr8 pairs are equivalent");
                        hits += outcome.report.stats.store_hits;
                        engine.flush_store().unwrap();
                    }
                }
            });
            (t.as_secs_f64() * 1e3, hits)
        })
        .join()
        .expect("warm pass runs")
    });
    assert!(store_hits > 0, "warm queries discharge from the store");
    let speedup = cold_ms / warm_ms;
    let floor = if quick { 1.2 } else { 2.0 };
    assert!(
        warm_ms < cold_ms,
        "warm-store re-verification ({warm_ms:.1} ms) must beat cold ({cold_ms:.1} ms)"
    );
    assert!(
        speedup >= floor,
        "warm-store speedup {speedup:.2}x below the {floor}x floor"
    );
    println!(
        "{queries} queries: cold {cold_ms:.1} ms, warm-store {warm_ms:.1} ms \
         ({speedup:.2}x, {store_hits} store discharges; priming took {prime_ms:.1} ms)"
    );

    // Verdict identity: a store primed on mixed outcomes must never change
    // a byte of any stable report, positive or negative.
    let identity_dir =
        std::env::temp_dir().join(format!("arrayeq-bench-pr8-identity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&identity_dir);
    let fault_n = if quick { 2 } else { 6 };
    let identity_corpus: Vec<(String, VerifyRequest)> = fig1_pairs()
        .into_iter()
        .map(|(name, a, b)| (name, VerifyRequest::source(a, b)))
        .chain(fault_corpus().into_iter().take(fault_n).map(|case| {
            (
                case.name.clone(),
                VerifyRequest::programs(case.original, case.mutant),
            )
        }))
        .collect();
    {
        let primer = Verifier::builder().store(&identity_dir).build();
        for (_, request) in &identity_corpus {
            primer.verify(request).expect("identity workload runs");
        }
        primer.flush_store().unwrap();
    }
    let warm = Verifier::builder().store(&identity_dir).build();
    assert!(warm.store_warnings().is_empty());
    let mut identity_checked = 0usize;
    for (name, request) in &identity_corpus {
        let scratch = Verifier::new()
            .verify(request)
            .expect("identity workload runs");
        let stored = warm.verify(request).expect("identity workload runs");
        assert_eq!(
            scratch.report.render_stable(),
            stored.report.render_stable(),
            "store-backed report differs from scratch on {name}"
        );
        identity_checked += 1;
    }
    println!("verdict identity: {identity_checked}/{identity_checked} store-backed reports byte-identical");

    // Sustained throughput: concurrent clients over a real Unix socket
    // against one warm shared engine.
    let socket =
        std::env::temp_dir().join(format!("arrayeq-bench-pr8-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let service_corpus: Vec<(String, String, bool)> = {
        let mut pairs: Vec<(String, String, bool)> = fig1_pairs()
            .into_iter()
            .map(|(name, a, b)| (a, b, name != "a-vs-d"))
            .collect();
        for case in fault_corpus().into_iter().take(2) {
            pairs.push((
                program_to_string(&case.original),
                program_to_string(&case.mutant),
                false,
            ));
        }
        pairs
    };
    let clients = 4usize;
    let per_client = if quick { 6 } else { 25 };
    let daemon = SpawnedServer::start(
        Server::new(
            Verifier::builder().store(&store_dir).build(),
            ServeConfig::default(),
        ),
        socket,
    )
    .expect("daemon starts");
    let (_, service_wall) = timed(|| {
        std::thread::scope(|s| {
            for client_no in 0..clients {
                let socket = daemon.socket().to_path_buf();
                let corpus = &service_corpus;
                s.spawn(move || {
                    let mut client = Client::connect(&socket).expect("client connects");
                    for i in 0..per_client {
                        let (a, b, equivalent) = &corpus[i % corpus.len()];
                        let line = verify_request_line(
                            (client_no * per_client + i) as u64,
                            a,
                            b,
                            &VerifyParams::default(),
                        );
                        let response = client.request(&line).expect("daemon answers");
                        let verdict = response_verdict(&response).expect("verify succeeds");
                        let expected = if *equivalent {
                            "equivalent"
                        } else {
                            "not_equivalent"
                        };
                        assert_eq!(verdict, expected, "client {client_no} request {i}");
                    }
                });
            }
        });
    });
    daemon.stop().expect("daemon drains and exits");
    let total_requests = clients * per_client;
    let qps = total_requests as f64 / service_wall.as_secs_f64();
    println!(
        "service: {clients} clients x {per_client} mixed requests in {:.1} ms = {qps:.0} queries/sec",
        service_wall.as_secs_f64() * 1e3
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR8: persistent verification service — cold vs ",
            "warm-store one-shot re-verification on the repeated/perturbed PR3 ",
            "corpus, store-backed verdict identity, and sustained multi-client ",
            "daemon throughput over a Unix socket\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr8\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"config\": {{ \"quick\": {}, \"rounds\": {}, \"queries\": {}, ",
            "\"corpus\": \"PR3 repeated/perturbed shape; full mode at heavier kernel ",
            "sizes (layers 8/16/32, n=512) so check time dominates store I/O\", ",
            "\"store_model\": \"fresh engine per query; warm pass opens, seeds from ",
            "and flushes the on-disk store every query (the verify --store loop)\" }},\n",
            "  \"reverification\": {{\n",
            "    \"cold_ms\": {:.1},\n",
            "    \"warm_store_ms\": {:.1},\n",
            "    \"prime_ms\": {:.1},\n",
            "    \"speedup\": {:.2},\n",
            "    \"store_discharges\": {},\n",
            "    \"eq_subproofs_persisted\": {}\n",
            "  }},\n",
            "  \"verdict_identity\": {{ \"pairs_checked\": {}, \"mismatches\": 0, ",
            "\"corpus\": \"fig1 pairs (incl. non-equivalent a-vs-d) + fault-injection ",
            "mutants\" }},\n",
            "  \"service\": {{ \"clients\": {}, \"requests\": {}, \"wall_ms\": {:.1}, ",
            "\"queries_per_sec\": {:.0} }},\n",
            "  \"acceptance\": \"hard-asserted in-run: warm-store total wall time ",
            "strictly below cold with speedup >= {}x, store discharges > 0, every ",
            "store-backed render_stable byte-identical to from-scratch, every ",
            "concurrent client's verdicts correct\"\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        rounds_n,
        queries,
        cold_ms,
        warm_ms,
        prime_ms,
        speedup,
        store_hits,
        eq_persisted,
        identity_checked,
        clients,
        total_requests,
        service_wall.as_secs_f64() * 1e3,
        qps,
        floor,
    );
    std::fs::write(out_path, &json).expect("write PR8 snapshot");
    println!("snapshot written to {out_path}");
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&identity_dir);
}

/// PR9 acceptance snapshot: the cost of overflow-*checked* solver
/// arithmetic on the PR1 `scaling_addg_size` suite — the same workloads run
/// with the production checked path and with the bench-only unchecked
/// escape hatch, in one process.  Hard-asserts in-run that the checked
/// path's geomean overhead stays within the 5% acceptance bound, that both
/// modes agree on every verdict byte, and that no workload in the suite
/// actually overflows (so "unchecked" is a fair timing baseline, not a
/// wrong-answer generator).
fn pr9_checked_arithmetic(out_path: &str, quick: bool) {
    header(
        "PR9",
        "overflow-checked solver arithmetic: overhead vs unchecked on scaling_addg_size",
    );
    const N: i64 = 256;
    const SEED: u64 = 11;
    const OVERHEAD_BOUND_PCT: f64 = 5.0;
    let (layer_counts, repeats): (&[usize], usize) = if quick {
        (&[4, 8], 5)
    } else {
        (&[4, 8, 16, 32], 5)
    };

    // The unchecked flag is thread-local, so the comparison runs the
    // sequential checker on this thread: one knob, one thread, no
    // scheduling noise between the two modes.
    let opts = CheckOptions::default();
    let measure = |w: &Workload| -> (f64, arrayeq_core::Report) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let (r, t) = timed(|| w.check(&opts));
            assert!(r.is_equivalent(), "pr9 workload must verify: {}", w.name);
            best = best.min(t.as_secs_f64() * 1e3);
            last = Some(r);
        }
        (best, last.expect("at least one repeat"))
    };

    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "statements", "checked/ms", "unchecked/ms", "overhead"
    );
    let mut rows = Vec::new();
    let mut overhead_log_sum = 0.0;
    let mut max_overhead_pct = f64::NEG_INFINITY;
    let overflow_base = arrayeq_omega::arith_overflow_events();
    for &layers in layer_counts {
        let w = generated_pair(layers, N, SEED);
        let (checked_ms, checked_report) = measure(&w);
        arrayeq_omega::set_unchecked_solver_arithmetic(true);
        let (unchecked_ms, unchecked_report) = measure(&w);
        arrayeq_omega::set_unchecked_solver_arithmetic(false);
        assert_eq!(
            checked_report.render_stable(),
            unchecked_report.render_stable(),
            "checked and unchecked arithmetic must agree on every verdict byte"
        );
        let ratio = checked_ms / unchecked_ms;
        let overhead_pct = (ratio - 1.0) * 100.0;
        overhead_log_sum += ratio.ln();
        max_overhead_pct = max_overhead_pct.max(overhead_pct);
        println!(
            "{:<12} {:>12.3} {:>14.3} {:>9.2}%",
            layers + 1,
            checked_ms,
            unchecked_ms,
            overhead_pct
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"statements\": {},\n",
                "      \"checked_ms\": {:.3},\n",
                "      \"unchecked_ms\": {:.3},\n",
                "      \"overhead_pct\": {:.2}\n",
                "    }}"
            ),
            layers + 1,
            checked_ms,
            unchecked_ms,
            overhead_pct,
        ));
    }
    assert_eq!(
        arrayeq_omega::arith_overflow_events(),
        overflow_base,
        "the scaling suite must not overflow: unchecked timings would be meaningless"
    );
    let geomean_overhead_pct = ((overhead_log_sum / layer_counts.len() as f64).exp() - 1.0) * 100.0;
    assert!(
        geomean_overhead_pct <= OVERHEAD_BOUND_PCT,
        "checked-arithmetic geomean overhead {geomean_overhead_pct:.2}% exceeds the \
         {OVERHEAD_BOUND_PCT}% acceptance bound"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR9: overflow-checked solver arithmetic overhead vs ",
            "bench-only unchecked mode on scaling_addg_size\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr9\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"quick\": {},\n",
            "  \"config\": {{ \"n\": {}, \"seed\": {}, \"repeats\": {}, ",
            "\"timing\": \"best of repeats, ms, sequential checker\" }},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"geomean_overhead_pct\": {:.2},\n",
            "  \"max_overhead_pct\": {:.2},\n",
            "  \"arith_overflow_events\": 0,\n",
            "  \"acceptance\": \"hard-asserted in-run: geomean checked-vs-unchecked ",
            "overhead <= {}%, render_stable byte-identical between modes on every ",
            "workload, zero overflow events across the suite\"\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        N,
        SEED,
        repeats,
        rows.join(",\n"),
        geomean_overhead_pct,
        max_overhead_pct,
        OVERHEAD_BOUND_PCT,
    );
    std::fs::write(out_path, &json).expect("write PR9 snapshot");
    println!("geomean checked-arithmetic overhead: {geomean_overhead_pct:.2}%");
    println!("snapshot written to {out_path}");
}

/// Nested-box DNF set: the union of `s` boxes `{[x,y] : i <= x <= n-i and
/// 0 <= y <= n-i}` for `i` in `0..s`.  Every box is contained in the
/// previous one, so eager coalescing collapses the union to a single
/// conjunct while the lazy build keeps all `s` — the canonical subsumption
/// workload.
fn pr10_nested(s: i64, n: i64) -> arrayeq_omega::Set {
    let mut acc: Option<arrayeq_omega::Set> = None;
    for i in 0..s {
        let piece = arrayeq_omega::Set::parse(&format!(
            "{{ [x, y] : {} <= x <= {} and 0 <= y <= {} }}",
            i,
            n - i,
            n - i
        ))
        .expect("pr10 nested box parses");
        acc = Some(match acc {
            Some(a) => a.union(&piece).expect("pr10 nested union"),
            None => piece,
        });
    }
    acc.expect("s >= 1")
}

/// Piecewise shift map: `[0, n)` cut into `s` segments, segment `i` mapping
/// `x -> x + (d+i) % 3`.  Chains of these compose into DNFs whose disjunct
/// count is exponential in the chain depth unless structurally identical
/// composed pieces are deduplicated.
fn pr10_piecewise(s: i64, n: i64, d: i64) -> Relation {
    let seg = n / s;
    let mut acc: Option<Relation> = None;
    for i in 0..s {
        let lo = i * seg;
        let hi = if i == s - 1 { n } else { (i + 1) * seg };
        let shift = (d + i) % 3;
        let piece = Relation::parse(&format!(
            "{{ [x] -> [y] : y = x + {shift} and {lo} <= x < {hi} }}"
        ))
        .expect("pr10 piecewise segment parses");
        acc = Some(match acc {
            Some(a) => a.union(&piece).expect("pr10 piecewise union"),
            None => piece,
        });
    }
    acc.expect("s >= 1")
}

/// PR10 snapshot: the DNF constraint-set engine.  Four sections, every
/// acceptance criterion hard-asserted in-run:
///
/// 1. eager-vs-lazy disjunct coalescing on a disjunction-heavy set-algebra
///    corpus (geomean speedup floor; includes an honest negative entry),
/// 2. verdict identity: `render_stable` byte-identical across eager on/off
///    and jobs 1/8 on fig1, split-heavy and parametric pairs,
/// 3. parametric bounds: one `--param N >= 1` check stays flat in `N` where
///    the concrete checks are re-run per size,
/// 4. big-int exact fallback: adversarial systems that overflow the `i128`
///    solver arithmetic are re-decided exactly, match the reference oracle,
///    and leave no residual overflow flag (so no `Inconclusive`).
fn pr10_dnf_engine(out_path: &str, quick: bool) {
    use arrayeq_lang::pretty::program_to_string;
    use arrayeq_omega::reference::reference_is_feasible;
    use arrayeq_omega::{
        bigint_fallback_events, conjuncts_subsumed_events, set_eager_simplification,
        take_arith_overflow, Conjunct, Constraint, LinExpr, Space,
    };
    use arrayeq_transform::loops::{split_loop, top_level_loops};

    header(
        "PR10",
        "DNF engine: coalescing speedups, verdict identity, parametric bounds, big-int fallback",
    );

    // ---- 1. Eager vs lazy coalescing on disjunction-heavy set algebra. ----
    // Each workload times its algebra with `timed` and then computes a cheap
    // semantic probe checksum OUTSIDE the timed region, so the comparison
    // measures the operations, not the probing.  The honest negative entry
    // (nested-sample-subtract) stays in the geomean.
    let geomean_floor: f64 = if quick { 1.1 } else { 1.3 };
    let (ns_s, ns_n, ns_n2, ns_reps) = if quick {
        (8i64, 48i64, 44i64, 6usize)
    } else {
        (12, 64, 60, 20)
    };
    let (pc_s, pc_n, pc_depth) = if quick {
        (4i64, 64i64, 6i64)
    } else {
        (4, 64, 8)
    };
    let (ce_s, ce_n, ce_depth) = if quick {
        (6i64, 96i64, 3i64)
    } else {
        (6, 96, 4)
    };
    let (ss_s, ss_n, ss_rounds) = if quick {
        (10i64, 40i64, 8usize)
    } else {
        (10, 40, 24)
    };

    type AlgebraRun = Box<dyn Fn() -> (f64, u64, usize)>;
    let workloads: Vec<(&str, AlgebraRun)> = vec![
        (
            // Subtraction over two nested-box families: lazily the s×s
            // cross-subtract blows up; eagerly both operands are one box.
            "nested-subtract",
            Box::new(move || {
                let (d, t) = timed(|| {
                    let a = pr10_nested(ns_s, ns_n);
                    let b = pr10_nested(ns_s, ns_n2);
                    let mut d = a.subtract(&b).expect("pr10 subtract");
                    for _ in 1..ns_reps {
                        d = a.subtract(&b).expect("pr10 subtract");
                    }
                    d
                });
                let mut checksum = 0u64;
                for x in [-1, 0, ns_s, ns_n2, ns_n2 + 1, ns_n] {
                    for y in [-1, 0, ns_n2 + 1, ns_n] {
                        checksum = checksum << 1 | d.contains(&[x, y], &[]) as u64;
                    }
                }
                (t.as_secs_f64() * 1e3, checksum, d.conjuncts().len())
            }),
        ),
        (
            // Deep composition chain of piecewise shift maps: the composed
            // piece count is s^depth lazily, a few hundred with structural
            // dedup and subsumption at every compose output.
            "piecewise-compose-deep",
            Box::new(move || {
                let (acc, t) = timed(|| {
                    let mut acc = pr10_piecewise(pc_s, pc_n, 0);
                    for d in 1..pc_depth {
                        acc = acc
                            .compose(&pr10_piecewise(pc_s, pc_n, d))
                            .expect("pr10 compose");
                    }
                    acc
                });
                let mut checksum = 0u64;
                for x in [0, 7, pc_n / 2, pc_n - 2] {
                    for dy in 0..=2 * pc_depth {
                        checksum = checksum << 1 | acc.contains(&[x], &[x + dy], &[]) as u64;
                    }
                }
                (t.as_secs_f64() * 1e3, checksum, acc.conjuncts().len())
            }),
        ),
        (
            // Composition chain with a downstream equality test: the classic
            // consumer that pays per-disjunct for every bloated operand.
            "compose-equal",
            Box::new(move || {
                let ((eq, conj), t) = timed(|| {
                    let mut acc = pr10_piecewise(ce_s, ce_n, 0);
                    for d in 1..ce_depth {
                        acc = acc
                            .compose(&pr10_piecewise(ce_s, ce_n, d))
                            .expect("pr10 compose");
                    }
                    let eq = acc.is_equal(&acc).expect("pr10 is_equal");
                    (eq, acc.conjuncts().len())
                });
                assert!(eq, "a relation must equal itself");
                (t.as_secs_f64() * 1e3, eq as u64, conj)
            }),
        ),
        (
            // Sample-and-remove rounds: few overlapping pieces, so eager
            // coalescing buys little and costs its scan — kept as an honest
            // negative entry in the geomean.
            "nested-sample-subtract",
            Box::new(move || {
                let (removed, t) = timed(|| {
                    let mut set = pr10_nested(ss_s, ss_n);
                    let mut removed = 0u64;
                    for _ in 0..ss_rounds {
                        match set.sample_point() {
                            Some((p, _)) => {
                                set = set.without_point(&p).expect("pr10 without_point");
                                removed += 1;
                            }
                            None => break,
                        }
                    }
                    removed
                });
                (t.as_secs_f64() * 1e3, removed, ss_rounds)
            }),
        ),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>9} {:>11} {:>10}",
        "workload", "eager/ms", "lazy/ms", "speedup", "conj e/l", "subsumed"
    );
    let mut algebra_rows = Vec::new();
    let mut speedup_log_sum = 0.0;
    for (name, run) in &workloads {
        let run_mode = |eager: bool| -> (f64, u64, usize, u64) {
            let prev = set_eager_simplification(eager);
            let subsumed_before = conjuncts_subsumed_events();
            let mut best = f64::INFINITY;
            let mut checksum = 0u64;
            let mut conj = 0usize;
            for _ in 0..3 {
                let (t_ms, c, k) = run();
                best = best.min(t_ms);
                checksum = c;
                conj = k;
            }
            let subsumed = conjuncts_subsumed_events() - subsumed_before;
            set_eager_simplification(prev);
            (best, checksum, conj, subsumed)
        };
        let (eager_ms, eager_sum, eager_conj, subsumed) = run_mode(true);
        let (lazy_ms, lazy_sum, lazy_conj, _) = run_mode(false);
        assert_eq!(
            eager_sum, lazy_sum,
            "workload {name}: eager and lazy coalescing must agree on the probe checksum"
        );
        let speedup = lazy_ms / eager_ms;
        speedup_log_sum += speedup.ln();
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>8.2}x {:>5}/{:<5} {:>10}",
            name, eager_ms, lazy_ms, speedup, eager_conj, lazy_conj, subsumed
        );
        algebra_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"eager_ms\": {:.3},\n",
                "      \"lazy_ms\": {:.3},\n",
                "      \"speedup\": {:.2},\n",
                "      \"conjuncts_eager\": {},\n",
                "      \"conjuncts_lazy\": {},\n",
                "      \"conjuncts_subsumed\": {}\n",
                "    }}"
            ),
            name, eager_ms, lazy_ms, speedup, eager_conj, lazy_conj, subsumed,
        ));
    }
    let geomean_speedup = (speedup_log_sum / workloads.len() as f64).exp();
    assert!(
        geomean_speedup >= geomean_floor,
        "eager-coalescing geomean speedup {geomean_speedup:.2}x is below the \
         {geomean_floor}x acceptance floor"
    );
    println!("geomean eager-coalescing speedup: {geomean_speedup:.2}x");

    // ---- 2. Verdict identity across eager on/off and jobs 1/8. ----
    // Splitting a loop repeatedly (always the trailing piece, so the `_hi`
    // relabelling never collides) produces genuinely disjunction-heavy proof
    // obligations; the fig1 suite contributes a NotEquivalent pair so the
    // identity holds on failing verdicts too.
    let split_heavy = |src: &str, cuts: &[i64]| -> String {
        let mut p = parse_program(src).expect("pr10 split-heavy source parses");
        let base = top_level_loops(&p)[0];
        for (j, &mid) in cuts.iter().enumerate() {
            p = split_loop(&p, base + j, mid).expect("pr10 split_loop");
        }
        program_to_string(&p)
    };
    let mut pairs: Vec<(String, String, String)> = fig1_pairs();
    pairs.push((
        "sub-shuffle-split3".into(),
        split_heavy(KERNEL_SUB_SHUFFLE_A, &[16, 40]),
        KERNEL_SUB_SHUFFLE_B.into(),
    ));
    pairs.push((
        "ident-split4".into(),
        split_heavy(KERNEL_IDENT_A, &[8, 24, 48]),
        KERNEL_IDENT_B.into(),
    ));
    for (name, a, b) in PARAMETRIC_PAIRS {
        pairs.push((name.into(), a.into(), b.into()));
    }
    println!("\n{:<22} {:>16} {:>10}", "pair", "verdict", "identical");
    let mut identity_rows = Vec::new();
    for (name, a, b) in &pairs {
        let mut renders: Vec<String> = Vec::new();
        let mut verdict = String::new();
        for (eager, jobs) in [(true, 1usize), (false, 1), (true, 8), (false, 8)] {
            let prev = set_eager_simplification(eager);
            let report = verify_source(a, b, &CheckOptions::default().with_jobs(jobs))
                .unwrap_or_else(|e| panic!("pr10 identity pair {name}: {e}"));
            set_eager_simplification(prev);
            verdict = report.verdict.to_string();
            renders.push(report.render_stable());
        }
        assert!(
            renders.iter().all(|r| r == &renders[0]),
            "pair {name}: render_stable must be byte-identical across eager x jobs configs"
        );
        println!("{:<22} {:>16} {:>10}", name, verdict, true);
        identity_rows.push(format!(
            concat!(
                "    {{ \"pair\": \"{}\", \"verdict\": \"{}\", ",
                "\"configs\": \"eager on/off x jobs 1/8\", \"identical\": true }}"
            ),
            name, verdict,
        ));
    }

    // ---- 3. Parametric bounds: one symbolic check vs per-size re-checks. ----
    let sizes: &[i64] = if quick {
        &[256, 4096, 65536]
    } else {
        &[256, 1024, 4096, 16384, 65536]
    };
    let reps = if quick { 9 } else { 15 };
    const FLATNESS_BOUND: f64 = 1.5;
    let concrete_opts = CheckOptions::default();
    let param_opts = CheckOptions::default().with_params(vec![("N".to_string(), 1)]);
    let time_check = |a: &str, b: &str, opts: &CheckOptions| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (r, t) =
                timed(|| verify_source(a, b, opts).expect("pr10 parametric pair verifies"));
            assert!(
                r.is_equivalent(),
                "pr10 parametric workload must be equivalent"
            );
            best = best.min(t.as_secs_f64() * 1e3);
        }
        best
    };
    println!(
        "\n{:<10} {:>13} {:>14}",
        "N", "concrete/ms", "parametric/ms"
    );
    let mut parametric_rows = Vec::new();
    let mut param_min = f64::INFINITY;
    let mut param_max: f64 = 0.0;
    for &n in sizes {
        let a = with_size(KERNEL_SUB_SHUFFLE_A, n);
        let b = with_size(KERNEL_SUB_SHUFFLE_B, n);
        let concrete_ms = time_check(&a, &b, &concrete_opts);
        let param_ms = time_check(&a, &b, &param_opts);
        param_min = param_min.min(param_ms);
        param_max = param_max.max(param_ms);
        println!("{:<10} {:>13.3} {:>14.3}", n, concrete_ms, param_ms);
        parametric_rows.push(format!(
            "    {{ \"n\": {n}, \"concrete_ms\": {concrete_ms:.3}, \"parametric_ms\": {param_ms:.3} }}"
        ));
    }
    let flatness = param_max / param_min;
    assert!(
        flatness <= FLATNESS_BOUND,
        "parametric check time must be flat in N: max/min = {flatness:.2} exceeds {FLATNESS_BOUND}"
    );
    println!("parametric max/min across sizes: {flatness:.2} (bound {FLATNESS_BOUND})");
    let mut param_pair_rows = Vec::new();
    for (name, a, b) in PARAMETRIC_PAIRS {
        let (r, t) = timed(|| {
            verify_source(a, b, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("pr10 parametric pair {name}: {e}"))
        });
        assert!(r.is_equivalent(), "parametric pair {name} must verify");
        let t_ms = t.as_secs_f64() * 1e3;
        println!(
            "{:<22} {:>10.3} ms (symbolic bound, all sizes at once)",
            name, t_ms
        );
        param_pair_rows.push(format!(
            "    {{ \"pair\": \"{name}\", \"ms\": {t_ms:.3}, \"verdict\": \"Equivalent\" }}"
        ));
    }

    // ---- 4. Big-int exact fallback on adversarial coefficient systems. ----
    // Before the fallback, systems like min-coeff-band surfaced as the
    // conservative "feasible" plus a sticky overflow flag (an Inconclusive
    // at the report layer); now every one is decided exactly and the flag is
    // consumed.  Not all five fire: the i128-widened checked arithmetic
    // absorbs some, which is exactly the tiered design.
    const H: i64 = i64::MAX / 2;
    const M: i64 = i64::MAX;
    let le = |coeffs: &[i64], k: i64| LinExpr::from_coeffs(coeffs.to_vec(), k);
    let systems: Vec<(&str, Vec<Constraint>, usize, bool)> = vec![
        (
            "two-bands-infeasible",
            vec![
                Constraint::geq(le(&[H, H], -H)),
                Constraint::geq(le(&[-H, 0], 0)),
                Constraint::geq(le(&[0, -H], 0)),
            ],
            2,
            false,
        ),
        (
            "equality-chain-h-squared",
            vec![
                Constraint::eq(le(&[1, -H], 0)),
                Constraint::eq(le(&[0, 1], -H)),
            ],
            2,
            true,
        ),
        (
            "dark-shadow-margin",
            vec![
                Constraint::geq(le(&[7], -3)),
                Constraint::geq(le(&[-H], H.saturating_mul(10))),
            ],
            1,
            true,
        ),
        (
            "bezout-huge",
            vec![Constraint::eq(le(&[M, M - 1], -1))],
            2,
            true,
        ),
        (
            "min-coeff-band",
            vec![
                Constraint::geq(le(&[i64::MIN], 0)),
                Constraint::geq(le(&[1], -1)),
            ],
            1,
            false,
        ),
    ];
    println!(
        "\n{:<26} {:>9} {:>9} {:>8}",
        "system", "verdict", "oracle", "fallback"
    );
    let mut fallback_rows = Vec::new();
    let mut fired_total = 0usize;
    for (name, constraints, n, expected) in &systems {
        let names: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
        let mut c = Conjunct::universe(Space::set(&names, &[]));
        for cs in constraints {
            c.add(cs.clone());
        }
        let _ = take_arith_overflow();
        let before = bigint_fallback_events();
        let feasible = c.is_feasible();
        let fired = bigint_fallback_events() > before;
        let residual = take_arith_overflow();
        let oracle =
            reference_is_feasible(constraints, *n).expect("pr10 oracle must decide every system");
        assert_eq!(
            feasible, oracle,
            "system {name}: production verdict must match the big-int oracle"
        );
        assert_eq!(
            feasible, *expected,
            "system {name}: annotated verdict is wrong"
        );
        assert!(
            !residual,
            "system {name}: the exact fallback must consume the overflow flag"
        );
        fired_total += fired as usize;
        println!(
            "{:<26} {:>9} {:>9} {:>8}",
            name,
            feasible,
            oracle,
            if fired { "FIRED" } else { "-" }
        );
        fallback_rows.push(format!(
            concat!(
                "    {{ \"system\": \"{}\", \"feasible\": {}, \"oracle\": {}, ",
                "\"fallback_fired\": {}, \"residual_overflow\": false }}"
            ),
            name, feasible, oracle, fired,
        ));
    }
    assert!(
        fired_total >= 1,
        "at least one adversarial system must exercise the big-int fallback"
    );
    println!("big-int fallbacks fired: {fired_total}/{}", systems.len());

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"PR10: DNF constraint-set engine — eager coalescing, ",
            "verdict identity, parametric bounds, big-int exact fallback\",\n",
            "  \"command\": \"cargo run --release -p arrayeq-bench --bin run_experiments ",
            "-- --exp pr10\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"quick\": {},\n",
            "  \"config\": {{ \"timing\": \"best of 3 (set algebra) / best of {} (checks), ms\", ",
            "\"geomean_floor\": {}, \"parametric_flatness_bound\": {} }},\n",
            "  \"eager_vs_lazy\": [\n{}\n  ],\n",
            "  \"eager_geomean_speedup\": {:.2},\n",
            "  \"verdict_identity\": [\n{}\n  ],\n",
            "  \"parametric\": [\n{}\n  ],\n",
            "  \"parametric_flatness\": {:.2},\n",
            "  \"parametric_pairs\": [\n{}\n  ],\n",
            "  \"bigint_fallback\": [\n{}\n  ],\n",
            "  \"bigint_fallbacks_fired\": {},\n",
            "  \"acceptance\": \"hard-asserted in-run: geomean eager-coalescing speedup >= ",
            "{}x on the disjunction-heavy corpus (probe checksums equal between modes), ",
            "render_stable byte-identical across eager on/off x jobs 1/8 on every pair, ",
            "parametric check wall time flat in N (max/min <= {}), every adversarial ",
            "system decided exactly matching the reference oracle with >= 1 fallback ",
            "fired and no residual overflow flag\"\n",
            "}}\n"
        ),
        host_parallelism(),
        quick,
        reps,
        geomean_floor,
        FLATNESS_BOUND,
        algebra_rows.join(",\n"),
        geomean_speedup,
        identity_rows.join(",\n"),
        parametric_rows.join(",\n"),
        flatness,
        param_pair_rows.join(",\n"),
        fallback_rows.join(",\n"),
        fired_total,
        geomean_floor,
        FLATNESS_BOUND,
    );
    std::fs::write(out_path, &json).expect("write PR10 snapshot");
    println!("snapshot written to {out_path}");
}

fn e12_omega_ops() {
    header(
        "E12",
        "omega-layer micro-operations (compose / equality / closure)",
    );
    let m1 = Relation::parse("{ [k] -> [2k] : 0 <= k < 1024 }").unwrap();
    let m2 =
        Relation::parse("{ [x] -> [y] : exists k : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")
            .unwrap();
    let shift = Relation::parse("{ [i] -> [i+1] : 0 <= i < 1024 }").unwrap();
    let (_, t1) = timed(|| {
        for _ in 0..100 {
            let _ = m1.compose(&m2).unwrap();
        }
    });
    let (_, t2) = timed(|| {
        for _ in 0..100 {
            let _ = m1.is_equal(&m1).unwrap();
        }
    });
    let (_, t3) = timed(|| {
        for _ in 0..100 {
            let _ = shift.transitive_closure().unwrap();
        }
    });
    println!("compose        : {} ms / 100 ops", ms(t1));
    println!("is_equal       : {} ms / 100 ops", ms(t2));
    println!("closure        : {} ms / 100 ops", ms(t3));
}
